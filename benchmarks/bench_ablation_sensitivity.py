"""Ablation: robustness of the conclusions to model calibration knobs.

The simulator's contention model has three free constants (memory
congestion strength, L1 sharing tax, the leftover-decode fraction). This
bench sweeps each across a 2-4x range around its default and re-runs the
MetBench key cases: if case C stopped beating case A, or case D stopped
losing, anywhere in the range, the reproduction would be tuning artefact
rather than mechanism — the asserts make that a failing benchmark.
"""

from repro.experiments.sensitivity import (
    conclusions_hold,
    sensitivity_table,
    sweep_model_knob,
)

SWEEPS = {
    "congestion_cycles": [50.0, 150.0, 450.0],
    "l1_sharing_tax": [0.2, 0.5, 0.9],
    "leftover_fraction": [1 / 64, 1 / 32, 1 / 16],
}


def run_all():
    return {knob: sweep_model_knob(knob, values) for knob, values in SWEEPS.items()}


def test_sensitivity(benchmark, save_artifact):
    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    parts = [sensitivity_table(outcomes).render() for outcomes in sweeps.values()]
    save_artifact("ablation_sensitivity", "\n\n".join(parts))
    for knob, outcomes in sweeps.items():
        assert conclusions_hold(outcomes), f"conclusions flipped under {knob}"
