"""Raw simulator performance (classic pytest-benchmark targets).

Not a paper table — these track the speed of the substrate itself so
regressions in the hot paths (cycle pipeline stepping, fluid-runtime
event processing, analytic solves) are visible across commits. Each
target also appends its timing stats to
``benchmarks/results/BENCH_simulator.json`` via ``record_bench``.
"""

import numpy as np

from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.smt.analytic import AnalyticModelConfig, AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.pipeline import CorePipeline
from repro.workloads.generators import barrier_loop_programs

HPC = BASE_PROFILES["hpc"]


def _record(record_bench, name, benchmark, **extra):
    st = benchmark.stats.stats
    payload = {
        "mean_s": st.mean,
        "min_s": st.min,
        "median_s": st.median,
        "stddev_s": st.stddev,
        "rounds": st.rounds,
    }
    payload.update(extra)
    record_bench(name, payload)


def test_cycle_pipeline_throughput(benchmark, record_bench):
    """Cycles simulated per second of the detailed core model."""

    def run():
        rng = np.random.Generator(np.random.PCG64(0))
        pipe = CorePipeline((HPC, HPC), (4, 6), rng)
        pipe.run(20_000)
        return pipe.counters[0].completed

    completed = benchmark(run)
    assert completed > 0
    _record(record_bench, "cycle_pipeline_throughput", benchmark,
            cycles_per_round=20_000)


def test_analytic_solve_speed(benchmark, record_bench):
    """Uncached closed-form solves (the runtime's rate queries)."""

    def run():
        model = AnalyticThroughputModel(AnalyticModelConfig())
        total = 0.0
        for pa in (2, 3, 4, 5, 6):
            for pb in (2, 3, 4, 5, 6):
                total += model.core_ipc(HPC, HPC, pa, pb)[0]
        return total

    total = benchmark(run)
    assert total > 0
    _record(record_bench, "analytic_solve_speed", benchmark, solves_per_round=25)


def test_fluid_runtime_event_rate(benchmark, record_bench):
    """End-to-end DES: a 4-rank, 20-barrier application per round."""
    system = System(SystemConfig())
    works = [1e9, 2e9, 3e9, 4e9]

    def run():
        return system.run(
            barrier_loop_programs(works, iterations=20),
            ProcessMapping.identity(4),
        ).events_processed

    events = benchmark(run)
    assert events > 20
    _record(record_bench, "fluid_runtime_event_rate", benchmark,
            events_per_round=events)
