"""Raw simulator performance (classic pytest-benchmark targets).

Not a paper table — these track the speed of the substrate itself so
regressions in the hot paths (cycle pipeline stepping, fluid-runtime
event processing, analytic solves) are visible across commits.
"""

import numpy as np

from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.smt.analytic import AnalyticModelConfig, AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.pipeline import CorePipeline
from repro.workloads.generators import barrier_loop_programs

HPC = BASE_PROFILES["hpc"]


def test_cycle_pipeline_throughput(benchmark):
    """Cycles simulated per second of the detailed core model."""

    def run():
        rng = np.random.Generator(np.random.PCG64(0))
        pipe = CorePipeline((HPC, HPC), (4, 6), rng)
        pipe.run(20_000)
        return pipe.counters[0].completed

    completed = benchmark(run)
    assert completed > 0


def test_analytic_solve_speed(benchmark):
    """Uncached closed-form solves (the runtime's rate queries)."""

    def run():
        model = AnalyticThroughputModel(AnalyticModelConfig())
        total = 0.0
        for pa in (2, 3, 4, 5, 6):
            for pb in (2, 3, 4, 5, 6):
                total += model.core_ipc(HPC, HPC, pa, pb)[0]
        return total

    total = benchmark(run)
    assert total > 0


def test_fluid_runtime_event_rate(benchmark):
    """End-to-end DES: a 4-rank, 20-barrier application per round."""
    system = System(SystemConfig())
    works = [1e9, 2e9, 3e9, 4e9]

    def run():
        return system.run(
            barrier_loop_programs(works, iterations=20),
            ProcessMapping.identity(4),
        ).events_processed

    events = benchmark(run)
    assert events > 20
