"""Ablation: why the paper had to patch the kernel (section VI).

Reruns the balanced MetBench-style configuration under three regimes:

* patched kernel (the paper's): priorities persist — balancing works;
* standard kernel with timer ticks: every tick resets priorities to
  MEDIUM, silently destroying the assignment within 4 ms;
* no balancing at all (the reference).
"""

from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.util.tables import TextTable
from repro.workloads.generators import barrier_loop_programs

WORKS = [1e9, 4e9, 1e9, 4e9]
PRIOS = {0: 4, 1: 6, 2: 4, 3: 6}


def run_matrix():
    out = {}
    baseline = System(SystemConfig(kernel="patched")).run(
        barrier_loop_programs(WORKS, iterations=4), ProcessMapping.identity(4)
    )
    out["unbalanced"] = baseline.total_time
    patched = System(SystemConfig(kernel="patched", tick_hz=250.0)).run(
        barrier_loop_programs(WORKS, iterations=4),
        ProcessMapping.identity(4),
        priorities=PRIOS,
    )
    out["patched + priorities"] = patched.total_time
    standard = System(SystemConfig(kernel="standard", tick_hz=250.0)).run(
        barrier_loop_programs(WORKS, iterations=4),
        ProcessMapping.identity(4),
        priorities=PRIOS,
    )
    out["standard + priorities"] = standard.total_time
    return out


def test_kernel_ablation(benchmark, save_artifact):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    table = TextTable(
        ["configuration", "exec time", "vs unbalanced"],
        title="Ablation: standard vs patched kernel (250 Hz timer ticks)",
    )
    ref = results["unbalanced"]
    for name, t in results.items():
        table.add_row([name, f"{t:.2f}s", f"{(t - ref) / ref * 100:+.2f}%"])
    save_artifact("ablation_kernel", table.render())

    # Balancing works on the patched kernel...
    assert results["patched + priorities"] < ref * 0.95
    # ...and is defeated by the standard kernel's priority resets.
    assert results["standard + priorities"] > results["patched + priorities"] * 1.03
