"""Priority-search performance (classic pytest-benchmark targets).

Tracks the cost of the automated case-study search from
:mod:`repro.core.search`: an exhaustive sweep over a small candidate
space, serial vs. the process-pool path, with the throughput-model
cache accounting recorded alongside the timings in
``benchmarks/results/BENCH_simulator.json``.
"""

import pytest

from repro.core.search import exhaustive_priority_search
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.workloads.generators import barrier_loop_programs

MAPPING = ProcessMapping.identity(4)
WORKS = [1e9, 2e9, 3e9, 4e9]


def factory():
    return barrier_loop_programs(WORKS, iterations=5)


def _record(record_bench, name, benchmark, result):
    st = benchmark.stats.stats
    record_bench(
        name,
        {
            "mean_s": st.mean,
            "min_s": st.min,
            "median_s": st.median,
            "stddev_s": st.stddev,
            "rounds": st.rounds,
            "evaluations": result.stats.evaluations,
            "cache_hits": result.stats.cache_hits,
            "cache_misses": result.stats.cache_misses,
            "workers": result.stats.workers,
        },
    )


def test_exhaustive_search_serial(benchmark, record_bench):
    """16 candidates (levels 4-5, gap <= 1) on a warm shared model."""
    system = System(SystemConfig())

    def run():
        return exhaustive_priority_search(
            system, factory, MAPPING, levels=(4, 5), max_gap=1
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.best_time > 0
    _record(record_bench, "exhaustive_search_serial", benchmark, result)


def test_exhaustive_search_parallel(benchmark, record_bench):
    """Same sweep through the process pool (falls back to serial when
    the pool cannot start); the ranking must match the serial sweep."""
    serial = exhaustive_priority_search(
        System(SystemConfig()), factory, MAPPING, levels=(4, 5), max_gap=1
    )

    def run():
        return exhaustive_priority_search(
            System(SystemConfig()),
            factory,
            MAPPING,
            levels=(4, 5),
            max_gap=1,
            workers=2,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Per-candidate times must agree to ~1e-5; they can differ in the
    # last digits because the serial model cache warms *across*
    # candidates (its external-traffic keys are rounded to 1e-4) while
    # each worker starts from the same pickled snapshot — which also
    # lets symmetric near-ties swap ranking positions.
    par_times = {tuple(sorted(a.priority_dict.items())): t for a, t, _ in result.entries}
    ser_times = {tuple(sorted(a.priority_dict.items())): t for a, t, _ in serial.entries}
    assert par_times.keys() == ser_times.keys()
    for key, t_ser in ser_times.items():
        assert par_times[key] == pytest.approx(t_ser, rel=1e-5)
    _record(record_bench, "exhaustive_search_parallel", benchmark, result)
