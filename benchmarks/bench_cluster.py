"""Cluster placement search: node-symmetry pruning, proven and priced.

Two experiments, results in ``benchmarks/results/BENCH_cluster.json``:

*Equivalence* — 4 ranks on a 4-node cluster, where the node-symmetry
cut bites hardest: 4^4 = 256 raw placements collapse to 15 canonical
classes (17x, comfortably past the 4x acceptance bar). Both the pruned
and the unpruned two-level sweeps are fully simulated and the winners'
trace digests must be bit-identical — pruning collapses symmetry, not
information (the canonical-form argument lives in
``docs/cluster.md``; the unit-level proof in
``tests/core/test_placement.py``).

*Differential* — the distant-neighbour acceptance case: 8 ranks on 2
nodes whose partners sit half the ring away, so the identity layout
puts every exchange on the wire. The two-level (placement -> per-node
priority) search must beat the best priority-only assignment on the
default layout, and the gap is recorded.
"""

import json
import pathlib
import time

from repro.cluster import ClusterConfig, ClusterSystem, ClusterSystemConfig
from repro.core import candidate_placements, two_level_search
from repro.scenarios.engines import trace_digest
from repro.workloads.generators import distant_pairs_programs

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_cluster.json"
)

SMALL_WORKS = [1.0e9, 2.6e9, 1.4e9, 3.0e9]
LARGE_WORKS = [1.0e9, 2.6e9, 1.4e9, 3.0e9, 1.8e9, 2.2e9, 1.2e9, 2.8e9]
EXCHANGE_BYTES = 16_000_000


def small_factory():
    return distant_pairs_programs(
        SMALL_WORKS, iterations=2, exchange_bytes=EXCHANGE_BYTES
    )


def large_factory():
    return distant_pairs_programs(
        LARGE_WORKS, iterations=2, exchange_bytes=EXCHANGE_BYTES
    )


def _record(update: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    results: dict = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            results = {}
    results.update(update)
    RESULTS_PATH.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")


def _cluster(n_nodes: int) -> ClusterSystem:
    return ClusterSystem(
        ClusterSystemConfig(cluster=ClusterConfig(n_nodes=n_nodes))
    )


def _best_digest(system, factory, result) -> str:
    assignment, _, _ = result.entries[0]
    run = system.run(
        list(factory()),
        mapping=assignment.mapping,
        priorities=assignment.priority_dict,
        label="bench.cluster.best",
    )
    return trace_digest(run)


def test_pruned_matches_unpruned_best_digest():
    """Acceptance: same winner physics, >= 4x fewer placements."""
    system = _cluster(4)
    placements_pruned = candidate_placements(4, 4)
    placements_total = candidate_placements(4, 4, prune_symmetry=False)
    ratio = len(placements_total) / len(placements_pruned)

    t0 = time.perf_counter()
    pruned = two_level_search(
        system, small_factory, n_ranks=4, n_nodes=4,
        levels=(4, 5, 6), max_gap=2, keep_top=1,
    )
    pruned_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    unpruned = two_level_search(
        system, small_factory, n_ranks=4, n_nodes=4,
        levels=(4, 5, 6), max_gap=2, keep_top=1, prune_symmetry=False,
    )
    unpruned_s = time.perf_counter() - t0

    pruned_digest = _best_digest(system, small_factory, pruned)
    unpruned_digest = _best_digest(system, small_factory, unpruned)

    assert pruned_digest == unpruned_digest
    assert pruned.entries[0][1] == unpruned.entries[0][1]
    assert ratio >= 4.0

    _record({
        "equivalence": {
            "n_ranks": 4,
            "n_nodes": 4,
            "levels": [4, 5, 6],
            "max_gap": 2,
            "placements_pruned": len(placements_pruned),
            "placements_unpruned": len(placements_total),
            "placement_ratio": ratio,
            "pruned_candidates": pruned.stats.evaluations,
            "unpruned_candidates": unpruned.stats.evaluations,
            "pruned_s": pruned_s,
            "unpruned_s": unpruned_s,
            "candidates_per_s": pruned.stats.evaluations / pruned_s,
            "best_time_s": pruned.entries[0][1],
            "best_trace_digest": pruned_digest,
            "digests_identical": pruned_digest == unpruned_digest,
        },
    })


def test_two_level_beats_priority_only_on_distant_pairs():
    """Acceptance: opening the placement axis beats priority-only
    tuning on the default (identity, maximally network-crossing)
    layout."""
    system = _cluster(2)
    identity = ((0, 1, 2, 3), (4, 5, 6, 7))

    priority_only = two_level_search(
        system, large_factory, n_ranks=8, n_nodes=2,
        levels=(4, 5, 6), max_gap=2, keep_top=1, placements=[identity],
    )

    t0 = time.perf_counter()
    full = two_level_search(
        system, large_factory, n_ranks=8, n_nodes=2,
        levels=(4, 5, 6), max_gap=2, keep_top=1,
    )
    full_s = time.perf_counter() - t0

    best_full = full.entries[0][1]
    best_priority_only = priority_only.entries[0][1]
    assert best_full < best_priority_only

    _record({
        "differential": {
            "n_ranks": 8,
            "n_nodes": 2,
            "exchange_bytes": EXCHANGE_BYTES,
            "levels": [4, 5, 6],
            "max_gap": 2,
            "priority_only_best_s": best_priority_only,
            "two_level_best_s": best_full,
            "gain_percent": (
                (best_priority_only - best_full) / best_priority_only * 100.0
            ),
            "evaluated_candidates": full.stats.evaluations,
            "sweep_s": full_s,
            "candidates_per_s": full.stats.evaluations / full_s,
        },
    })
