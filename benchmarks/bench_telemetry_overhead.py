"""Telemetry overhead: the off-path must cost (near) nothing.

Runs the same warm fluid-engine scenario with the hot-path telemetry
gate off and on, records both distributions to
``benchmarks/results/BENCH_telemetry.json``, and asserts:

* the trace digest is identical either way (observational neutrality —
  the same property ``tests/telemetry/test_trace_neutrality.py`` pins);
* the off-path stays within noise of the pre-refactor baseline recorded
  in ``_meta`` (measured at the commit before the telemetry layer
  existed, on the same workload);
* enabling the gate costs at most a modest constant factor.

The workload reproduces the baseline measurement exactly: a 4-rank
``barrier_loop`` with 200 iterations on a warm engine, timed over
repeated runs (several thousand simulation events per run, so the
per-run ``is None`` checks are measured against real event-loop work).
"""

import json
import pathlib
import time

from repro.scenarios.registry import get_engine
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry import set_enabled

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_telemetry.json"

REPS = 7

#: Off-path regression band vs the _meta baseline. Generous because the
#: baseline may come from another machine/load; same-machine runs sit
#: well inside it. The off-vs-on comparison below is load-free.
BASELINE_NOISE_FACTOR = 1.5

#: Measured pre-refactor (commit 8f492a7, this exact workload/loop):
#: the cross-commit anchor, seeded into _meta on first generation and
#: preserved across regenerations afterwards.
_BASELINE_META = {
    "baseline_commit": "8f492a7",
    "baseline_note": (
        "fluid barrier_loop iterations=200, warm engine, 7 reps, "
        "measured before the telemetry layer was introduced"
    ),
    "baseline_digest_prefix": "c260ede79281a242",
    "baseline_min_s": 0.014150,
    "baseline_median_s": 0.014824,
    "baseline_mean_s": 0.014941,
}


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-telemetry",
        kind="barrier_loop",
        works=(1.0e9, 2.0e9, 1.5e9, 3.0e9),
        iterations=200,
        priorities=((0, 4), (1, 6), (2, 4), (3, 6)),
    )


def _measure(engine, spec, telemetry_on: bool) -> dict:
    previous = set_enabled(telemetry_on)
    try:
        engine.run(spec)  # warm run under the same gate state
        digest = None
        times = []
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = engine.run(spec)
            times.append(time.perf_counter() - t0)
            digest = result.digest
    finally:
        set_enabled(previous)
    times.sort()
    return {
        "digest": digest,
        "reps": REPS,
        "min_s": times[0],
        "median_s": times[len(times) // 2],
        "mean_s": sum(times) / len(times),
        "max_s": times[-1],
    }


def test_telemetry_overhead():
    engine = get_engine("fluid")
    spec = _spec()

    off = _measure(engine, spec, telemetry_on=False)
    on = _measure(engine, spec, telemetry_on=True)

    # Neutrality: the gate may not move a single trace byte.
    assert off["digest"] == on["digest"]
    assert off["digest"].startswith(_BASELINE_META["baseline_digest_prefix"])

    doc = {
        "workload": spec.to_doc(),
        "telemetry_off": off,
        "telemetry_on": on,
        "on_over_off": on["median_s"] / off["median_s"],
    }

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    meta = dict(_BASELINE_META)
    if RESULTS_PATH.exists():
        # Keep any hand-curated _meta across regenerations (matching the
        # BENCH_service.json convention).
        try:
            meta = json.loads(RESULTS_PATH.read_text())["_meta"]
        except (ValueError, KeyError):
            pass
    doc["_meta"] = meta
    doc["off_over_baseline"] = off["median_s"] / meta["baseline_median_s"]
    RESULTS_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")

    print(
        f"\ntelemetry off: median {off['median_s'] * 1e3:.2f} ms, "
        f"on: median {on['median_s'] * 1e3:.2f} ms "
        f"(x{doc['on_over_off']:.3f}); "
        f"off vs pre-refactor baseline x{doc['off_over_baseline']:.3f}"
        f"\n[saved to {RESULTS_PATH}]"
    )

    # Off-path must be within noise of the pre-telemetry baseline ...
    assert doc["off_over_baseline"] <= BASELINE_NOISE_FACTOR, (
        f"telemetry-off run {doc['off_over_baseline']:.2f}x the "
        f"pre-refactor baseline (band {BASELINE_NOISE_FACTOR}x)"
    )
    # ... and the gate itself may only cost a modest constant factor
    # (it adds a handful of perf_counter reads and counter increments
    # per *run*, nothing per event).
    assert doc["on_over_off"] <= 1.25, (
        f"enabling telemetry cost {doc['on_over_off']:.2f}x"
    )
