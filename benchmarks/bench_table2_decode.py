"""Paper Table II: decode-cycle allocation vs priority difference.

Regenerates the architectural table and cross-checks it against decode
shares *measured* by the cycle-level pipeline simulator.
"""

from repro.experiments.table2 import decode_cycles_table, measured_decode_shares
from repro.util.tables import TextTable


def render_table2() -> str:
    arch = decode_cycles_table().render()
    measured = TextTable(
        ["diff", "expected A", "expected B", "measured A", "measured B"],
        title="Measured decode shares (cycle simulator)",
    )
    rows = measured_decode_shares(measure_cycles=20_000, warmup_cycles=2_000)
    for diff, ea, eb, ma, mb in rows:
        measured.add_row([diff, f"{ea:.4f}", f"{eb:.4f}", f"{ma:.4f}", f"{mb:.4f}"])
    return arch + "\n\n" + measured.render(), rows


def test_table2(benchmark, save_artifact):
    rendered, rows = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    save_artifact("table2_decode_cycles", rendered)
    # Paper rows: R = 2, 4, 8, 16, 32 with (R-1):1 splits.
    assert "31" in rendered and "15" in rendered
    for diff, ea, eb, ma, mb in rows:
        assert abs(ma - ea) < 0.01, f"measured share off at diff {diff}"
        assert abs(mb - eb) < 0.01, f"measured share off at diff {diff}"
