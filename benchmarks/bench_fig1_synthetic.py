"""Paper Figure 1: the expected effect of smart resource allocation.

Regenerates both panels — (a) an imbalanced 4-rank application, (b) the
same application with the straggler given more hardware resources — as
ASCII traces, and asserts the improvement the figure illustrates.
"""

from repro.experiments.figures import figure1_traces


def test_figure1(benchmark, system, save_artifact):
    chart_a, chart_b, before, after = benchmark.pedantic(
        lambda: figure1_traces(system, width=90, iterations=3),
        rounds=1,
        iterations=1,
    )
    artefact = (
        f"Figure 1(a) imbalanced: exec {before.total_time:.2f}s, "
        f"imbalance {before.imbalance_percent:.1f}%\n{chart_a}\n\n"
        f"Figure 1(b) rebalanced: exec {after.total_time:.2f}s, "
        f"imbalance {after.imbalance_percent:.1f}%\n{chart_b}"
    )
    save_artifact("figure1_synthetic", artefact)
    assert after.total_time < before.total_time
    assert after.imbalance_percent < before.imbalance_percent
    # P1 is the bottleneck in (a): it never waits, the others do.
    assert before.stats.bottleneck_rank == 0
