"""Ablation: the exponential penalty of the priority gap (section VII-A).

Sweeps the per-core priority difference 0..4 on the MetBench-style
workload and reports victim/favoured throughput plus application time —
the quantitative version of the paper's observation that "the performance
of the penalized process can be reduced much more than linearly (in fact,
exponentially)".
"""

from repro.machine.mapping import ProcessMapping
from repro.smt.instructions import BASE_PROFILES
from repro.util.tables import TextTable
from repro.workloads.generators import barrier_loop_programs

#: (penalised, favoured) pairs realising gaps 0..4 within the OS range,
#: penalised side first (priority 2 is the lowest user level).
GAP_PAIRS = {0: (4, 4), 1: (4, 5), 2: (4, 6), 3: (3, 6), 4: (2, 6)}


def sweep(system):
    model = system.model
    hpc = BASE_PROFILES["hpc"]
    works = [1e9, 4e9, 1e9, 4e9]
    rows = []
    for gap, (lo, hi) in sorted(GAP_PAIRS.items()):
        victim_ipc, favoured_ipc = model.core_ipc(hpc, hpc, lo, hi)
        result = system.run(
            barrier_loop_programs(works, iterations=4),
            ProcessMapping.identity(4),
            priorities={0: lo, 1: hi, 2: lo, 3: hi},
        )
        rows.append(
            (gap, victim_ipc, favoured_ipc, result.total_time, result.imbalance_percent)
        )
    return rows


def test_priority_gap_sweep(benchmark, system, save_artifact):
    rows = benchmark.pedantic(lambda: sweep(system), rounds=1, iterations=1)
    table = TextTable(
        ["gap", "victim IPC", "favoured IPC", "exec time", "imbalance %"],
        title="Ablation: priority-gap sweep (MetBench-style workload)",
    )
    for gap, v, f, t, imb in rows:
        table.add_row([gap, f"{v:.3f}", f"{f:.3f}", f"{t:.2f}s", f"{imb:.2f}"])
    save_artifact("ablation_prio_sweep", table.render())

    victims = [v for _, v, _, _, _ in rows]
    times = [t for _, _, _, t, _ in rows]
    # Victim throughput decays at least geometrically with the gap...
    for a, b in zip(victims, victims[1:]):
        assert b < a * 0.75
    # ...which means there is a best gap beyond which time gets worse:
    best_gap = min(range(len(times)), key=times.__getitem__)
    assert 0 < best_gap < 4
    assert times[4] > times[best_gap] * 1.2  # the cliff
