"""Service-layer throughput/latency benchmark.

Drives an in-process :class:`~repro.service.executor.ScenarioService`
(no HTTP, so the numbers isolate the queue/cache/worker path) with two
request mixes — all-miss ("cold", every spec a fresh fingerprint) and
90 % cache-hit ("hot90", the production shape once a scenario corpus
stabilises) — and records sustained req/s plus p50/p99 latencies to
``benchmarks/results/BENCH_service.json``.

The acceptance bar rides along as an assertion: the cached-hit path
must be at least 10x faster than the cold path (it is ~100x — a dict
lookup vs a full simulation).
"""

import json
import pathlib
import time

from repro.oracle.differential import Scenario
from repro.service.executor import ScenarioService, ServiceConfig, percentile
from repro.service.jobs import JobSpec, JobState

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_service.json"

WORKERS = 4
COLD_REQUESTS = 24
HOT_REQUESTS = 120  # 90% of these repeat a warm working set


def _spec(index: int) -> JobSpec:
    """Small distinct scenarios: ~ms-scale sims, unique fingerprints."""
    return JobSpec(
        scenario=Scenario(
            name=f"bench-{index}",
            kind="barrier_loop",
            works=(1.0e9 + index * 1.0e6, 2.0e9, 1.5e9, 3.0e9),
            iterations=2,
            priorities=((0, 4), (1, 6), (2, 4), (3, 6)),
        )
    )


def _drive(service: ScenarioService, specs) -> dict:
    """Submit everything, wait for all, summarise wall/latency."""
    t0 = time.perf_counter()
    jobs = [service.submit(spec) for spec in specs]
    for job in jobs:
        service.wait(job.id, timeout=300.0)
    wall = time.perf_counter() - t0
    assert all(j.state is JobState.DONE for j in jobs)
    latencies = [j.latency_s for j in jobs]
    return {
        "requests": len(jobs),
        "wall_s": wall,
        "req_per_s": len(jobs) / wall,
        "latency_p50_s": percentile(latencies, 50.0),
        "latency_p99_s": percentile(latencies, 99.0),
        "latency_mean_s": sum(latencies) / len(latencies),
        "sources": {
            source: sum(1 for j in jobs if j.source == source)
            for source in ("computed", "cache", "coalesced")
        },
    }


def test_service_throughput_mixes():
    config = ServiceConfig(
        workers=WORKERS,
        queue_depth=max(COLD_REQUESTS, HOT_REQUESTS) + 8,
        default_timeout_s=None,  # inline attempts: workers keep warm models
    )
    doc = {"workers": WORKERS}
    with ScenarioService(config) as service:
        # -- cold: every request is a fresh fingerprint (0% hit) -------------
        cold = _drive(
            service, [_spec(i) for i in range(COLD_REQUESTS)]
        )
        assert cold["sources"]["computed"] == COLD_REQUESTS
        doc["cold_0pct_hit"] = cold

        # -- hot90: 90% of requests repeat the (now cached) working set ------
        working_set = 12
        hot_specs = []
        fresh = 1000  # fingerprints disjoint from the cold phase
        for i in range(HOT_REQUESTS):
            if i % 10 == 9:  # every 10th request is a miss
                fresh += 1
                hot_specs.append(_spec(fresh))
            else:
                hot_specs.append(_spec(i % working_set))
        hot = _drive(service, hot_specs)
        doc["hot_90pct_hit"] = hot

        # -- isolated cached-hit latency (the acceptance ratio) --------------
        cached_spec = _spec(0)
        t0 = time.perf_counter()
        reps = 200
        for _ in range(reps):
            job = service.run(cached_spec, timeout=30.0)
            assert job.source == "cache"
        cached_mean = (time.perf_counter() - t0) / reps
        doc["cached_hit_mean_s"] = cached_mean
        doc["cold_compute_mean_s"] = cold["latency_mean_s"]
        doc["cached_speedup_x"] = cold["latency_mean_s"] / cached_mean
        doc["cache"] = service.metrics()["cache"]

    assert doc["cached_speedup_x"] >= 10.0, (
        f"cached path only {doc['cached_speedup_x']:.1f}x faster than cold"
    )
    assert hot["req_per_s"] > cold["req_per_s"]

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    if RESULTS_PATH.exists():
        # Keep any hand-written "_meta" annotation (measurement context,
        # cross-commit baselines) across regenerations, matching the
        # BENCH_simulator.json convention.
        try:
            doc["_meta"] = json.loads(RESULTS_PATH.read_text())["_meta"]
        except (ValueError, KeyError):
            pass
    RESULTS_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(
        f"\ncold {cold['req_per_s']:.1f} req/s "
        f"(p50 {cold['latency_p50_s'] * 1e3:.1f} ms, "
        f"p99 {cold['latency_p99_s'] * 1e3:.1f} ms); "
        f"hot90 {hot['req_per_s']:.1f} req/s "
        f"(p50 {hot['latency_p50_s'] * 1e3:.1f} ms, "
        f"p99 {hot['latency_p99_s'] * 1e3:.1f} ms); "
        f"cached hit {doc['cached_speedup_x']:.0f}x faster than cold"
        f"\n[saved to {RESULTS_PATH}]"
    )
