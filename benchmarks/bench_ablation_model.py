"""Ablation: analytic throughput model vs cycle-level simulator.

The experiments default to the closed-form model; this bench quantifies
how far its operating points sit from cycle-sim measurements across the
priority sweep, and how much simulation wall-clock the closed form buys.
"""

import time

from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.throughput import ThroughputTable
from repro.util.tables import TextTable

PAIRS = {0: (4, 4), 1: (5, 4), 2: (6, 4), 3: (6, 3), 4: (6, 2)}


def compare():
    analytic = AnalyticThroughputModel()
    cycle = ThroughputTable(warmup_cycles=5_000, measure_cycles=30_000)
    hpc = BASE_PROFILES["hpc"]
    rows = []
    t0 = time.perf_counter()
    for diff, (pa, pb) in sorted(PAIRS.items()):
        a = analytic.core_ipc(hpc, hpc, pa, pb)
        rows.append((diff, a))
    t_analytic = time.perf_counter() - t0
    t0 = time.perf_counter()
    measured = []
    for diff, (pa, pb) in sorted(PAIRS.items()):
        m = cycle.core_ipc(hpc, hpc, pa, pb)
        measured.append((diff, m))
    t_cycle = time.perf_counter() - t0
    return rows, measured, t_analytic, t_cycle


def test_model_ablation(benchmark, save_artifact):
    rows, measured, t_analytic, t_cycle = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    table = TextTable(
        ["diff", "analytic fav", "cycle fav", "analytic victim", "cycle victim"],
        title=(
            "Ablation: analytic vs cycle model "
            f"(query time {t_analytic * 1e3:.1f} ms vs {t_cycle * 1e3:.0f} ms)"
        ),
    )
    for (diff, (fa_f, fa_v)), (_, (cy_f, cy_v)) in zip(rows, measured):
        # Thread A is the favoured one in these pairs (pa >= pb).
        table.add_row(
            [diff, f"{fa_f:.3f}", f"{cy_f:.3f}", f"{fa_v:.3f}", f"{cy_v:.3f}"]
        )
    save_artifact("ablation_model", table.render())

    # Same qualitative curve: victims decay monotonically in both.
    analytic_victims = [v for _, (_, v) in rows][1:]
    cycle_victims = [v for _, (_, v) in measured][1:]
    assert analytic_victims == sorted(analytic_victims, reverse=True)
    assert cycle_victims == sorted(cycle_victims, reverse=True)
    # The closed form is at least an order of magnitude faster to query.
    assert t_analytic * 10 < t_cycle
