"""Ablation: static vs dynamic balancing on a drifting workload.

The paper's conclusion argues for a dynamic OS-level balancer because
SIESTA's bottleneck migrates between iterations. This bench builds a
workload whose hot rank alternates phases, then compares: no balancing,
the best *static* assignment for the average profile, and the dynamic
controller.
"""

from repro.core.dynamic import DynamicBalancer, DynamicBalancerConfig
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.mpi.process import RankApi
from repro.util.tables import TextTable

PHASE_WORK = 2e9
N_PHASES = 8


def drifting_programs():
    """Rank 1 is hot in even phases, rank 3 in odd phases (others light)."""

    def make(rank):
        def program(mpi: RankApi):
            for phase in range(N_PHASES):
                hot = 1 if phase % 2 == 0 else 3
                work = PHASE_WORK * (3.0 if rank == hot else 1.0)
                yield mpi.compute(work, profile="hpc")
                yield mpi.barrier()

        return program

    return [make(r) for r in range(4)]


def run_matrix():
    system = System(SystemConfig())
    out = {}
    out["unbalanced"] = system.run(
        drifting_programs(), ProcessMapping.identity(4)
    ).total_time
    # Static plan from the *average* profile: both 1 and 3 look heavy, so
    # a static balancer boosts both permanently.
    out["static (avg profile)"] = system.run(
        drifting_programs(),
        ProcessMapping.identity(4),
        priorities={0: 4, 1: 5, 2: 4, 3: 5},
    ).total_time
    dyn = DynamicBalancer(DynamicBalancerConfig(interval=0.3, threshold=0.08))
    out["dynamic controller"] = system.run(
        drifting_programs(),
        ProcessMapping.identity(4),
        controllers=[dyn],
    ).total_time
    out["_adjustments"] = len(dyn.adjustments)
    return out


def test_dynamic_ablation(benchmark, save_artifact):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    adjustments = results.pop("_adjustments")
    table = TextTable(
        ["policy", "exec time", "vs unbalanced"],
        title=f"Ablation: static vs dynamic balancing (drifting bottleneck; "
        f"{adjustments} dynamic adjustments)",
    )
    ref = results["unbalanced"]
    for name, t in results.items():
        table.add_row([name, f"{t:.2f}s", f"{(t - ref) / ref * 100:+.2f}%"])
    save_artifact("ablation_dynamic", table.render())

    assert adjustments > 0
    # The dynamic controller must beat no balancing on a drifting load.
    assert results["dynamic controller"] < ref
