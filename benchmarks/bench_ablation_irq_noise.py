"""Ablation: the 'interrupt annoyance problem' (paper section II-B).

All device interrupts routed to CPU0 make the OS noise there higher than
on any other CPU, imbalancing even a perfectly balanced application.
Sweeps the IRQ rate and reports the induced imbalance and slowdown, then
shows the priority-based compensation (boost the afflicted rank over its
core sibling).
"""

from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.util.tables import TextTable
from repro.workloads.generators import barrier_loop_programs

#: Per-interrupt handler cost is 20 us (InterruptSource default); at
#: 4 kHz that steals ~8 % of CPU0. Each interrupt is a discrete simulated
#: event, so the sweep is kept short (two barrier iterations).
IRQ_RATES = (0.0, 1000.0, 4000.0)
WORKS = [1e9, 0.45e9, 1e9, 0.45e9]  # heavy ranks on cpu0/cpu2, slack siblings


def run_sweep():
    rows = []
    for rate in IRQ_RATES:
        system = System(SystemConfig(irq_rate_hz=rate, seed=3))
        base = system.run(
            barrier_loop_programs(WORKS, iterations=2), ProcessMapping.identity(4)
        )
        boosted = system.run(
            barrier_loop_programs(WORKS, iterations=2),
            ProcessMapping.identity(4),
            priorities={0: 5, 1: 4, 2: 4, 3: 4},
        )
        rows.append(
            (
                rate,
                base.total_time,
                base.imbalance_percent,
                base.stats.rank_stats(0).noise_fraction * 100,
                boosted.total_time,
            )
        )
    return rows


def test_irq_annoyance(benchmark, save_artifact):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = TextTable(
        ["IRQ rate (Hz)", "exec", "imb %", "P1 noise %", "exec w/ P1 boost"],
        title="Ablation: interrupt annoyance on CPU0, and priority compensation",
    )
    for rate, t, imb, noise, t_boost in rows:
        table.add_row(
            [f"{rate:.0f}", f"{t:.2f}s", f"{imb:.1f}", f"{noise:.1f}", f"{t_boost:.2f}s"]
        )
    save_artifact("ablation_irq_noise", table.render())

    quiet = rows[0]
    loud = rows[-1]
    # More IRQs on CPU0 -> more stolen time -> slower run.
    assert loud[3] > 4.0  # >4% of P1's time stolen at 4 kHz
    assert loud[1] > quiet[1]
    # The boost claws most of it back (the sibling had slack).
    assert loud[4] < loud[1]
    assert loud[4] - quiet[1] < 0.6 * (loud[1] - quiet[1])
