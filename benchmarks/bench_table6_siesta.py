"""Paper Table VI + Figure 4: SIESTA cases ST, A-D.

Shape targets: balanced cases (B, C) beat A modestly; the over-boosted
case D loses by double digits and moves the bottleneck onto P1; ST mode
is far slower than the 4-rank SMT run.
"""

import pytest

from repro.experiments.cases import siesta_suite
from repro.experiments.figures import case_trace
from repro.experiments.runner import comparison_table, run_suite


def test_table6_siesta(benchmark, system, save_artifact):
    suite = siesta_suite(n_iterations=40)
    results = benchmark.pedantic(
        lambda: run_suite(suite, system), rounds=1, iterations=1
    )
    parts = [comparison_table(results).render()]
    for r in results:
        prios = r.case.priorities or {i: 4 for i in range(r.case.n_ranks)}
        cores = {i: r.case.mapping.core_of(i) + 1 for i in range(r.case.n_ranks)}
        parts.append(
            r.run.stats.as_table(prios, cores, label=f"SIESTA case {r.case.name}").render()
        )
    save_artifact("table6_siesta", "\n\n".join(parts))

    t = {r.case.name: r.measured_exec for r in results}
    by_name = {r.case.name: r for r in results}
    assert t["B"] < t["A"] and t["C"] < t["A"]  # balanced cases win
    assert t["D"] > t["A"] * 1.05  # over-boost backfires (paper: +13.7%)
    assert by_name["D"].run.stats.bottleneck_rank == 0  # P1 starved in D
    assert t["ST"] > t["A"] * 1.1  # paper: +44%


def test_figure4_traces(benchmark, system, save_artifact):
    suite = siesta_suite(n_iterations=40)

    def render():
        panels = []
        for name in ("A", "B", "C", "D"):
            chart, run = case_trace(suite, name, system, width=90)
            panels.append(
                f"Figure 4({name.lower()}) SIESTA case {name} "
                f"(exec {run.total_time:.2f}s, imb {run.imbalance_percent:.1f}%):\n"
                + chart
            )
        return "\n\n".join(panels)

    rendered = benchmark.pedantic(render, rounds=1, iterations=1)
    save_artifact("figure4_siesta_traces", rendered)
    assert "case D" in rendered
