"""Ablation: spin-waiting vs block-waiting MPI ranks.

The paper's machine ran MPI-CH, which busy-waits: a blocked rank keeps
consuming its core's decode slots. This ablation reruns the imbalanced
workload with ``wait_mode="block"`` (waiters vacate the context) to
quantify how much of the imbalance *cost* is the spinning itself — and
shows that priority balancing matters most in the spin-wait world.
"""

from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RuntimeConfig
from repro.util.tables import TextTable
from repro.workloads.generators import barrier_loop_programs

WORKS = [1e9, 4e9, 1e9, 4e9]


def run_matrix():
    rows = {}
    for wait_mode in ("spin", "block"):
        system = System(
            SystemConfig(runtime=RuntimeConfig(wait_mode=wait_mode))
        )
        base = system.run(
            barrier_loop_programs(WORKS, iterations=4), ProcessMapping.identity(4)
        )
        balanced = system.run(
            barrier_loop_programs(WORKS, iterations=4),
            ProcessMapping.identity(4),
            priorities={0: 4, 1: 6, 2: 4, 3: 6},
        )
        rows[wait_mode] = (base.total_time, balanced.total_time)
    return rows


def test_spinwait_ablation(benchmark, save_artifact):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    table = TextTable(
        ["wait mode", "baseline", "balanced", "gain %"],
        title="Ablation: spin-wait vs block-wait",
    )
    for mode, (base, bal) in rows.items():
        table.add_row(
            [mode, f"{base:.2f}s", f"{bal:.2f}s", f"{(base - bal) / base * 100:.2f}"]
        )
    save_artifact("ablation_spinwait", table.render())

    spin_base, spin_bal = rows["spin"]
    block_base, block_bal = rows["block"]
    # Spinning waiters steal resources: the unbalanced run is slower
    # under spin-wait than under block-wait.
    assert spin_base > block_base
    # Balancing helps in both worlds, but buys more where waiters spin.
    spin_gain = spin_base - spin_bal
    block_gain = block_base - block_bal
    assert spin_gain > 0
    assert spin_gain > block_gain
