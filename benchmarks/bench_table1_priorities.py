"""Paper Table I: hardware thread priorities, privilege and encodings."""

from repro.smt.priorities import PRIORITY_TABLE
from repro.util.tables import TextTable


def render_table1() -> str:
    table = TextTable(
        ["Priority", "Priority level", "Privilege level", "or-nop inst."],
        title="Table I: hardware thread priorities in the IBM POWER5",
    )
    for prio in range(8):
        info = PRIORITY_TABLE[prio]
        table.add_row(
            [
                prio,
                info.label,
                info.privilege.label,
                info.or_nop_mnemonic or "-",
            ]
        )
    return table.render()


def test_table1(benchmark, save_artifact):
    rendered = benchmark.pedantic(render_table1, rounds=3, iterations=1)
    save_artifact("table1_priorities", rendered)
    assert "Thread shut off" in rendered
    assert "or 31,31,31" in rendered
    assert "Hypervisor" in rendered and "User" in rendered
