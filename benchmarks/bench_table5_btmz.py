"""Paper Table V + Figure 3: BT-MZ cases ST, A-D.

Shape targets: ST ~+33% over SMT case A; case B (gap 3) much worse than
everything; C and D beat A (paper: -7.4% and -18.1%).
"""

import pytest

from repro.experiments.cases import btmz_suite
from repro.experiments.figures import case_trace
from repro.experiments.runner import comparison_table, run_suite


def test_table5_btmz(benchmark, system, save_artifact):
    suite = btmz_suite(iterations=50)
    results = benchmark.pedantic(
        lambda: run_suite(suite, system), rounds=1, iterations=1
    )
    parts = [comparison_table(results).render()]
    for r in results:
        prios = r.case.priorities or {i: 4 for i in range(r.case.n_ranks)}
        cores = {i: r.case.mapping.core_of(i) + 1 for i in range(r.case.n_ranks)}
        parts.append(
            r.run.stats.as_table(prios, cores, label=f"BT-MZ case {r.case.name}").render()
        )
    save_artifact("table5_btmz", "\n\n".join(parts))

    t = {r.case.name: r.measured_exec for r in results}
    imb = {r.case.name: r.measured_imbalance for r in results}
    assert t["A"] == pytest.approx(81.64, rel=0.08)  # calibrated reference
    assert imb["A"] == pytest.approx(82.23, abs=8.0)
    assert 1.15 < t["ST"] / t["A"] < 1.55  # paper: +32.7%
    assert t["B"] > t["A"]  # gap-3 overshoot loses
    assert t["C"] < t["A"] and t["D"] < t["A"]  # balanced cases win
    # The winner improves by a solid margin (paper D: -18.1%).
    assert (t["A"] - min(t["C"], t["D"])) / t["A"] > 0.03


def test_figure3_traces(benchmark, system, save_artifact):
    suite = btmz_suite(iterations=50)

    def render():
        panels = []
        for name in ("A", "B", "C", "D"):
            chart, run = case_trace(suite, name, system, width=90)
            panels.append(
                f"Figure 3({name.lower()}) BT-MZ case {name} "
                f"(exec {run.total_time:.2f}s, imb {run.imbalance_percent:.1f}%):\n"
                + chart
            )
        return "\n\n".join(panels)

    rendered = benchmark.pedantic(render, rounds=1, iterations=1)
    save_artifact("figure3_btmz_traces", rendered)
    assert "case C" in rendered
