"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures. The
rendered artefact is printed and also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
outputs. ``benchmark.pedantic`` with one round keeps wall-clock sane —
each experiment is itself a full simulated application run.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.machine.system import System, SystemConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def system() -> System:
    """One shared system: the throughput memo cache warms across benches."""
    return System(SystemConfig())


@pytest.fixture(scope="session")
def save_artifact():
    """Writer for rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, content: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n{content}\n[saved to {path}]")

    return write


@pytest.fixture(scope="session")
def record_bench():
    """Accumulator for machine-readable perf numbers.

    Benchmarks call ``record_bench(name, stats_dict)``; at session end
    everything lands in ``benchmarks/results/BENCH_simulator.json`` so
    perf changes are diffable across commits without parsing pytest
    output.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_simulator.json"
    results: dict = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except ValueError:
            results = {}

    def record(name: str, stats: dict) -> None:
        results[name] = stats
        path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")

    yield record
