"""Tournament throughput: cells/second, batched vs scalar execution.

Runs a 7-policy zoo over a 48-cell fuzz corpus twice — once through
``Engine.run_batch`` (the tournament default: one batched sweep per
policy) and once cell-by-cell through scalar ``Engine.run`` — on a cold
:class:`~repro.scenarios.engines.FluidEngine` each way, passed in via
``run_tournament``'s engine override so registry warm-up never
contaminates the ratio. Results land in
``benchmarks/results/BENCH_tournament.json``.

Acceptance rides along as assertions. The hard one is *equivalence*:
the two leaderboards must have identical fingerprints (batch is an
execution strategy, not a different computation). The throughput one is
a floor, not a headline: batched must stay within 10% of scalar even in
the worst case. That bar is deliberately modest physics: every fluid
cell keeps its own discrete event loop (trap cells add hundreds of
controller ticks), so batching only amortises the vectorized presolve —
typically a 1.1-1.2x win on this corpus, but within container jitter on
a bad run. ``bench_batch_engines.py`` owns the headline engine-level
speedups on presolve-bound corpora; this file pins what batching means
*at tournament scale* and records the measured cells/second.
"""

import json
import pathlib
import time

from repro.policies import TournamentConfig, run_tournament
from repro.scenarios.engines import FluidEngine

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_tournament.json"

REPS = 3  # best-of-N keeps single-run container jitter out of the ratio

CONFIG = TournamentConfig(corpus="fuzz", n_scenarios=48, seed=0)

_BASELINE_META = {
    "note": (
        "scalar entries are the pre-tournament serving shape (one "
        "Engine.run per cell). The fluid engine keeps a real discrete "
        "event loop per cell, so the batch payoff at tournament scale "
        "is presolve amortisation only (~1.1-1.2x on this corpus); the "
        "assertions pin fingerprint equivalence and a >= 0.9x floor, "
        "and the engine-level headline ratios live in BENCH_batch.json."
    ),
}


def _best_of(reps, fn):
    """(best_seconds, last_return) over ``reps`` timed calls."""
    best, value = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_tournament_batch_vs_scalar():
    # Cells per tournament: every policy sweep plus the shared baseline
    # sweep (no-op policies reuse the baseline, so this is an upper
    # bound the two strategies share — the ratio is unaffected).
    cells = CONFIG.n_scenarios * (len(CONFIG.policies) + 1)

    batch_s, batched = _best_of(
        REPS, lambda: run_tournament(CONFIG, batch=True, engine=FluidEngine())
    )
    scalar_s, scalar = _best_of(
        REPS, lambda: run_tournament(CONFIG, batch=False, engine=FluidEngine())
    )

    assert batched.fingerprint == scalar.fingerprint, (
        "batch and scalar tournaments computed different leaderboards"
    )
    speedup = scalar_s / batch_s
    assert speedup >= 0.9, (
        f"batched tournament {speedup:.2f}x vs scalar — batching now "
        "costs more than 10% over the scalar loop"
    )

    doc = {
        "config": CONFIG.to_doc(),
        "leaderboard_fingerprint": batched.fingerprint,
        "cells_per_tournament": cells,
        "batch_s": batch_s,
        "batch_cells_per_s": cells / batch_s,
        "scalar_s": scalar_s,
        "scalar_cells_per_s": cells / scalar_s,
        "speedup_x": speedup,
        "_meta": _BASELINE_META,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    if RESULTS_PATH.exists():
        # Keep the committed annotation across regenerations, like the
        # other BENCH_*.json files.
        try:
            doc["_meta"] = json.loads(RESULTS_PATH.read_text())["_meta"]
        except (ValueError, KeyError):
            pass
    RESULTS_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(
        f"\ntournament {CONFIG.corpus} x {CONFIG.n_scenarios}: scalar "
        f"{doc['scalar_cells_per_s']:.0f} -> batch "
        f"{doc['batch_cells_per_s']:.0f} cells/s ({speedup:.2f}x)"
        f"\n[saved to {RESULTS_PATH}]"
    )
