"""Joint (mapping × priority) search: symmetry pruning, proven and priced.

Two experiments, results in ``benchmarks/results/BENCH_joint_search.json``:

*Equivalence* — on the paper chip (4 ranks, 2 cores) the pruned and the
unpruned joint sweeps are both fully simulated. The acceptance bar
rides along as assertions: the two winners' trace digests must be
bit-identical (pruning never changes the physics the search returns —
the digest-level equivalence proof lives in
``tests/core/test_joint_search.py``) while the pruned sweep evaluates
at least 4x fewer candidates (measured: 8x — 24 mappings collapse to 3
canonical classes).

*Scale* — the shape where pruning stops being a nicety: 6 ranks on a
4-core chip. The unpruned mapping axis alone is P(8, 6) = 20,160
injective assignments (336x the 60 canonical classes); crossed with
the per-core priority space the unpruned sweep would be ~1.5 × 10^7
candidates. The pruned sweep — 43,740 candidates, comfortably past
10^4 — is actually run and timed, and the pruning ratios are recorded.
"""

import json
import pathlib
import time

from repro.core import candidate_assignments, candidate_mappings, joint_search
from repro.machine.system import System, SystemConfig
from repro.scenarios.engines import trace_digest
from repro.smt.chip import ChipConfig
from repro.workloads.generators import barrier_loop_programs

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_joint_search.json"
)

SMALL_WORKS = [8e8, 2.4e9, 1.2e9, 2e9]
LARGE_WORKS = [1e9, 2.5e9, 1.5e9, 3e9, 8e8, 2e9]


def small_factory():
    return barrier_loop_programs(SMALL_WORKS, iterations=2)


def large_factory():
    return barrier_loop_programs(LARGE_WORKS, iterations=2)


def _record(update: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    results: dict = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            results = {}
    results.update(update)
    RESULTS_PATH.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")


def _best_digest(system, factory, result) -> str:
    best = result.best
    run = system.run(
        list(factory()),
        mapping=best.mapping,
        priorities=best.priority_dict,
        label="bench.joint.best",
    )
    return trace_digest(run)


def test_pruned_matches_unpruned_best_digest():
    """Acceptance: same winner physics, >= 4x fewer candidates."""
    system = System(SystemConfig())

    t0 = time.perf_counter()
    pruned = joint_search(
        system, small_factory, 4, levels=(4, 5, 6), max_gap=2, keep_top=1
    )
    pruned_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    unpruned = joint_search(
        system, small_factory, 4, levels=(4, 5, 6), max_gap=2, keep_top=1,
        prune_symmetry=False,
    )
    unpruned_s = time.perf_counter() - t0

    pruned_digest = _best_digest(system, small_factory, pruned)
    unpruned_digest = _best_digest(system, small_factory, unpruned)
    ratio = unpruned.evaluated / pruned.evaluated

    assert pruned_digest == unpruned_digest
    assert pruned.best_time == unpruned.best_time
    assert ratio >= 4.0

    _record({
        "equivalence": {
            "n_ranks": 4,
            "n_cores": 2,
            "levels": [4, 5, 6],
            "max_gap": 2,
            "pruned_candidates": pruned.evaluated,
            "unpruned_candidates": unpruned.evaluated,
            "candidate_ratio": ratio,
            "pruned_s": pruned_s,
            "unpruned_s": unpruned_s,
            "best_time_s": pruned.best_time,
            "best_trace_digest": pruned_digest,
            "digests_identical": pruned_digest == unpruned_digest,
        },
    })


def test_large_sweep_past_ten_thousand_candidates():
    """The 10^4-candidate sweep: 6 ranks / 4 cores, pruned, timed."""
    system = System(SystemConfig(chip=ChipConfig(n_cores=4)))

    mappings_pruned = candidate_mappings(6, 4)
    mappings_total = candidate_mappings(6, 4, prune_symmetry=False)
    unpruned_candidates = sum(
        len(candidate_assignments(m, (4, 5, 6), 2)) for m in mappings_total
    )

    t0 = time.perf_counter()
    result = joint_search(
        system, large_factory, 6, n_cores=4, levels=(4, 5, 6), max_gap=2,
        keep_top=5,
    )
    elapsed = time.perf_counter() - t0

    assert result.evaluated >= 10_000
    assert len(mappings_total) / len(mappings_pruned) >= 4.0

    _record({
        "scale": {
            "n_ranks": 6,
            "n_cores": 4,
            "levels": [4, 5, 6],
            "max_gap": 2,
            "mappings_pruned": len(mappings_pruned),
            "mappings_unpruned": len(mappings_total),
            "mapping_ratio": len(mappings_total) / len(mappings_pruned),
            "evaluated_candidates": result.evaluated,
            "unpruned_candidates": unpruned_candidates,
            "candidate_ratio": unpruned_candidates / result.evaluated,
            "sweep_s": elapsed,
            "candidates_per_s": result.evaluated / elapsed,
            "best_time_s": result.best_time,
        },
    })
