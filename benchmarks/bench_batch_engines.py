"""Batched vs scalar engine throughput: the ``run_batch`` payoff.

Drives the fluid and analytic engines over a priority-sweep corpus (12
priority assignments × 16 work vectors = 192 barrier_loop specs — the
shape a balancing search emits, where many specs share profile/priority
pair structure) two ways: scalar cold (a fresh engine per spec, the
pre-batch serving cost) and batched cold (one fresh engine, one
``run_batch``). Warm numbers (same engine, second pass) ride along for
context. Results land in ``benchmarks/results/BENCH_batch.json``.

Acceptance rides along as assertions: batched cold throughput must be
≥5x scalar for the analytic engine and ≥2.5x for the fluid engine. The
fluid bar is lower by necessity, not modesty — each fluid run still
executes a real discrete event loop per spec (~0.9 ms floor on this
corpus), so batching can only amortise the presolve around it; the
analytic engine's whole cost is the rate solve, which the batch path
stacks into shared numpy problems. Equivalence is *not* re-proven here
(tests/scenarios/test_batch_equivalence.py owns that); a digest spot
check just guards against benchmarking two different computations.
"""

import itertools
import json
import pathlib
import time

from repro.scenarios import ScenarioSpec
from repro.scenarios.engines import AnalyticEngine, FluidEngine

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_batch.json"

REPS = 3  # best-of-N keeps single-run container jitter out of the ratio

#: Pre-PR baseline, measured at the seed commit (c47331a) on this
#: container with this exact corpus and a fresh engine per spec — the
#: denominator the issue's acceptance ratio refers to. Seeded into
#: ``_meta`` on first write; preserved on regeneration thereafter.
_BASELINE_META = {
    "note": (
        "pre_batch_seed entries measured at commit c47331a (before "
        "run_batch existed) on this container with the same 4-rank "
        "barrier_loop spec shape, fresh engine per spec; per-spec rates "
        "are corpus-size independent on the scalar path. The fluid "
        "engine keeps a real discrete event loop per spec (~0.9 ms/spec "
        "floor here), which bounds its batch speedup below the analytic "
        "engine's; hence the split 5x/2.5x acceptance bars."
    ),
    "pre_batch_seed": {
        "fluid_cold_specs_per_s": 370.7,
        "fluid_cold_ms_per_spec": 2.697,
        "fluid_warm_specs_per_s": 1148.5,
        "analytic_cold_specs_per_s": 1443.5,
        "analytic_cold_ms_per_spec": 0.693,
        "analytic_warm_specs_per_s": 5575.1,
    },
}


def sweep_corpus():
    """192 specs: every (boost-a, boost-b) priority pattern × 16 loads.

    The load perturbations keep every fingerprint distinct while the
    priority patterns repeat — the amortisation shape a search over
    work distributions produces (rate systems dedupe, times don't).
    """
    prio_sets = [
        ((0, a), (1, b), (2, a), (3, b))
        for a, b in itertools.product((4, 5, 6), (3, 4, 5, 6))
    ]
    works_sets = [
        (1.0e9 + 5.0e6 * k, 2.0e9 - 3.0e6 * k,
         1.5e9 + 7.0e6 * k, 2.5e9 - 2.0e6 * k)
        for k in range(16)
    ]
    return [
        ScenarioSpec(
            name=f"sweep-{i}-{j}",
            kind="barrier_loop",
            works=works,
            iterations=2,
            priorities=prios,
        )
        for i, prios in enumerate(prio_sets)
        for j, works in enumerate(works_sets)
    ]


def _best_of(reps, fn):
    """(best_seconds, last_return) over ``reps`` timed calls."""
    best, value = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _measure(engine_cls, specs) -> dict:
    n = len(specs)
    scalar_cold_s, scalar_results = _best_of(
        REPS, lambda: [engine_cls().run(s) for s in specs]
    )
    batch_cold_s, batch_results = _best_of(
        REPS, lambda: engine_cls().run_batch(specs)
    )
    # Same computation on both sides (full equivalence is the test
    # suite's job; this guards the benchmark itself).
    assert [r.total_time for r in batch_results] == [
        r.total_time for r in scalar_results
    ]
    assert [r.digest for r in batch_results] == [
        r.digest for r in scalar_results
    ]

    warm_engine = engine_cls()
    warm_engine.run_batch(specs)
    warm_s, _ = _best_of(REPS, lambda: warm_engine.run_batch(specs))
    return {
        "specs": n,
        "scalar_cold_s": scalar_cold_s,
        "scalar_cold_specs_per_s": n / scalar_cold_s,
        "batch_cold_s": batch_cold_s,
        "batch_cold_specs_per_s": n / batch_cold_s,
        "cold_speedup_x": scalar_cold_s / batch_cold_s,
        "batch_warm_s": warm_s,
        "batch_warm_specs_per_s": n / warm_s,
    }


def test_batch_throughput_vs_scalar():
    specs = sweep_corpus()
    doc = {
        "corpus": {
            "specs": len(specs),
            "priority_sets": 12,
            "works_sets": 16,
            "kind": "barrier_loop",
            "iterations": 2,
        },
        "fluid": _measure(FluidEngine, specs),
        "analytic": _measure(AnalyticEngine, specs),
    }

    assert doc["analytic"]["cold_speedup_x"] >= 5.0, (
        f"analytic batch only {doc['analytic']['cold_speedup_x']:.2f}x "
        f"over scalar cold (need >= 5x)"
    )
    assert doc["fluid"]["cold_speedup_x"] >= 2.5, (
        f"fluid batch only {doc['fluid']['cold_speedup_x']:.2f}x "
        f"over scalar cold (need >= 2.5x)"
    )

    doc["_meta"] = _BASELINE_META
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    if RESULTS_PATH.exists():
        # Keep the committed annotation (baseline context survives hand
        # edits) across regenerations, like the other BENCH_*.json files.
        try:
            doc["_meta"] = json.loads(RESULTS_PATH.read_text())["_meta"]
        except (ValueError, KeyError):
            pass
    RESULTS_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(
        f"\nfluid: scalar {doc['fluid']['scalar_cold_specs_per_s']:.0f} -> "
        f"batch {doc['fluid']['batch_cold_specs_per_s']:.0f} specs/s "
        f"({doc['fluid']['cold_speedup_x']:.2f}x cold); "
        f"analytic: scalar {doc['analytic']['scalar_cold_specs_per_s']:.0f} "
        f"-> batch {doc['analytic']['batch_cold_specs_per_s']:.0f} specs/s "
        f"({doc['analytic']['cold_speedup_x']:.2f}x cold)"
        f"\n[saved to {RESULTS_PATH}]"
    )
