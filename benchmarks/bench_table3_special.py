"""Paper Table III: arbitration when either priority is 0 or 1."""

from repro.experiments.table3 import special_cases_table


def test_table3(benchmark, save_artifact):
    rendered = benchmark.pedantic(
        lambda: special_cases_table().render(), rounds=3, iterations=1
    )
    save_artifact("table3_special_cases", rendered)
    assert "power_save" in rendered
    assert "0.0156" in rendered  # 1 of 64
    assert "0.0312" in rendered  # 1 of 32
    assert "stopped" in rendered
