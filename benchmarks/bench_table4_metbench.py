"""Paper Table IV + Figure 2: MetBench cases A-D.

Regenerates the per-case characterisation (Proc/Core/P/Comp%/Sync%/Imb%/
exec time), the paper-vs-simulated comparison, and the case traces.
Asserts the paper's shape: A > B > C (C best, ~balanced), D reverses.
"""

import pytest

from repro.experiments.cases import metbench_suite
from repro.experiments.figures import case_trace
from repro.experiments.runner import comparison_table, run_suite


def run_all(system):
    suite = metbench_suite(iterations=10)
    results = run_suite(suite, system)
    return suite, results


def test_table4_metbench(benchmark, system, save_artifact):
    suite, results = benchmark.pedantic(
        lambda: run_all(system), rounds=1, iterations=1
    )
    parts = [comparison_table(results).render()]
    for r in results:
        prios = r.case.priorities or {i: 4 for i in range(r.case.n_ranks)}
        cores = {i: r.case.mapping.core_of(i) + 1 for i in range(r.case.n_ranks)}
        parts.append(
            r.run.stats.as_table(prios, cores, label=f"MetBench case {r.case.name}").render()
        )
    save_artifact("table4_metbench", "\n\n".join(parts))

    t = {r.case.name: r.measured_exec for r in results}
    imb = {r.case.name: r.measured_imbalance for r in results}
    # Calibrated reference: case A within 5% of the paper's 81.64 s.
    assert t["A"] == pytest.approx(81.64, rel=0.05)
    assert imb["A"] == pytest.approx(75.69, abs=5.0)
    # The paper's ordering: C < B < A < D.
    assert t["C"] < t["B"] < t["A"] < t["D"]
    # C nearly balanced (paper: 1.96%).
    assert imb["C"] < 15.0


def test_figure2_traces(benchmark, system, save_artifact):
    suite = metbench_suite(iterations=10)

    def render():
        panels = []
        for name in ("A", "B", "C", "D"):
            chart, run = case_trace(suite, name, system, width=90)
            panels.append(
                f"Figure 2({name.lower()}) MetBench case {name} "
                f"(exec {run.total_time:.2f}s, imb {run.imbalance_percent:.1f}%):\n"
                + chart
            )
        return "\n\n".join(panels)

    rendered = benchmark.pedantic(render, rounds=1, iterations=1)
    save_artifact("figure2_metbench_traces", rendered)
    assert "case A" in rendered and "case D" in rendered
