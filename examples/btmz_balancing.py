#!/usr/bin/env python
"""BT-MZ: comparing three answers to zone-skew imbalance.

BT Multi-Zone's geometric zone sizes skew per-rank work ~5.6x. This
example contrasts the classic approaches with the paper's:

1. *data re-distribution* — greedy zone bin-packing (METIS-style, the
   related-work baseline): balanced, but must be redone per input;
2. *the paper's mechanism* — keep the naive distribution, re-pair ranks
   (heaviest with lightest) and re-divide each core's decode slots;
3. *the automated advisor* — profile once, plan, verify.

Run:  python examples/btmz_balancing.py
"""

from repro import ProcessMapping, System, SystemConfig, paper_mapping
from repro.core import Advisor
from repro.util.tables import TextTable
from repro.workloads import ZoneGrid, bt_mz_programs

system = System(SystemConfig())
grid = ZoneGrid()  # 4x4 zones, geometric sizes (class-A-like)
print(f"zone grid: {grid.x_zones}x{grid.y_zones}, "
      f"largest/smallest zone = {grid.skew:.1f}x")

naive_works = grid.rank_works(4, instructions_per_point=3e4)
greedy_works = grid.rank_works(4, instructions_per_point=3e4, assignment="greedy")
print("naive zone assignment, per-rank work ratio:",
      [round(w / min(naive_works), 2) for w in naive_works])

ITER = 20
results = {}
results["naive distribution"] = system.run(
    bt_mz_programs(naive_works, iterations=ITER, profile="cfd", init_factor=0.5),
    ProcessMapping.identity(4),
)
results["greedy re-distribution"] = system.run(
    bt_mz_programs(greedy_works, iterations=ITER, profile="cfd", init_factor=0.5),
    ProcessMapping.identity(4),
)
results["priority balancing (paper case C)"] = system.run(
    bt_mz_programs(naive_works, iterations=ITER, profile="cfd", init_factor=0.5),
    paper_mapping("btmz"),  # P1 with P4, P2 with P3
    priorities={0: 4, 1: 4, 2: 6, 3: 6},
)

report = Advisor(system).advise(
    lambda: bt_mz_programs(naive_works, iterations=ITER, profile="cfd",
                           init_factor=0.5),
)
results["advisor (profile -> plan)"] = report.balanced

table = TextTable(["approach", "exec time", "imbalance %", "vs naive"],
                  title="BT-MZ balancing approaches")
ref = results["naive distribution"].total_time
for name, run in results.items():
    delta = (run.total_time - ref) / ref * 100
    table.add_row([name, f"{run.total_time:.2f}s",
                   f"{run.imbalance_percent:.1f}", f"{delta:+.1f}%"])
print()
print(table.render())
print(f"\nadvisor's plan: {report.assignment.describe()}")
