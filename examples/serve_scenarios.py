#!/usr/bin/env python
"""Serve scenarios over HTTP and consume them with a stdlib client.

Starts an in-process ``repro serve`` server on a free port, then plays
the three client flows against it:

1. submit a paper case (MetBench A) and block for the result;
2. submit the same case again — answered from the content-addressed
   result cache without re-simulating (same digest, ~three orders of
   magnitude faster);
3. submit a custom oracle scenario and poll for completion.

In production the server runs standalone (``python -m repro serve
--port 8080 --workers 4``) and clients only need the HTTP half below.

Run:  python examples/serve_scenarios.py
"""

import json
import threading
import time
import urllib.request

from repro.service.executor import ScenarioService, ServiceConfig
from repro.service.server import make_server


def post_job(base: str, doc: dict, wait: float = 0.0) -> dict:
    url = f"{base}/v1/jobs" + (f"?wait={wait}" if wait else "")
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.load(resp)


def get_job(base: str, job_id: str) -> dict:
    with urllib.request.urlopen(f"{base}/v1/jobs/{job_id}", timeout=30) as r:
        return json.load(r)


def main():
    # A real server on an ephemeral port; --timeout 0 semantics (inline
    # attempts) keep the worker's simulated systems warm between jobs.
    service = ScenarioService(
        ServiceConfig(workers=2, default_timeout_s=None)
    )
    server = make_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"serving on {base}\n")

    try:
        # 1. A paper case, blocking until done.
        t0 = time.perf_counter()
        job = post_job(base, {"suite": "metbench", "case": "A"}, wait=300)
        cold = time.perf_counter() - t0
        result = job["result"]
        print(f"MetBench A [{job['source']}]  {cold * 1e3:8.1f} ms  "
              f"total {result['total_time']:.2f}s  "
              f"imbalance {result['imbalance_percent']:.1f}%")
        print(f"  digest {result['digest'][:16]}…")

        # 2. Same physics again: served from the cache, digest unchanged.
        t0 = time.perf_counter()
        again = post_job(base, {"suite": "metbench", "case": "A"}, wait=300)
        hot = time.perf_counter() - t0
        print(f"MetBench A [{again['source']}]  {hot * 1e3:8.1f} ms  "
              f"(same digest: "
              f"{again['result']['digest'] == result['digest']})\n")

        # 3. A custom oracle scenario, submitted then polled.
        job = post_job(base, {
            "scenario": {
                "name": "custom", "kind": "barrier_loop",
                "works": [1.0e9, 4.0e9, 1.0e9, 4.0e9], "iterations": 5,
                "priorities": [[0, 4], [1, 6], [2, 4], [3, 6]],
            },
            "lane": "interactive",
        })
        while job["state"] not in ("done", "failed"):
            time.sleep(0.05)
            job = get_job(base, job["id"])
        result = job["result"]
        print(f"custom scenario [{job['source']}]  "
              f"total {result['total_time']:.2f}s  "
              f"imbalance {result['imbalance_percent']:.1f}%  "
              f"priorities {result['final_priorities']}")

        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        cache = metrics["cache"]
        print(f"\ncache: {cache['entries']} entries, {cache['bytes']} bytes, "
              f"{cache['hits']} hits / {cache['misses']} misses")
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()


if __name__ == "__main__":
    main()
