#!/usr/bin/env python
"""Scaling out: SMT balancing on a multi-node cluster.

The paper's motivation is MareNostrum-scale waste: one laggard rank idles
thousands of CPUs. This example runs a 16-rank BT-MZ-like application on
a 4-node cluster behind a two-level switch tree and shows the two
imbalance sources composing:

* *intrinsic*: zone-size skew within each node's ranks, fixed per-core
  with hardware priorities exactly as on one node;
* *extrinsic*: a bad job placement that puts communicating neighbours on
  opposite sides of the spine.

Run:  python examples/cluster_topology.py
"""

from repro import (
    ClusterConfig,
    ClusterSystem,
    ClusterSystemConfig,
    ProcessMapping,
    TwoLevelTree,
)
from repro.util.tables import TextTable
from repro.workloads import ZoneGrid, bt_mz_programs

N_NODES, N_RANKS = 4, 16
system = ClusterSystem(
    ClusterSystemConfig(
        cluster=ClusterConfig(n_nodes=N_NODES),
        network=TwoLevelTree(nodes_per_switch=2, far_latency=60e-6,
                             far_bandwidth=80e6),
    )
)

# Each node hosts the same light/heavy pattern: under the packed
# (identity) mapping every core pairs one light rank with one 3.5x
# heavier one — the intrinsic skew, repeated per node. Ring neighbours
# are consecutive ranks, so packing keeps most traffic on-node.
works = [1e9 if r % 2 == 0 else 3.5e9 for r in range(N_RANKS)]
ITER = 8


def programs():
    return bt_mz_programs(works, iterations=ITER, profile="cfd",
                          exchange_bytes=8 << 20, init_factor=0.5)


packed = ProcessMapping.identity(N_RANKS)
# A scattered placement: round-robin ranks over nodes, so every ring
# neighbour pair crosses the network (and half cross the spine).
scattered = ProcessMapping.from_dict(
    {rank: (rank % N_NODES) * 4 + rank // N_NODES for rank in range(N_RANKS)}
)

# Per-core priority plan under the packed mapping: favour the heavy rank
# of every core pair by one level.
prios = {rank: (5 if rank % 2 else 4) for rank in range(N_RANKS)}

table = TextTable(["configuration", "exec time", "imbalance %"],
                  title=f"BT-MZ-like, {N_RANKS} ranks on {N_NODES} nodes")
for name, mapping, priorities in (
    ("packed placement", packed, None),
    ("packed + per-core priorities", packed, prios),
    ("scattered placement (bad job scheduler)", scattered, None),
    ("scattered + per-core priorities", scattered, prios),
):
    r = system.run(programs(), mapping, priorities=priorities)
    table.add_row([name, f"{r.total_time:.2f}s", f"{r.imbalance_percent:.1f}"])
print(table.render())
print(
    "\nthree lessons compose here:\n"
    " 1. per-core priorities recover the intrinsic skew under the packed\n"
    "    placement (each core pairs a light rank with a heavy one);\n"
    " 2. the scattered placement pays the spine for every exchange -- an\n"
    "    extrinsic cost only the job scheduler can remove; and\n"
    " 3. scattering also pairs like with like on each core, so the same\n"
    "    priority plan has nothing to shift -- the paper's pairing insight\n"
    "    (who shares a core) is a precondition for the priority mechanism."
)
