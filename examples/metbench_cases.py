#!/usr/bin/env python
"""MetBench cases A-D: the paper's Table IV, end to end.

Runs the calibrated MetBench suite through all four priority
configurations the paper evaluates and prints the paper-vs-simulated
comparison plus the per-case rank breakdowns and traces.

Run:  python examples/metbench_cases.py
"""

from repro.experiments import case_trace, comparison_table, metbench_suite, run_suite
from repro.machine.system import System, SystemConfig

system = System(SystemConfig())
suite = metbench_suite(iterations=10)

results = run_suite(suite, system)
print(comparison_table(results).render())
print()

for r in results:
    prios = r.case.priorities or {i: 4 for i in range(r.case.n_ranks)}
    cores = {i: r.case.mapping.core_of(i) + 1 for i in range(r.case.n_ranks)}
    print(r.run.stats.as_table(prios, cores, label=f"case {r.case.name}: "
                                                   f"{r.case.description}").render())
    print()

# Figure 2-style trace of the winning configuration.
chart, run = case_trace(suite, "C", system, width=90)
print("Trace of case C (the paper's best MetBench configuration):")
print(chart)

best = min(results, key=lambda r: r.measured_exec)
ref = next(r for r in results if r.case.name == "A")
gain = (ref.measured_exec - best.measured_exec) / ref.measured_exec * 100
print(f"\nbest case: {best.case.name} "
      f"({gain:.1f}% over the unbalanced reference; the paper reports 8.26%)")
