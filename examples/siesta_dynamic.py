#!/usr/bin/env python
"""SIESTA-style drifting imbalance: static limits, dynamic balancing.

SIESTA's bottleneck migrates between iterations, which is why the paper's
static assignment gains only 8.1% there — and why its conclusion proposes
a dynamic OS-level balancer. This example runs the SIESTA model under:

* no balancing,
* the paper's static case C and the over-boosted case D,
* the dynamic controller (this library's implementation of the paper's
  future work).

Run:  python examples/siesta_dynamic.py
"""

from repro.core import DynamicBalancer, DynamicBalancerConfig
from repro.experiments import siesta_suite
from repro.experiments.runner import run_case
from repro.machine.system import System, SystemConfig
from repro.util.tables import TextTable

system = System(SystemConfig())
suite = siesta_suite(n_iterations=30, time_scale=0.25)

rows = []
for name in ("A", "C", "D"):
    case = suite.case(name)
    result = run_case(system, suite, case)
    rows.append((f"static case {name} ({case.description})",
                 result.run.total_time, result.run.imbalance_percent))

# The dynamic balancer on the same workload (case A mapping, no static
# priorities). A long interval and gap cap of 1 keep it from chasing the
# per-iteration jitter — for this memory-bound (dft) load a gap of 1 is
# nearly free for the victim, so the controller can only win, never
# reproduce the case-D disaster.
dyn = DynamicBalancer(
    DynamicBalancerConfig(interval=10.0, threshold=0.10, max_gap=1)
)
case_a = suite.case("A")
controlled = system.run(
    suite.programs(case_a),
    mapping=case_a.mapping,
    controllers=[dyn],
    label="dynamic",
)
rows.append((f"dynamic controller ({len(dyn.adjustments)} adjustments)",
             controlled.total_time, controlled.imbalance_percent))

table = TextTable(["policy", "exec time", "imbalance %", "vs unbalanced"],
                  title="SIESTA-style drifting workload")
ref = rows[0][1]
for name, t, imb in rows:
    table.add_row([name, f"{t:.2f}s", f"{imb:.1f}", f"{(t - ref) / ref * 100:+.1f}%"])
print(table.render())

if dyn.adjustments:
    print("\nfirst dynamic adjustments (time, rank, old -> new priority):")
    for t, rank, old, new in dyn.adjustments[:8]:
        print(f"  t={t:7.2f}s  P{rank + 1}: {old} -> {new}")

print(
    "\nNote the honest result: on this memory-bound (dft) workload a "
    "priority gap of 1\nbarely throttles the victim, so both static case C "
    "and the dynamic controller gain\nonly a few percent — consistent with "
    "the paper's modest 8.1% for SIESTA — while\nover-boosting (case D) "
    "still loses double digits."
)
