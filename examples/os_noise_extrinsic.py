#!/usr/bin/env python
"""Extrinsic imbalance: OS noise, and fighting it with priorities.

Section II-B of the paper: even a well-planned application becomes
imbalanced when the OS steals cycles from some CPUs (noise daemons, the
CPU0 'interrupt annoyance problem'). This example injects a statistics
daemon on CPU0 — delaying only the rank pinned there — and then boosts
that rank's hardware priority to claw the lost throughput back from its
core sibling (which has slack): balancing against a cause the
*programmer cannot touch*.

The compensation works because the hardware gap's cost falls on the
sibling, which waits anyway; the paper's case-D lesson still applies —
a daemon stealing more than the sibling's slack cannot be priority-fixed.

Run:  python examples/os_noise_extrinsic.py
"""

from repro import ProcessMapping, System, SystemConfig
from repro.kernel import NoiseConfig
from repro.util.tables import TextTable
from repro.workloads import barrier_loop_programs

# Heavy ranks on cpu0/cpu2, light siblings (with slack) on cpu1/cpu3.
works = [2e9, 0.9e9, 2e9, 0.9e9]
mapping = ProcessMapping.identity(4)
ITER = 6


def programs():
    return barrier_loop_programs(works, iterations=ITER)


table = TextTable(["configuration", "exec time", "P1 noise %", "vs quiet"],
                  title="Extrinsic imbalance from OS noise on CPU0")

quiet = System(SystemConfig()).run(programs(), mapping)
table.add_row(["quiet machine", f"{quiet.total_time:.2f}s", "0.0", "+0.0%"])

# A statistics collector waking on CPU0 ~every 100 ms for ~7 ms.
daemon = NoiseConfig("collector", cpu=0, mean_period=0.10, mean_burst=0.007)
noisy_system = System(SystemConfig(noise=(daemon,)))

noisy = noisy_system.run(programs(), mapping)
table.add_row([
    "with daemon on CPU0",
    f"{noisy.total_time:.2f}s",
    f"{noisy.stats.rank_stats(0).noise_fraction * 100:.1f}",
    f"{(noisy.total_time - quiet.total_time) / quiet.total_time * 100:+.1f}%",
])

# Compensate: give the afflicted rank more of its core's decode slots.
fixed = noisy_system.run(programs(), mapping, priorities={0: 5, 1: 4, 2: 4, 3: 4})
table.add_row([
    "daemon + P1 boosted to 5",
    f"{fixed.total_time:.2f}s",
    f"{fixed.stats.rank_stats(0).noise_fraction * 100:.1f}",
    f"{(fixed.total_time - quiet.total_time) / quiet.total_time * 100:+.1f}%",
])

print(table.render())
recovered = (noisy.total_time - fixed.total_time) / (
    noisy.total_time - quiet.total_time
) * 100
print(f"\nthe boost recovered {recovered:.0f}% of the noise-induced slowdown.")
