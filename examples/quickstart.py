#!/usr/bin/env python
"""Quickstart: balance an imbalanced MPI application with SMT priorities.

Builds the paper's core scenario in ~30 lines: a 4-rank barrier-
synchronised application where two ranks carry 4x the work of their core
siblings, run on the simulated POWER5 machine — first with default
priorities, then with the heavy ranks favoured by a priority gap of 2
through the patched kernel's /proc interface.

Run:  python examples/quickstart.py
"""

from repro import ProcessMapping, System, SystemConfig, render_gantt
from repro.workloads import barrier_loop_programs

# One simulated IBM OpenPower 710: POWER5 chip + patched Linux kernel.
system = System(SystemConfig(kernel="patched"))

# Two light ranks (cpu0, cpu2) and two heavy ones (cpu1, cpu3): each core
# hosts one of each — the classic intrinsic-imbalance layout.
works = [1e9, 4e9, 1e9, 4e9]
mapping = ProcessMapping.identity(4)

baseline = system.run(
    barrier_loop_programs(works, iterations=5),
    mapping=mapping,
    label="baseline: all priorities MEDIUM",
)
print(f"baseline:  {baseline.total_time:6.2f}s  "
      f"imbalance {baseline.imbalance_percent:5.1f}%")

# The paper's fix: give the bottleneck ranks more decode slots
# (echo 6 > /proc/<pid>/hmt_priority for ranks 1 and 3).
balanced = system.run(
    barrier_loop_programs(works, iterations=5),
    mapping=mapping,
    priorities={0: 4, 1: 6, 2: 4, 3: 6},
    label="balanced: heavy ranks at priority 6",
)
print(f"balanced:  {balanced.total_time:6.2f}s  "
      f"imbalance {balanced.imbalance_percent:5.1f}%")

gain = (baseline.total_time - balanced.total_time) / baseline.total_time * 100
print(f"improvement: {gain:.1f}%\n")

print(render_gantt(baseline.trace, width=80))
print()
print(render_gantt(balanced.trace, width=80))
