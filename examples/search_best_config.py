#!/usr/bin/env python
"""Automating the paper's manual tuning: search the configuration space.

The authors found the best priorities per application by trying cases
A-D by hand. With a simulator, the whole space is searchable: this
example exhaustively evaluates every per-core priority combination
(levels 3-6, gap <= 2) for a BT-MZ-like workload and prints the ranking,
then shows the greedy hill-climb reaching a comparable answer with far
fewer runs.

Run:  python examples/search_best_config.py
"""

from repro import System, SystemConfig, paper_mapping
from repro.core import exhaustive_priority_search, greedy_priority_search
from repro.util.tables import TextTable
from repro.workloads import ZoneGrid, bt_mz_programs

system = System(SystemConfig())
works = ZoneGrid().rank_works(4, instructions_per_point=2e4)
mapping = paper_mapping("btmz")  # the paper's pairing: P1+P4, P2+P3


def factory():
    return bt_mz_programs(works, iterations=8, profile="cfd", init_factor=0.5)


print("exhaustive search over levels 3-6, max gap 2 ...")
result = exhaustive_priority_search(
    system, factory, mapping, levels=(3, 4, 5, 6), max_gap=2
)
baseline_time = [
    t for a, t, _ in result.entries
    if a.priority_dict == {r: 4 for r in range(4)}
][0]

table = TextTable(["rank", "priorities (P1..P4)", "exec time", "imbalance %"],
                  title=f"Top configurations of {result.evaluated} evaluated")
for i, (assignment, t, imb) in enumerate(result.entries[:8], start=1):
    prios = assignment.priority_dict
    table.add_row([i, " ".join(str(prios[r]) for r in range(4)),
                   f"{t:.2f}s", f"{imb:.1f}"])
print(table.render())
print(f"\nbest improves {result.improvement_over(baseline_time):.1f}% "
      f"over all-MEDIUM ({baseline_time:.2f}s)")

greedy = greedy_priority_search(
    system, factory, mapping, levels=(3, 4, 5, 6), max_gap=2, max_steps=6
)
print(f"\ngreedy hill-climb: best {greedy.best_time:.2f}s "
      f"after {greedy.evaluated} evaluations "
      f"(exhaustive best {result.best_time:.2f}s)")
print("greedy's answer:", greedy.best.describe())
