"""Setup shim: enables legacy editable installs (`pip install -e .`) on
environments whose setuptools lacks the PEP 660 editable-wheel path
(no `wheel` package available offline). All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
