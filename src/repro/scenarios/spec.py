"""The canonical, versioned description of one simulated run.

Every layer of the repo used to carry its own copy of "a workload with a
mapping, priorities and model knobs": the oracle's ``Scenario``, the
service's scenario-kind ``JobSpec`` and the experiment suites'
``ExperimentCase``. :class:`ScenarioSpec` is the one shape they all
share now — a frozen, hashable, strictly-validated value object with a
single canonical serialisation (:meth:`to_doc`/:meth:`from_doc`) and a
single sha256 content address (:attr:`fingerprint`, via
:mod:`repro.util.fingerprint`).

Wire-format stability
---------------------
The document form is **append-only versioned**. ``SPEC_VERSION`` names
the current schema; :meth:`from_doc` accepts version 1 and 2 documents
(and rejects any other version), while :meth:`to_doc` deliberately
omits ``spec_version`` for specs expressible in v1 — and omits
``params`` when empty — so the canonical JSON of every pre-existing
scenario is byte-identical to what the oracle layer recorded before
this module existed. Golden traces under ``tests/golden/`` and service
cache keys both hash this form; changing it is a recorded,
re-golden-ing event, not a refactor.

Version 2 adds **explicit mappings**: ``mapping`` may be a JSON object
``{"<rank>": cpu}`` instead of a preset name. Explicit docs carry
``spec_version: 2`` so a v1 reader rejects them loudly instead of
choking on the object. An explicit mapping that coincides with a preset
is *normalised to the preset name* at construction time — one physics,
one canonical document, one fingerprint — so the service cache and the
golden layer never see two addresses for the same run (the
deliberate-choice test lives in ``tests/scenarios/test_spec.py``; the
rationale in ``docs/mapping.md``).

Version 3 adds an optional **topology**: a serialised
:class:`~repro.cluster.TopologySpec` (``{n_nodes, network, params}``)
that retargets the scenario from the default single POWER5 chip to an
N-node cluster behind a network model. Only topology-bearing docs carry
``spec_version: 3``; topology-less specs keep their exact v1/v2 bytes
(explicit-mapping docs still say ``spec_version: 2``), so every
pre-existing golden, cache key and leaderboard fingerprint is
unchanged. Under a topology, explicit mappings address *global* CPUs
``0 .. 4*n_nodes - 1`` (node ``k`` owns ``4k..4k+3``); see
``docs/cluster.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.cluster.spec import TopologySpec
from repro.errors import ConfigurationError, MappingError, ValidationError
from repro.machine.mapping import ProcessMapping, paper_mapping
from repro.smt.chip import ChipConfig
from repro.smt.instructions import BASE_PROFILES
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_choice, check_positive

__all__ = ["SPEC_VERSION", "KINDS", "MAPPINGS", "ScenarioSpec"]

#: Schema version of the document form. Bump only with a migration note
#: in CHANGES.md and re-recorded goldens. v1: mapping is a preset name.
#: v2: mapping may also be an explicit ``{"rank": cpu}`` object; such
#: docs carry ``spec_version: 2``. v3 (current): an optional
#: ``topology`` object retargets the run to a multi-node cluster; only
#: topology-bearing docs carry ``spec_version: 3``. Preset-mapping
#: single-chip docs keep the exact v1 bytes (and fingerprints),
#: explicit-mapping single-chip docs the exact v2 bytes.
SPEC_VERSION = 3

#: Workload families a spec may name (each maps to a program factory).
#: ``distant_pairs`` is the cluster-corpus family: compute + a pairwise
#: exchange with the rank half the ring away, so placement (not
#: priorities) decides whether partners talk over shared memory or the
#: network.
KINDS = ("barrier_loop", "metbench", "btmz", "siesta", "distant_pairs")

#: Named rank-to-CPU layouts. "identity" and the two paper re-pairings
#: are 4-rank; "st" is the papers' single-thread mode (2 ranks, one per
#: core, sibling contexts idle).
MAPPINGS = ("identity", "btmz", "siesta", "st")

#: Logical CPUs of the default (paper) chip every scenario engine
#: builds: explicit mappings are validated against this machine shape.
_N_CPUS = ChipConfig().n_cpus

#: The rank->cpu dict of each fixed-size preset ("identity" is handled
#: by shape, not by table — it exists at every rank count).
_PRESET_DICTS = {
    "btmz": {0: 0, 1: 2, 2: 3, 3: 1},
    "siesta": {0: 2, 1: 0, 2: 1, 3: 3},
    "st": {0: 0, 1: 2},
}

_MappingValue = Union[str, Tuple[Tuple[int, int], ...]]


def _freeze_mapping(
    mapping: object,
    n_ranks: Optional[int] = None,
    n_cpus: int = _N_CPUS,
) -> _MappingValue:
    """Canonical mapping form: a preset name, or a rank-sorted tuple of
    ``(rank, cpu)`` pairs for explicit layouts.

    Explicit layouts are validated by :class:`ProcessMapping` (injective,
    contiguous ranks) plus the machine's CPU range (``n_cpus`` — the
    default chip's, or the topology's global count) and the spec's rank
    count, then **normalised to the preset name when they coincide with
    one** — a preset and its explicit spelling are one physics and must
    be one content address.
    """
    if isinstance(mapping, str):
        return mapping
    if isinstance(mapping, ProcessMapping):
        pairs = mapping.rank_to_cpu
    else:
        if isinstance(mapping, Mapping):
            items = mapping.items()
        else:
            items = tuple(mapping)
        try:
            pairs = tuple(sorted((int(r), int(c)) for r, c in items))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"explicit mapping must be rank->cpu pairs, got {mapping!r}"
            ) from exc
    ProcessMapping(pairs)  # validates: contiguous ranks, injective cpus
    if any(c >= n_cpus for _, c in pairs):
        raise ConfigurationError(
            f"explicit mapping names a cpu outside the machine's "
            f"0..{n_cpus - 1}: {dict(pairs)}"
        )
    if n_ranks is not None and len(pairs) != n_ranks:
        raise ConfigurationError(
            f"explicit mapping covers {len(pairs)} ranks for "
            f"{n_ranks} works"
        )
    if all(r == c for r, c in pairs):
        return "identity"
    as_dict = dict(pairs)
    for preset, table in _PRESET_DICTS.items():
        if as_dict == table:
            return preset
    return pairs

#: Extra workload knobs each kind accepts in ``params``. A "works"
#: parameter is a per-rank tuple the same length as ``works``.
_PARAM_SCHEMA: Dict[str, Dict[str, str]] = {
    "barrier_loop": {},
    "metbench": {},
    "btmz": {"init_factor": "number"},
    "siesta": {
        "init_works": "works",
        "final_works": "works",
        "jitter_sigma": "number",
        "rotate_prob": "probability",
        "workload_seed": "int",
        "allreduce_bytes": "int",
    },
    "distant_pairs": {"exchange_bytes": "int"},
}

#: ``params`` keys the siesta program factory cannot default.
_SIESTA_REQUIRED = ("init_works", "final_works")

_ParamValue = Union[int, float, Tuple[float, ...]]


def _freeze_params(
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]],
) -> Tuple[Tuple[str, _ParamValue], ...]:
    """Canonical params form: key-sorted tuple of pairs, lists tuple-ised."""
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if isinstance(value, (list, tuple)):
            value = tuple(float(v) for v in value)
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, serialisable description of one simulated run.

    Everything that determines the physics is here — workload shape,
    per-rank work, mapping, static priorities, seed and workload-specific
    knobs — so a spec can be fingerprinted, persisted next to a golden
    trace, cached by the service, and replayed by a later revision of
    the simulator through any registered engine.
    """

    name: str
    kind: str  # one of KINDS
    works: Tuple[float, ...]
    iterations: int
    profile: str = "hpc"
    #: A preset name from ``MAPPINGS``, or an explicit rank->cpu layout
    #: (dict / ``ProcessMapping`` / pair tuple accepted at construction;
    #: canonicalised to a rank-sorted pair tuple, or to the preset name
    #: when the layout coincides with one).
    mapping: _MappingValue = "identity"
    #: rank -> OS-settable hardware priority; empty = defaults (MEDIUM).
    priorities: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0
    #: Kind-specific workload knobs (see ``_PARAM_SCHEMA``), canonically
    #: key-sorted. Empty for every scenario the generator draws.
    params: Tuple[Tuple[str, _ParamValue], ...] = ()
    #: ``None`` = the default single chip (every pre-v3 scenario).
    #: A :class:`~repro.cluster.TopologySpec` (or its document form)
    #: retargets the run to that cluster; engines route such specs
    #: through :class:`~repro.cluster.ClusterSystem`.
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "works", tuple(float(w) for w in self.works))
        object.__setattr__(
            self,
            "priorities",
            tuple((int(r), int(p)) for r, p in self.priorities),
        )
        object.__setattr__(self, "params", _freeze_params(self.params))
        if self.topology is not None and not isinstance(self.topology, TopologySpec):
            if not isinstance(self.topology, Mapping):
                raise ConfigurationError(
                    f"scenario {self.name!r}: topology must be a TopologySpec "
                    f"or its document form, got {self.topology!r}"
                )
            try:
                object.__setattr__(
                    self, "topology", TopologySpec.from_doc(self.topology)
                )
            except ValidationError as exc:
                raise ConfigurationError(
                    f"scenario {self.name!r}: invalid topology: {exc}"
                ) from exc
        machine_cpus = (
            self.topology.n_cpus if self.topology is not None else _N_CPUS
        )
        try:
            object.__setattr__(
                self,
                "mapping",
                _freeze_mapping(
                    self.mapping, n_ranks=len(self.works), n_cpus=machine_cpus
                ),
            )
        except MappingError as exc:
            raise ConfigurationError(
                f"scenario {self.name!r}: invalid explicit mapping: {exc}"
            ) from exc
        check_choice("scenario.kind", self.kind, KINDS)
        check_positive("scenario.iterations", self.iterations)
        if not self.works:
            raise ConfigurationError(f"scenario {self.name!r} has no works")
        if self.topology is not None and len(self.works) > machine_cpus:
            raise ConfigurationError(
                f"scenario {self.name!r}: {len(self.works)} ranks exceed the "
                f"topology's {machine_cpus} CPUs"
            )
        if self.kind == "distant_pairs" and len(self.works) % 2:
            raise ConfigurationError(
                f"scenario {self.name!r}: distant_pairs needs an even rank "
                f"count, got {len(self.works)}"
            )
        if self.profile not in BASE_PROFILES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown profile {self.profile!r}"
            )
        if isinstance(self.mapping, str):
            check_choice("scenario.mapping", self.mapping, MAPPINGS)
            if self.mapping in ("btmz", "siesta") and self.n_ranks != 4:
                raise ConfigurationError(
                    f"scenario {self.name!r}: mapping {self.mapping!r} needs "
                    f"4 ranks, got {self.n_ranks}"
                )
            if self.mapping == "st" and self.n_ranks != 2:
                raise ConfigurationError(
                    f"scenario {self.name!r}: mapping 'st' needs 2 ranks, "
                    f"got {self.n_ranks}"
                )
        seen = set()
        for rank, prio in self.priorities:
            if not 0 <= rank < self.n_ranks:
                raise ConfigurationError(
                    f"scenario {self.name!r}: priority names rank {rank} "
                    f"outside 0..{self.n_ranks - 1}"
                )
            if rank in seen:
                raise ConfigurationError(
                    f"scenario {self.name!r}: rank {rank} has two priorities"
                )
            seen.add(rank)
            if not 1 <= prio <= 6:
                raise ConfigurationError(
                    f"scenario {self.name!r}: rank {rank} priority {prio} "
                    "is not OS-settable (1-6)"
                )
        self._check_params()

    def _check_params(self) -> None:
        schema = _PARAM_SCHEMA[self.kind]
        for key, value in self.params:
            shape = schema.get(key)
            if shape is None:
                raise ConfigurationError(
                    f"scenario {self.name!r}: kind {self.kind!r} does not "
                    f"accept param {key!r} (allowed: {sorted(schema) or '[]'})"
                )
            if shape == "works":
                if not isinstance(value, tuple) or len(value) != self.n_ranks:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: param {key!r} must be a "
                        f"{self.n_ranks}-long work tuple, got {value!r}"
                    )
                if any(w <= 0 for w in value):
                    raise ConfigurationError(
                        f"scenario {self.name!r}: param {key!r} has "
                        "non-positive work"
                    )
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be a "
                    f"number, got {value!r}"
                )
            elif shape == "probability" and not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be in "
                    f"[0, 1], got {value!r}"
                )
            elif shape == "int" and not isinstance(value, int):
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be an "
                    f"int, got {value!r}"
                )
            elif shape == "number" and value < 0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be >= 0, "
                    f"got {value!r}"
                )
        if self.kind == "siesta":
            have = {k for k, _ in self.params}
            missing = [k for k in _SIESTA_REQUIRED if k not in have]
            if missing:
                raise ConfigurationError(
                    f"scenario {self.name!r}: siesta needs params {missing}"
                )

    # -- derived views ---------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return len(self.works)

    def params_dict(self) -> Dict[str, _ParamValue]:
        return dict(self.params)

    def param(self, key: str, default: _ParamValue = None):
        return self.params_dict().get(key, default)

    def mapping_obj(self) -> ProcessMapping:
        if not isinstance(self.mapping, str):
            return ProcessMapping(self.mapping)
        if self.mapping == "identity":
            return ProcessMapping.identity(self.n_ranks)
        if self.mapping == "st":
            # One rank per core: ranks 0/1 on the even context of cores 0/1.
            return ProcessMapping.from_dict({0: 0, 1: 2})
        return paper_mapping(self.mapping)

    def priority_dict(self) -> Optional[Dict[int, int]]:
        return dict(self.priorities) if self.priorities else None

    def programs(self):
        """Fresh (single-use) rank generator programs for one run."""
        if self.kind == "barrier_loop":
            from repro.workloads.generators import barrier_loop_programs

            return barrier_loop_programs(
                list(self.works), iterations=self.iterations, profile=self.profile
            )
        if self.kind == "metbench":
            from repro.workloads.metbench import metbench_programs

            return metbench_programs(
                list(self.works), iterations=self.iterations, load=self.profile
            )
        if self.kind == "btmz":
            from repro.workloads.bt_mz import BtMzConfig, bt_mz_programs

            init_factor = self.param("init_factor")
            if init_factor is None:
                return bt_mz_programs(
                    list(self.works),
                    iterations=self.iterations,
                    profile=self.profile,
                )
            return bt_mz_programs(
                config=BtMzConfig(
                    works=list(self.works),
                    iterations=self.iterations,
                    profile=self.profile,
                    init_factor=float(init_factor),
                )
            )
        if self.kind == "distant_pairs":
            from repro.workloads.generators import distant_pairs_programs

            return distant_pairs_programs(
                list(self.works),
                iterations=self.iterations,
                profile=self.profile,
                exchange_bytes=int(self.param("exchange_bytes", 65536)),
            )
        from repro.workloads.siesta import SiestaConfig, siesta_programs

        p = self.params_dict()
        cfg = SiestaConfig(
            mean_works=list(self.works),
            init_works=list(p["init_works"]),
            final_works=list(p["final_works"]),
            n_iterations=self.iterations,
            profile=self.profile,
            jitter_sigma=float(p.get("jitter_sigma", 0.30)),
            rotate_prob=float(p.get("rotate_prob", 0.35)),
            allreduce_bytes=int(p.get("allreduce_bytes", 64)),
            seed=int(p.get("workload_seed", 2008)),
        )
        return siesta_programs(cfg)

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> dict:
        """The canonical document form fingerprints are computed over.

        ``params`` is omitted when empty, and ``spec_version`` when the
        spec is expressible in v1 (every preset-mapping single-chip
        spec), so pre-existing recorded scenarios keep their exact
        canonical bytes (and therefore their fingerprints).
        Explicit-mapping single-chip specs are a v2-only shape and carry
        the literal ``spec_version: 2`` — *not* the current
        ``SPEC_VERSION`` — so their bytes are frozen too. Only
        topology-bearing specs carry ``spec_version: 3``; a v1/v2 reader
        rejects them by version instead of choking on the object.
        """
        doc = {
            "name": self.name,
            "kind": self.kind,
            "works": list(self.works),
            "iterations": self.iterations,
            "profile": self.profile,
            "mapping": (
                self.mapping
                if isinstance(self.mapping, str)
                else {str(r): c for r, c in self.mapping}
            ),
            "priorities": [list(p) for p in self.priorities],
            "seed": self.seed,
        }
        if self.topology is not None:
            doc["topology"] = self.topology.to_doc()
            doc["spec_version"] = 3
        elif not isinstance(self.mapping, str):
            doc["spec_version"] = 2
        if self.params:
            doc["params"] = {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.params
            }
        return doc

    _REQUIRED = ("name", "kind", "works", "iterations")
    _OPTIONAL = ("profile", "mapping", "priorities", "seed", "params",
                 "spec_version", "topology")

    @classmethod
    def from_doc(cls, doc: object) -> "ScenarioSpec":
        """Strict deserialisation: the exact inverse of :meth:`to_doc`.

        Unlike the three lax ``from_doc`` s this class replaced, unknown
        fields, missing required fields, an unsupported ``spec_version``
        and uncoercible values all raise a typed
        :class:`~repro.errors.ValidationError` — a scenario document
        that round-trips is bit-identical to its source.
        """
        if not isinstance(doc, dict):
            raise ValidationError(
                f"scenario document must be a JSON object, got {doc!r}"
            )
        unknown = set(doc) - set(cls._REQUIRED) - set(cls._OPTIONAL)
        if unknown:
            raise ValidationError(
                f"unknown scenario fields: {sorted(unknown)}"
            )
        missing = [k for k in cls._REQUIRED if k not in doc]
        if missing:
            raise ValidationError(f"missing scenario fields: {missing}")
        version = doc.get("spec_version", SPEC_VERSION)
        if version not in (1, 2, SPEC_VERSION):
            raise ValidationError(
                f"unsupported spec_version {version!r} "
                f"(this build reads versions 1, 2 and {SPEC_VERSION})"
            )
        topology = doc.get("topology")
        if topology is not None:
            if version < 3:
                raise ValidationError(
                    "a topology needs spec_version 3, but the document "
                    f"claims version {version}"
                )
            topology = TopologySpec.from_doc(topology)
        machine_cpus = topology.n_cpus if topology is not None else _N_CPUS
        mapping = doc.get("mapping", "identity")
        if isinstance(mapping, str):
            if mapping not in MAPPINGS:
                raise ValidationError(
                    f"unknown mapping {mapping!r} "
                    f"(presets: {', '.join(MAPPINGS)})"
                )
        elif isinstance(mapping, dict):
            if version == 1:
                raise ValidationError(
                    "explicit mappings need spec_version 2, but the "
                    "document claims version 1"
                )
            try:
                mapping = {int(r): int(c) for r, c in mapping.items()}
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    f"explicit mapping keys/values must be integers: {exc}"
                ) from exc
            try:
                _freeze_mapping(mapping, n_cpus=machine_cpus)
            except (MappingError, ConfigurationError) as exc:
                raise ValidationError(
                    f"invalid explicit mapping: {exc}"
                ) from exc
        else:
            raise ValidationError(
                f"mapping must be a preset name or a rank->cpu object, "
                f"got {mapping!r}"
            )
        priorities = doc.get("priorities", ())
        if not isinstance(priorities, (list, tuple)) or any(
            not isinstance(p, (list, tuple)) or len(p) != 2 for p in priorities
        ):
            raise ValidationError(
                f"priorities must be [rank, priority] pairs, got {priorities!r}"
            )
        params = doc.get("params", {})
        if not isinstance(params, (dict, list, tuple)):
            raise ValidationError(
                f"params must be an object, got {params!r}"
            )
        try:
            return cls(
                name=str(doc["name"]),
                kind=str(doc["kind"]),
                works=tuple(float(w) for w in doc["works"]),
                iterations=int(doc["iterations"]),
                profile=str(doc.get("profile", "hpc")),
                mapping=mapping,
                priorities=tuple((int(r), int(p)) for r, p in priorities),
                seed=int(doc.get("seed", 0)),
                params=_freeze_params(params),
                topology=topology,
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise
            raise ValidationError(
                f"malformed scenario document: {exc}"
            ) from exc

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form — the one content address
        shared by golden traces, the service cache and the oracle.

        Memoised: the spec is frozen, and the hash is taken once per
        spec even when the service fingerprints the job at submission
        and the engine stamps the result.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_doc(self.to_doc())
            object.__setattr__(self, "_fingerprint", cached)
        return cached
