"""The canonical, versioned description of one simulated run.

Every layer of the repo used to carry its own copy of "a workload with a
mapping, priorities and model knobs": the oracle's ``Scenario``, the
service's scenario-kind ``JobSpec`` and the experiment suites'
``ExperimentCase``. :class:`ScenarioSpec` is the one shape they all
share now — a frozen, hashable, strictly-validated value object with a
single canonical serialisation (:meth:`to_doc`/:meth:`from_doc`) and a
single sha256 content address (:attr:`fingerprint`, via
:mod:`repro.util.fingerprint`).

Wire-format stability
---------------------
The document form is **append-only versioned**. ``SPEC_VERSION`` names
the current schema; :meth:`from_doc` accepts an optional
``spec_version`` key (and rejects any other version), while
:meth:`to_doc` deliberately omits it — and omits ``params`` when empty —
so the canonical JSON of every pre-existing scenario is byte-identical
to what the oracle layer recorded before this module existed. Golden
traces under ``tests/golden/`` and service cache keys both hash this
form; changing it is a recorded, re-golden-ing event, not a refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError, ValidationError
from repro.machine.mapping import ProcessMapping, paper_mapping
from repro.smt.instructions import BASE_PROFILES
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_choice, check_positive

__all__ = ["SPEC_VERSION", "KINDS", "MAPPINGS", "ScenarioSpec"]

#: Schema version of the document form. Bump only with a migration note
#: in CHANGES.md and re-recorded goldens.
SPEC_VERSION = 1

#: Workload families a spec may name (each maps to a program factory).
KINDS = ("barrier_loop", "metbench", "btmz", "siesta")

#: Named rank-to-CPU layouts. "identity" and the two paper re-pairings
#: are 4-rank; "st" is the papers' single-thread mode (2 ranks, one per
#: core, sibling contexts idle).
MAPPINGS = ("identity", "btmz", "siesta", "st")

#: Extra workload knobs each kind accepts in ``params``. A "works"
#: parameter is a per-rank tuple the same length as ``works``.
_PARAM_SCHEMA: Dict[str, Dict[str, str]] = {
    "barrier_loop": {},
    "metbench": {},
    "btmz": {"init_factor": "number"},
    "siesta": {
        "init_works": "works",
        "final_works": "works",
        "jitter_sigma": "number",
        "rotate_prob": "probability",
        "workload_seed": "int",
        "allreduce_bytes": "int",
    },
}

#: ``params`` keys the siesta program factory cannot default.
_SIESTA_REQUIRED = ("init_works", "final_works")

_ParamValue = Union[int, float, Tuple[float, ...]]


def _freeze_params(
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]],
) -> Tuple[Tuple[str, _ParamValue], ...]:
    """Canonical params form: key-sorted tuple of pairs, lists tuple-ised."""
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if isinstance(value, (list, tuple)):
            value = tuple(float(v) for v in value)
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, serialisable description of one simulated run.

    Everything that determines the physics is here — workload shape,
    per-rank work, mapping, static priorities, seed and workload-specific
    knobs — so a spec can be fingerprinted, persisted next to a golden
    trace, cached by the service, and replayed by a later revision of
    the simulator through any registered engine.
    """

    name: str
    kind: str  # one of KINDS
    works: Tuple[float, ...]
    iterations: int
    profile: str = "hpc"
    mapping: str = "identity"
    #: rank -> OS-settable hardware priority; empty = defaults (MEDIUM).
    priorities: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0
    #: Kind-specific workload knobs (see ``_PARAM_SCHEMA``), canonically
    #: key-sorted. Empty for every scenario the generator draws.
    params: Tuple[Tuple[str, _ParamValue], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "works", tuple(float(w) for w in self.works))
        object.__setattr__(
            self,
            "priorities",
            tuple((int(r), int(p)) for r, p in self.priorities),
        )
        object.__setattr__(self, "params", _freeze_params(self.params))
        check_choice("scenario.kind", self.kind, KINDS)
        check_choice("scenario.mapping", self.mapping, MAPPINGS)
        check_positive("scenario.iterations", self.iterations)
        if not self.works:
            raise ConfigurationError(f"scenario {self.name!r} has no works")
        if self.profile not in BASE_PROFILES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown profile {self.profile!r}"
            )
        if self.mapping in ("btmz", "siesta") and self.n_ranks != 4:
            raise ConfigurationError(
                f"scenario {self.name!r}: mapping {self.mapping!r} needs "
                f"4 ranks, got {self.n_ranks}"
            )
        if self.mapping == "st" and self.n_ranks != 2:
            raise ConfigurationError(
                f"scenario {self.name!r}: mapping 'st' needs 2 ranks, "
                f"got {self.n_ranks}"
            )
        seen = set()
        for rank, prio in self.priorities:
            if not 0 <= rank < self.n_ranks:
                raise ConfigurationError(
                    f"scenario {self.name!r}: priority names rank {rank} "
                    f"outside 0..{self.n_ranks - 1}"
                )
            if rank in seen:
                raise ConfigurationError(
                    f"scenario {self.name!r}: rank {rank} has two priorities"
                )
            seen.add(rank)
            if not 1 <= prio <= 6:
                raise ConfigurationError(
                    f"scenario {self.name!r}: rank {rank} priority {prio} "
                    "is not OS-settable (1-6)"
                )
        self._check_params()

    def _check_params(self) -> None:
        schema = _PARAM_SCHEMA[self.kind]
        for key, value in self.params:
            shape = schema.get(key)
            if shape is None:
                raise ConfigurationError(
                    f"scenario {self.name!r}: kind {self.kind!r} does not "
                    f"accept param {key!r} (allowed: {sorted(schema) or '[]'})"
                )
            if shape == "works":
                if not isinstance(value, tuple) or len(value) != self.n_ranks:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: param {key!r} must be a "
                        f"{self.n_ranks}-long work tuple, got {value!r}"
                    )
                if any(w <= 0 for w in value):
                    raise ConfigurationError(
                        f"scenario {self.name!r}: param {key!r} has "
                        "non-positive work"
                    )
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be a "
                    f"number, got {value!r}"
                )
            elif shape == "probability" and not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be in "
                    f"[0, 1], got {value!r}"
                )
            elif shape == "int" and not isinstance(value, int):
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be an "
                    f"int, got {value!r}"
                )
            elif shape == "number" and value < 0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: param {key!r} must be >= 0, "
                    f"got {value!r}"
                )
        if self.kind == "siesta":
            have = {k for k, _ in self.params}
            missing = [k for k in _SIESTA_REQUIRED if k not in have]
            if missing:
                raise ConfigurationError(
                    f"scenario {self.name!r}: siesta needs params {missing}"
                )

    # -- derived views ---------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return len(self.works)

    def params_dict(self) -> Dict[str, _ParamValue]:
        return dict(self.params)

    def param(self, key: str, default: _ParamValue = None):
        return self.params_dict().get(key, default)

    def mapping_obj(self) -> ProcessMapping:
        if self.mapping == "identity":
            return ProcessMapping.identity(self.n_ranks)
        if self.mapping == "st":
            # One rank per core: ranks 0/1 on the even context of cores 0/1.
            return ProcessMapping.from_dict({0: 0, 1: 2})
        return paper_mapping(self.mapping)

    def priority_dict(self) -> Optional[Dict[int, int]]:
        return dict(self.priorities) if self.priorities else None

    def programs(self):
        """Fresh (single-use) rank generator programs for one run."""
        if self.kind == "barrier_loop":
            from repro.workloads.generators import barrier_loop_programs

            return barrier_loop_programs(
                list(self.works), iterations=self.iterations, profile=self.profile
            )
        if self.kind == "metbench":
            from repro.workloads.metbench import metbench_programs

            return metbench_programs(
                list(self.works), iterations=self.iterations, load=self.profile
            )
        if self.kind == "btmz":
            from repro.workloads.bt_mz import BtMzConfig, bt_mz_programs

            init_factor = self.param("init_factor")
            if init_factor is None:
                return bt_mz_programs(
                    list(self.works),
                    iterations=self.iterations,
                    profile=self.profile,
                )
            return bt_mz_programs(
                config=BtMzConfig(
                    works=list(self.works),
                    iterations=self.iterations,
                    profile=self.profile,
                    init_factor=float(init_factor),
                )
            )
        from repro.workloads.siesta import SiestaConfig, siesta_programs

        p = self.params_dict()
        cfg = SiestaConfig(
            mean_works=list(self.works),
            init_works=list(p["init_works"]),
            final_works=list(p["final_works"]),
            n_iterations=self.iterations,
            profile=self.profile,
            jitter_sigma=float(p.get("jitter_sigma", 0.30)),
            rotate_prob=float(p.get("rotate_prob", 0.35)),
            allreduce_bytes=int(p.get("allreduce_bytes", 64)),
            seed=int(p.get("workload_seed", 2008)),
        )
        return siesta_programs(cfg)

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> dict:
        """The canonical document form fingerprints are computed over.

        ``params`` (and ``spec_version``) are omitted when at their
        defaults so pre-existing recorded scenarios keep their exact
        canonical bytes (and therefore their fingerprints).
        """
        doc = {
            "name": self.name,
            "kind": self.kind,
            "works": list(self.works),
            "iterations": self.iterations,
            "profile": self.profile,
            "mapping": self.mapping,
            "priorities": [list(p) for p in self.priorities],
            "seed": self.seed,
        }
        if self.params:
            doc["params"] = {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.params
            }
        return doc

    _REQUIRED = ("name", "kind", "works", "iterations")
    _OPTIONAL = ("profile", "mapping", "priorities", "seed", "params",
                 "spec_version")

    @classmethod
    def from_doc(cls, doc: object) -> "ScenarioSpec":
        """Strict deserialisation: the exact inverse of :meth:`to_doc`.

        Unlike the three lax ``from_doc`` s this class replaced, unknown
        fields, missing required fields, an unsupported ``spec_version``
        and uncoercible values all raise a typed
        :class:`~repro.errors.ValidationError` — a scenario document
        that round-trips is bit-identical to its source.
        """
        if not isinstance(doc, dict):
            raise ValidationError(
                f"scenario document must be a JSON object, got {doc!r}"
            )
        unknown = set(doc) - set(cls._REQUIRED) - set(cls._OPTIONAL)
        if unknown:
            raise ValidationError(
                f"unknown scenario fields: {sorted(unknown)}"
            )
        missing = [k for k in cls._REQUIRED if k not in doc]
        if missing:
            raise ValidationError(f"missing scenario fields: {missing}")
        version = doc.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValidationError(
                f"unsupported spec_version {version!r} "
                f"(this build reads version {SPEC_VERSION})"
            )
        priorities = doc.get("priorities", ())
        if not isinstance(priorities, (list, tuple)) or any(
            not isinstance(p, (list, tuple)) or len(p) != 2 for p in priorities
        ):
            raise ValidationError(
                f"priorities must be [rank, priority] pairs, got {priorities!r}"
            )
        params = doc.get("params", {})
        if not isinstance(params, (dict, list, tuple)):
            raise ValidationError(
                f"params must be an object, got {params!r}"
            )
        try:
            return cls(
                name=str(doc["name"]),
                kind=str(doc["kind"]),
                works=tuple(float(w) for w in doc["works"]),
                iterations=int(doc["iterations"]),
                profile=str(doc.get("profile", "hpc")),
                mapping=str(doc.get("mapping", "identity")),
                priorities=tuple((int(r), int(p)) for r, p in priorities),
                seed=int(doc.get("seed", 0)),
                params=_freeze_params(params),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise
            raise ValidationError(
                f"malformed scenario document: {exc}"
            ) from exc

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form — the one content address
        shared by golden traces, the service cache and the oracle.

        Memoised: the spec is frozen, and the hash is taken once per
        spec even when the service fingerprints the job at submission
        and the engine stamps the result.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_doc(self.to_doc())
            object.__setattr__(self, "_fingerprint", cached)
        return cached
