"""Execution engines: the pluggable backends a :class:`ScenarioSpec` runs on.

One spec, three physics paths — the same split the differential oracle
checks and the service serves, now behind a single interface:

``fluid``
    The default simulator: the discrete-event MPI runtime driven by the
    analytic throughput model. Produces a full trace (and therefore a
    digest).
``cycle``
    The same runtime driven by cycle-level pipeline measurements
    (:class:`~repro.smt.throughput.ThroughputTable`) — the decode
    mechanism's ground truth. Optionally shares a persisted table.
``analytic``
    A closed-form execution-time estimate that never runs an event loop:
    the bottleneck rank's total work over its steady-state chip-coupled
    IPC. No trace, no digest — a bound, not a simulation.

Every engine returns an :class:`ExecutionResult` carrying the spec's
fingerprint, the engine's name, the paper's two metrics where defined,
and the sha256 trace digest for trace-producing engines — the provenance
the golden-trace layer pins and the service caches.

Engines own their warm-state reuse: trace-producing engines keep
per-thread ``System`` caches (the model's memo cache warms across runs,
the cycle table accumulates measurements) keyed by everything that
changes construction, so the service's worker threads get the same
warm-path behaviour the old executor hand-rolled.

Batched execution: every engine also implements ``run_batch(specs)``,
with a correct default fallback (a loop over :meth:`Engine.run`) and
native strategies where amortisation pays:

``fluid``
    Predicts the chip states a batch will visit (every combination of
    compute/spin postures per mapped context at the static priorities),
    dedupes them across the batch, solves the misses in one stacked
    numpy call (:meth:`AnalyticThroughputModel.chip_ipc_stack`), then
    runs the per-spec event loops against the warmed memo. The
    prediction is purely a speed heuristic — anything it missed is
    solved on demand — and the solve itself is a pure function, so
    batch traces are bit-identical to scalar ones.
``analytic``
    Stacks all specs' steady-state chip solves into one vectorized
    call; the per-spec closed form then reads warm cache entries.
``cycle``
    Shares the persisted :class:`ThroughputTable` across the batch:
    loaded once per (seed, path) System, merged and saved once per
    batch instead of once per run.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cluster.spec import TopologySpec
from repro.cluster.system import ClusterSystem, ClusterSystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RunResult, RuntimeConfig
from repro.scenarios.spec import ScenarioSpec
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.throughput import ThroughputTable
from repro.telemetry import CacheStats, default_registry, register_cache_metrics

__all__ = [
    "ExecutionResult",
    "Engine",
    "FluidEngine",
    "CycleEngine",
    "AnalyticEngine",
    "trace_digest",
    "fast_cycle_table",
]


def _observe_run(engine: str, elapsed_s: float, nodes: int = 1) -> None:
    """Publish one engine run into the default registry.

    One event per whole run (the simulation inside is the expensive
    part), so this is always on; the event loop itself is untouched.
    ``nodes`` is the scenario's cluster size (1 for the default single
    chip), so ``/metrics`` distinguishes cluster from single-chip
    traffic.
    """
    reg = default_registry()
    labels = (engine, str(nodes))
    reg.counter(
        "repro_engine_runs_total",
        "Executed scenario runs, by engine and node count.",
        labelnames=("engine", "nodes"),
    ).labels(*labels).inc()
    reg.histogram(
        "repro_engine_run_seconds",
        "Wall seconds per engine run, by engine and node count.",
        labelnames=("engine", "nodes"),
    ).labels(*labels).observe(elapsed_s)


def _spec_nodes(spec: ScenarioSpec) -> int:
    """Node count a spec targets (1 = the default single chip)."""
    return spec.topology.n_nodes if spec.topology is not None else 1


def _observe_batch(engine: str, size: int, elapsed_s: float) -> None:
    """Publish one ``run_batch`` call into the default registry.

    Per-spec run counters/histograms still fire individually inside the
    batch (the scalar ``run`` path is reused per spec), so these batch
    instruments are additive: calls, sizes, and whole-batch wall time.
    """
    reg = default_registry()
    reg.counter(
        "repro_engine_batches_total",
        "run_batch calls, by engine.",
        labelnames=("engine",),
    ).labels(engine).inc()
    reg.histogram(
        "repro_engine_batch_size", "Specs per run_batch call.",
        labelnames=("engine",),
    ).labels(engine).observe(size)
    reg.histogram(
        "repro_engine_batch_seconds", "Wall seconds per run_batch call.",
        labelnames=("engine",),
    ).labels(engine).observe(elapsed_s)


_DEFAULT_FREQ_HZ: Optional[float] = None


def _default_freq_hz() -> float:
    """The default chip clock, resolved once per process.

    ``SystemConfig()`` is a frozen default every time, so the frequency
    it carries is a constant; constructing it per analytic run showed up
    as real overhead in the batch profile.
    """
    global _DEFAULT_FREQ_HZ
    if _DEFAULT_FREQ_HZ is None:
        _DEFAULT_FREQ_HZ = SystemConfig().chip.freq_hz
    return _DEFAULT_FREQ_HZ


def trace_digest(result: RunResult) -> str:
    """sha256 over the full-precision interval stream of a finished run.

    ``repr(float)`` round-trips exactly, so two runs share a digest iff
    their traces are bit-identical — the equality the determinism and
    incremental-rates guarantees promise.
    """
    h = hashlib.sha256()
    for tl in result.trace:
        for iv in tl.intervals:
            h.update(
                f"{tl.rank}:{iv.state.value}:{iv.start!r}:{iv.end!r}\n".encode()
            )
    return h.hexdigest()


def fast_cycle_table(seed: int = 0) -> ThroughputTable:
    """A cycle model with short measurement windows (oracle-speed).

    IPC from an 8k-cycle window is stable to a few percent for the
    bundled profiles — plenty under the cross-model tolerances, and an
    order of magnitude faster than the production windows. Share one
    table across a fuzz campaign so repeated (loads, priorities) keys
    are measured once.
    """
    return ThroughputTable(warmup_cycles=2_000, measure_cycles=8_000, seed=seed)


@dataclass(frozen=True)
class ExecutionResult:
    """What every engine returns for one executed spec.

    ``digest`` is the sha256 trace digest for trace-producing engines
    and ``None`` for closed-form ones; ``run`` keeps the raw
    :class:`~repro.mpi.runtime.RunResult` for callers that need the
    trace itself (excluded from equality and serialisation).
    """

    engine: str
    spec_fingerprint: str
    label: str
    total_time: float
    compute_seconds: float
    digest: Optional[str] = None
    imbalance_percent: Optional[float] = None
    events_processed: int = 0
    final_priorities: Tuple[int, ...] = ()
    ranks: Tuple[dict, ...] = ()
    run: Optional[RunResult] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_run(
        cls,
        engine: str,
        spec: ScenarioSpec,
        run: RunResult,
        compute_seconds: float,
    ) -> "ExecutionResult":
        return cls(
            engine=engine,
            spec_fingerprint=spec.fingerprint,
            label=run.label,
            total_time=run.total_time,
            compute_seconds=compute_seconds,
            digest=trace_digest(run),
            imbalance_percent=run.imbalance_percent,
            events_processed=run.events_processed,
            final_priorities=tuple(int(p) for p in run.final_priorities),
            ranks=tuple(
                {
                    "rank": r.rank,
                    "compute": r.compute_fraction,
                    "sync": r.sync_fraction,
                    "comm": r.comm_fraction,
                    "noise": r.noise_fraction,
                    "idle": r.idle_fraction,
                }
                for r in run.stats.ranks
            ),
            run=run,
        )

    def to_doc(self) -> dict:
        doc: dict = {
            "engine": self.engine,
            "spec_fingerprint": self.spec_fingerprint,
            "label": self.label,
            "total_time": self.total_time,
            "compute_seconds": self.compute_seconds,
            "events_processed": self.events_processed,
            "final_priorities": list(self.final_priorities),
            "ranks": [dict(r) for r in self.ranks],
        }
        if self.digest is not None:
            doc["digest"] = self.digest
        if self.imbalance_percent is not None:
            doc["imbalance_percent"] = self.imbalance_percent
        return doc


class Engine:
    """The execution interface every backend implements.

    ``run(spec)`` is the whole contract: deterministic for a given
    (spec, options) pair, returning an :class:`ExecutionResult`.
    ``options`` carries engine-specific knobs (declared in
    :attr:`option_names`; unknown keys raise) so callers — notably the
    conformance oracle — can iterate the registry generically while
    still steering individual backends.
    """

    name: str = ""
    description: str = ""
    #: Engine-specific ``options`` keys :meth:`run` accepts.
    option_names: Tuple[str, ...] = ()
    #: How :meth:`run_batch` amortises work: ``"loop"`` (the default
    #: fallback — correct but nothing shared), ``"vectorized"`` (stacked
    #: numpy solves), or ``"shared-table"`` (one table load/save per
    #: batch). Shown by ``repro engines list``.
    batch_strategy: str = "loop"
    #: The spec/search axes this engine's physics distinguishes.
    #: ``"priority"``: static hardware priorities change the outcome;
    #: ``"mapping"``: *which ranks share a core* changes the outcome
    #: (every backend models intra-core decode coupling, so both are on
    #: by default); ``"dynamic"``: runtime priority rewrites via the
    #: ``controllers`` hook. Shown by ``repro engines list`` and what
    #: the joint (mapping × priority) search relies on.
    axes: Tuple[str, ...] = ("priority", "mapping")

    def run(
        self,
        spec: ScenarioSpec,
        label: Optional[str] = None,
        system: Optional[System] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> ExecutionResult:
        raise NotImplementedError

    def run_batch(
        self,
        specs,
        *,
        labels: Optional[List[str]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> List[ExecutionResult]:
        """Execute many specs; one :class:`ExecutionResult` per spec.

        The contract every backend must honour: results are index-
        aligned with ``specs``, and each is bit-identical to a scalar
        ``run(spec)`` with the same options (batching is an execution
        strategy, never a physics change). This default implementation
        simply loops :meth:`run`; backends override it where shared
        work can be amortised across the batch.
        """
        specs, labels = self._batch_args(specs, labels)
        t0 = time.perf_counter()
        results = [
            self.run(spec, label=label, options=options)
            for spec, label in zip(specs, labels)
        ]
        _observe_batch(self.name, len(specs), time.perf_counter() - t0)
        return results

    def _batch_args(
        self, specs, labels: Optional[List[str]]
    ) -> Tuple[List[ScenarioSpec], List[Optional[str]]]:
        """Normalise/validate the (specs, labels) pair of a batch call."""
        specs = list(specs)
        if labels is None:
            labels = [None] * len(specs)
        else:
            labels = list(labels)
            if len(labels) != len(specs):
                raise ConfigurationError(
                    f"run_batch got {len(specs)} specs but "
                    f"{len(labels)} labels"
                )
        return specs, labels

    def _opts(self, options: Optional[Mapping[str, object]]) -> dict:
        opts = dict(options or {})
        unknown = set(opts) - set(self.option_names)
        if unknown:
            raise ConfigurationError(
                f"engine {self.name!r} does not accept options "
                f"{sorted(unknown)} (allowed: {sorted(self.option_names)})"
            )
        return opts


class FluidEngine(Engine):
    """The default simulator: fluid MPI runtime + analytic model."""

    name = "fluid"
    description = ("discrete-event MPI runtime driven by the analytic "
                   "throughput model (the default simulator)")
    #: ``controllers`` is a zero-argument factory returning the runtime
    #: controllers for one run (fresh objects per run — controllers are
    #: stateful). A factory rather than instances so ``run_batch`` can
    #: give every spec its own controllers; this is how dynamic
    #: balancing policies ride the batch API.
    option_names = ("incremental_rates", "check_invariants", "controllers")
    batch_strategy = "vectorized"
    axes = ("priority", "mapping", "dynamic", "topology")

    def __init__(self) -> None:
        self._local = threading.local()
        self._systems_lock = threading.Lock()
        self._systems: List[System] = []
        register_cache_metrics(
            default_registry(), "fluid_models", self._model_cache_stats
        )

    def _model_cache_stats(self) -> CacheStats:
        """Summed memo accounting across every warm System this engine
        has built (pull-based; evaluated only at collection time)."""
        with self._systems_lock:
            systems = list(self._systems)
        total = CacheStats(hits=0, misses=0, size=0, max_size=0)
        for system in systems:
            getter = getattr(system.model, "cache_stats", None)
            if callable(getter):
                total = total + getter()
        return total

    def _system(
        self,
        seed: int,
        incremental: bool,
        invariants: bool,
        topology: Optional[TopologySpec] = None,
    ):
        """Per-thread warm Systems: the shared analytic model's memo
        cache warms across runs on the same worker. Topology-bearing
        specs get a :class:`~repro.cluster.ClusterSystem` keyed by their
        (hashable) :class:`~repro.cluster.TopologySpec` — one warm
        cluster per distinct shape per thread."""
        cache: Optional[Dict[tuple, System]] = getattr(
            self._local, "systems", None
        )
        if cache is None:
            cache = self._local.systems = {}
        key = (seed, incremental, invariants, topology)
        system = cache.get(key)
        if system is None:
            runtime = RuntimeConfig(
                incremental_rates=incremental,
                check_invariants=invariants,
            )
            if topology is None:
                system = System(SystemConfig(seed=seed, runtime=runtime))
            else:
                system = ClusterSystem(
                    ClusterSystemConfig(
                        cluster=topology.cluster_config(),
                        network=topology.network_model(),
                        runtime=runtime,
                    )
                )
            cache[key] = system
            with self._systems_lock:
                self._systems.append(system)
        return system

    def run(
        self,
        spec: ScenarioSpec,
        label: Optional[str] = None,
        system: Optional[System] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> ExecutionResult:
        opts = self._opts(options)
        t0 = time.perf_counter()
        if system is None:
            system = self._system(
                spec.seed,
                bool(opts.get("incremental_rates", True)),
                bool(opts.get("check_invariants", False)),
                spec.topology,
            )
        controllers = None
        factory = opts.get("controllers")
        if factory is not None:
            if not callable(factory):
                raise ConfigurationError(
                    "controllers option must be a zero-arg factory "
                    "returning fresh controller objects"
                )
            controllers = list(factory())
        run = system.run(
            spec.programs(),
            mapping=spec.mapping_obj(),
            priorities=spec.priority_dict(),
            label=label if label is not None else f"scenario.{spec.name}",
            controllers=controllers,
        )
        elapsed = time.perf_counter() - t0
        _observe_run(self.name, elapsed, nodes=_spec_nodes(spec))
        return ExecutionResult.from_run(self.name, spec, run, elapsed)

    def run_batch(
        self,
        specs,
        *,
        labels: Optional[List[str]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> List[ExecutionResult]:
        """Batch execution: presolve the batch's chip states, then run.

        Phase 1 predicts every chip state the batch's event loops will
        query (per spec: each mapped context either computes its profile
        or spins at a barrier, at its static priority), dedupes them
        across the batch, and solves the cache misses in one stacked
        numpy call. Phase 2 runs the ordinary scalar event loops, which
        now hit a warm memo. Correctness never depends on the
        prediction: a state it missed is solved on demand, and the
        solve is a pure function of the state — so digests are
        bit-identical to per-spec ``run`` calls in any order.
        """
        specs, labels = self._batch_args(specs, labels)
        opts = self._opts(options)
        t0 = time.perf_counter()
        incremental = bool(opts.get("incremental_rates", True))
        invariants = bool(opts.get("check_invariants", False))

        by_system: Dict[tuple, List[ScenarioSpec]] = {}
        for spec in specs:
            by_system.setdefault((spec.seed, spec.topology), []).append(spec)
        for (seed, topology), group in by_system.items():
            system = self._system(seed, incremental, invariants, topology)
            self._presolve(system, group)

        results = [
            self.run(spec, label=label, options=options)
            for spec, label in zip(specs, labels)
        ]
        _observe_batch(self.name, len(specs), time.perf_counter() - t0)
        return results

    def _presolve(self, system: System, specs: List[ScenarioSpec]) -> None:
        """Warm ``system.model``'s chip memo for a group of specs."""
        model = system.model
        stack = getattr(model, "chip_ipc_stack", None)
        if stack is None:  # pragma: no cover - non-analytic model
            return
        chip_cache = model._chip_cache
        seen = set()
        states = []
        for spec in specs:
            for core_states in self._candidate_chip_states(system, spec):
                key = tuple(
                    (
                        pa.name if pa else None,
                        pb.name if pb else None,
                        xa,
                        xb,
                    )
                    for (pa, pb, xa, xb) in core_states
                )
                if key not in seen and key not in chip_cache:
                    seen.add(key)
                    states.append(core_states)
        if states:
            stack(states)

    def _candidate_chip_states(self, system, spec: ScenarioSpec):
        """Chip states ``spec``'s event loop is expected to query.

        Mirrors the runtime's state construction: a plain chip is one
        core group covering *all* cores (idle contexts included, at the
        default MEDIUM priority); static priorities are applied at t=0;
        each mapped context is either computing ``spec.profile`` or
        parked in the wait posture (the spin profile under the default
        ``wait_mode="spin"``, an empty context under ``"block"``).
        Enumerates the cartesian product of the two postures per mapped
        context — at most ``2**n_ranks`` states, of which a run
        typically visits a handful.

        On a cluster the throughput-coupling domain is one *node* chip
        (the runtime's ``core_groups``), so the posture product runs
        per node and yields that node's chip states — never a
        cross-node product, which would be exponentially larger and
        query states no chip ever sees.
        """
        runtime_cfg = system.config.runtime
        if runtime_cfg.wait_mode == "spin":
            wait_load = BASE_PROFILES[runtime_cfg.spin_profile]
        else:
            wait_load = None
        profile = BASE_PROFILES[spec.profile]
        mapping = spec.mapping_obj()
        prios = spec.priority_dict() or {}

        if spec.topology is not None:
            cpus_per_chip = spec.topology.cpus_per_node
            chip_cores = cpus_per_chip // 2
        else:
            chip_cores = system.config.chip.n_cores
            cpus_per_chip = 2 * chip_cores

        by_chip: Dict[int, List[int]] = {}
        cpu_prio: Dict[int, int] = {}
        for rank in range(spec.n_ranks):
            cpu = mapping.cpu_of(rank)
            cpu_prio[cpu] = int(prios.get(rank, 4))
            chip = cpu // cpus_per_chip if spec.topology is not None else 0
            by_chip.setdefault(chip, []).append(cpu)

        for chip, mapped_cpus in by_chip.items():
            base = chip * cpus_per_chip
            prio_row = [
                cpu_prio.get(base + local, 4) for local in range(cpus_per_chip)
            ]
            for postures in itertools.product((profile, wait_load),
                                              repeat=len(mapped_cpus)):
                load_row = [None] * cpus_per_chip
                for cpu, load in zip(mapped_cpus, postures):
                    load_row[cpu - base] = load
                yield tuple(
                    (
                        load_row[2 * core],
                        load_row[2 * core + 1],
                        prio_row[2 * core],
                        prio_row[2 * core + 1],
                    )
                    for core in range(chip_cores)
                )


class CycleEngine(Engine):
    """The fluid runtime driven by cycle-level pipeline measurements."""

    name = "cycle"
    description = ("MPI runtime driven by measured pipeline IPC "
                   "(ThroughputTable — the decode mechanism's ground truth)")
    option_names = ("table", "table_path")
    batch_strategy = "shared-table"

    #: Serialises load/construct/save of shared on-disk tables across
    #: worker threads (merge-then-save: the table only ever grows).
    _table_io_lock = threading.Lock()

    def __init__(self) -> None:
        self._local = threading.local()

    def _system(self, seed: int, table_path: Optional[str]) -> System:
        cache: Optional[Dict[tuple, System]] = getattr(
            self._local, "systems", None
        )
        if cache is None:
            cache = self._local.systems = {}
        key = (seed, table_path)
        system = cache.get(key)
        if system is None:
            config = SystemConfig(
                model="cycle", seed=seed, throughput_table_path=table_path
            )
            if table_path is not None:
                with self._table_io_lock:
                    system = System(config)
            else:
                system = System(config)
            cache[key] = system
        return system

    def run(
        self,
        spec: ScenarioSpec,
        label: Optional[str] = None,
        system: Optional[System] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> ExecutionResult:
        opts = self._opts(options)
        if spec.topology is not None:
            raise ConfigurationError(
                "the cycle engine models one chip's pipelines; "
                f"scenario {spec.name!r} names a {spec.topology.n_nodes}-node "
                "topology (use the fluid engine)"
            )
        table: Optional[ThroughputTable] = opts.get("table")
        table_path: Optional[str] = opts.get("table_path")
        if table is not None and table_path is not None:
            raise ConfigurationError(
                "cycle engine takes table= or table_path=, not both"
            )
        t0 = time.perf_counter()
        persist = False
        if system is None:
            if table is not None:
                # Oracle fast path: a fresh system whose production
                # table is swapped for the (possibly shared,
                # short-window) measurement table. Never cached — the
                # override must not leak into later runs.
                system = System(SystemConfig(model="cycle", seed=spec.seed))
                system.model = table
            else:
                system = self._system(spec.seed, table_path)
                persist = table_path is not None
        run = system.run(
            spec.programs(),
            mapping=spec.mapping_obj(),
            priorities=spec.priority_dict(),
            label=label if label is not None else f"scenario.{spec.name}",
        )
        if persist:
            # Merge-then-save: pick up entries concurrent workers
            # persisted since we loaded, so the shared table only grows.
            with self._table_io_lock:
                system.model.load(table_path)
                system.save_throughput_table()
        elapsed = time.perf_counter() - t0
        _observe_run(self.name, elapsed)
        return ExecutionResult.from_run(self.name, spec, run, elapsed)

    def run_batch(
        self,
        specs,
        *,
        labels: Optional[List[str]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> List[ExecutionResult]:
        """Batch execution with one table load/merge-save per batch.

        With ``table_path``, the scalar path merges and persists the
        shared on-disk table after *every* run; the batch path runs all
        specs against the (per-seed) warm Systems and persists each
        table once at the end. The table only ever grows and per-run
        measurement state is identical either way, so digests match the
        scalar path bit for bit.
        """
        specs, labels = self._batch_args(specs, labels)
        opts = self._opts(options)
        table: Optional[ThroughputTable] = opts.get("table")
        table_path: Optional[str] = opts.get("table_path")
        if table is not None and table_path is not None:
            raise ConfigurationError(
                "cycle engine takes table= or table_path=, not both"
            )
        t0 = time.perf_counter()
        if table_path is None:
            results = [
                self.run(spec, label=label, options=options)
                for spec, label in zip(specs, labels)
            ]
        else:
            systems = []
            results = []
            for spec, label in zip(specs, labels):
                system = self._system(spec.seed, table_path)
                if system not in systems:
                    systems.append(system)
                results.append(
                    self.run(spec, label=label, system=system,
                             options=options)
                )
            for system in systems:
                # Same merge-then-save the scalar path does per run,
                # amortised to once per batch and system.
                with self._table_io_lock:
                    system.model.load(table_path)
                    system.save_throughput_table()
        _observe_batch(self.name, len(specs), time.perf_counter() - t0)
        return results


class AnalyticEngine(Engine):
    """Closed-form execution-time estimate, no event loop.

    Steady state: every mapped context runs its profile at its static
    priority; the bottleneck rank's total work over its chip-coupled IPC
    bounds the run. Communication, init phases and spin-wait rate shifts
    are deliberately ignored — the conformance tolerance absorbs them.
    """

    name = "analytic"
    description = ("closed-form steady-state estimate (bottleneck rank's "
                   "work over its chip-coupled IPC; no event loop)")
    option_names = ("model",)
    batch_strategy = "vectorized"
    #: Topology-aware: per-node chip solves keep the IPC coupling within
    #: each node's chip (communication is ignored either way, so the
    #: estimate stays the same compute-bound lower bound on a cluster).
    axes = ("priority", "mapping", "topology")

    def __init__(self) -> None:
        self._model = AnalyticThroughputModel()
        register_cache_metrics(
            default_registry(), "analytic_model", self._model.cache_stats
        )

    @staticmethod
    def _core_states(spec: ScenarioSpec, mapping):
        """The steady-state chip query for ``spec``: every mapped context
        runs its profile at its static priority."""
        prios = spec.priority_dict() or {}
        profile = BASE_PROFILES[spec.profile]

        n_cores = max(mapping.cpu_of(r) for r in range(spec.n_ranks)) // 2 + 1
        loads: List[List[Optional[object]]] = [
            [None, None] for _ in range(n_cores)
        ]
        priolist = [[4, 4] for _ in range(n_cores)]
        for rank in range(spec.n_ranks):
            cpu = mapping.cpu_of(rank)
            loads[cpu // 2][cpu % 2] = profile
            priolist[cpu // 2][cpu % 2] = prios.get(rank, 4)
        return tuple(
            (loads[c][0], loads[c][1], priolist[c][0], priolist[c][1])
            for c in range(n_cores)
        )

    @staticmethod
    def _cluster_ipcs(
        spec: ScenarioSpec, mapping, model: AnalyticThroughputModel
    ) -> List[Tuple[float, float]]:
        """Per-global-core IPC pairs for a topology spec.

        The coupling domain is one node's chip, so each occupied node is
        solved as its own chip query (idle contexts at MEDIUM, exactly
        like the runtime's per-node core groups); the results are laid
        out flat so ``global core = global cpu // 2`` indexes them.
        """
        prios = spec.priority_dict() or {}
        profile = BASE_PROFILES[spec.profile]
        cpus_per_node = spec.topology.cpus_per_node
        cores_per_node = cpus_per_node // 2

        by_node: Dict[int, List[int]] = {}
        cpu_prio: Dict[int, int] = {}
        cpu_load: Dict[int, object] = {}
        for rank in range(spec.n_ranks):
            cpu = mapping.cpu_of(rank)
            cpu_prio[cpu] = prios.get(rank, 4)
            cpu_load[cpu] = profile
            by_node.setdefault(cpu // cpus_per_node, []).append(cpu)

        ipcs: List[Tuple[float, float]] = [
            (0.0, 0.0)
        ] * (spec.topology.n_nodes * cores_per_node)
        for node in sorted(by_node):
            base = node * cpus_per_node
            states = tuple(
                (
                    cpu_load.get(base + 2 * c),
                    cpu_load.get(base + 2 * c + 1),
                    cpu_prio.get(base + 2 * c, 4),
                    cpu_prio.get(base + 2 * c + 1, 4),
                )
                for c in range(cores_per_node)
            )
            solved = model.chip_ipc(states)
            for c, pair in enumerate(solved):
                ipcs[node * cores_per_node + c] = tuple(pair)
        return ipcs

    def run(
        self,
        spec: ScenarioSpec,
        label: Optional[str] = None,
        system: Optional[System] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> ExecutionResult:
        if system is not None:
            raise ConfigurationError(
                "the analytic engine runs no System; drop the system= arg"
            )
        opts = self._opts(options)
        model: AnalyticThroughputModel = opts.get("model") or self._model
        t0 = time.perf_counter()
        mapping = spec.mapping_obj()
        if spec.topology is not None:
            ipcs = self._cluster_ipcs(spec, mapping, model)
        else:
            core_states = self._core_states(spec, mapping)
            ipcs = model.chip_ipc(core_states)
        return self._finish(spec, label, mapping, ipcs, t0)

    def _finish(
        self, spec: ScenarioSpec, label: Optional[str], mapping, ipcs, t0: float
    ) -> ExecutionResult:
        """The closed form proper: bottleneck rank's work over its IPC."""
        freq = _default_freq_hz()
        worst = 0.0
        for rank in range(spec.n_ranks):
            cpu = mapping.cpu_of(rank)
            ipc = ipcs[cpu // 2][cpu % 2]
            if ipc <= 0.0:
                raise SimulationError(
                    f"scenario {spec.name!r}: rank {rank} has zero "
                    "steady-state IPC"
                )
            total_work = spec.works[rank] * spec.iterations
            worst = max(worst, total_work / (ipc * freq))
        result = ExecutionResult(
            engine=self.name,
            spec_fingerprint=spec.fingerprint,
            label=label if label is not None else f"scenario.{spec.name}",
            total_time=worst,
            compute_seconds=time.perf_counter() - t0,
        )
        _observe_run(self.name, result.compute_seconds, nodes=_spec_nodes(spec))
        return result

    def run_batch(
        self,
        specs,
        *,
        labels: Optional[List[str]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> List[ExecutionResult]:
        """Batch execution: one stacked solve for the whole batch.

        Every spec's steady-state chip query is collected, deduped, and
        the cache misses solved in a single vectorized call
        (:meth:`AnalyticThroughputModel.chip_ipc_stack`, which reads and
        fills the same memo caches scalar queries use); the closed form
        per spec then consumes the solved IPCs directly. Identical to
        looping :meth:`run` — same pure solve, same caches.
        """
        specs, labels = self._batch_args(specs, labels)
        opts = self._opts(options)
        model: AnalyticThroughputModel = opts.get("model") or self._model
        batch_t0 = time.perf_counter()
        results: List[Optional[ExecutionResult]] = [None] * len(specs)
        # Topology specs take the scalar per-node path (their per-node
        # chips would not stack homogeneously with single-chip queries);
        # results stay index-aligned with the input.
        flat_idx = [
            i for i, spec in enumerate(specs) if spec.topology is None
        ]
        for i, spec in enumerate(specs):
            if spec.topology is not None:
                results[i] = self.run(spec, label=labels[i], options=options)
        flat_specs = [specs[i] for i in flat_idx]
        flat_labels = [labels[i] for i in flat_idx]
        mappings = [spec.mapping_obj() for spec in flat_specs]
        states = [
            self._core_states(spec, mapping)
            for spec, mapping in zip(flat_specs, mappings)
        ]
        stack = getattr(model, "chip_ipc_stack", None)
        if stack is not None and flat_specs:
            keys = [
                tuple(
                    (
                        pa.name if pa else None,
                        pb.name if pb else None,
                        xa,
                        xb,
                    )
                    for (pa, pb, xa, xb) in core_states
                )
                for core_states in states
            ]
            unique = {}
            for key, core_states in zip(keys, states):
                unique.setdefault(key, core_states)
            solved = stack(list(unique.values()))
            by_key = dict(zip(unique, solved))
            for i, spec, label, mapping, key in zip(
                flat_idx, flat_specs, flat_labels, mappings, keys
            ):
                t0 = time.perf_counter()
                results[i] = self._finish(spec, label, mapping, by_key[key], t0)
        else:
            for i, spec, label in zip(flat_idx, flat_specs, flat_labels):
                results[i] = self.run(spec, label=label, options=options)
        _observe_batch(self.name, len(specs), time.perf_counter() - batch_t0)
        return results
