"""Seeded random scenario specs for property-style fuzzing.

Moved here from the oracle layer (the generator describes runs, it
doesn't judge them); ``repro.oracle`` re-exports it for compatibility.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.scenarios.spec import ScenarioSpec
from repro.util.rng import RngStreams

__all__ = ["ScenarioGenerator"]

#: The generator's draw space. Deliberately narrower than
#: ``spec.KINDS``/``spec.MAPPINGS`` and frozen in this order: the draw
#: *sequence* for a given seed is a compatibility contract (nightly fuzz
#: campaigns and recorded failures reference ``fuzz-<seed>-<n>`` names),
#: so widening these tuples is a new-generator event, not an edit.
_KINDS = ("barrier_loop", "metbench", "btmz")
_MAPPINGS = ("btmz", "siesta")


class ScenarioGenerator:
    """Seeded random scenarios for property-style fuzzing.

    Determinism contract: ``ScenarioGenerator(seed)`` yields the same
    scenario sequence forever (draws come from a named
    :class:`~repro.util.rng.RngStreams` stream, so adding other
    consumers of randomness elsewhere cannot perturb it).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = RngStreams(self.seed).get("oracle.fuzz")
        self._count = 0

    def draw(self) -> ScenarioSpec:
        rng = self._rng
        self._count += 1
        kind = _KINDS[int(rng.integers(0, len(_KINDS)))]
        n_ranks = int(rng.choice((2, 4)))
        mapping = "identity"
        if n_ranks == 4 and rng.random() < 0.4:
            mapping = str(rng.choice(_MAPPINGS))
        works = tuple(
            float(w)
            for w in rng.lognormal(mean=0.0, sigma=0.6, size=n_ranks) * 1.5e9
        )
        iterations = int(rng.integers(2, 5))
        profile = str(rng.choice(("hpc", "mem", "fpu", "int")))
        priorities: Tuple[Tuple[int, int], ...] = ()
        if rng.random() < 0.7:
            priorities = tuple(
                (r, int(rng.integers(2, 7))) for r in range(n_ranks)
            )
        return ScenarioSpec(
            name=f"fuzz-{self.seed}-{self._count}",
            kind=kind,
            works=works,
            iterations=iterations,
            profile=profile,
            mapping=mapping,
            priorities=priorities,
            seed=self.seed,
        )

    def take(self, n: int) -> List[ScenarioSpec]:
        return [self.draw() for _ in range(n)]
