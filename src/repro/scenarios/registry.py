"""The engine registry: named execution backends, one lookup.

Callers that used to hard-wire ``run_fluid`` / ``run_cycle`` /
``analytic_estimate`` now ask the registry: the experiment runner maps
its ``System`` model knob through :func:`engine_for_model`, the service
executor resolves the engine a job names, and the conformance oracle
iterates :func:`all_engines` so a newly registered backend is
automatically cross-checked against the incumbents.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.engines import Engine

__all__ = [
    "register",
    "get_engine",
    "engine_names",
    "all_engines",
    "engine_for_model",
]

_LOCK = threading.Lock()
_ENGINES: Dict[str, Engine] = {}

#: ``SystemConfig.model`` knob -> engine name. The "analytic" *model*
#: drives the fluid runtime (engine "fluid"); the closed-form engine
#: "analytic" has no System model at all.
_MODEL_TO_ENGINE = {"analytic": "fluid", "cycle": "cycle"}


def register(engine: Engine, replace: bool = False) -> Engine:
    """Register ``engine`` under ``engine.name``.

    Re-registering an existing name requires ``replace=True`` so a typo
    cannot silently shadow a physics backend.
    """
    if not engine.name:
        raise ConfigurationError("engine has no name")
    with _LOCK:
        if engine.name in _ENGINES and not replace:
            raise ConfigurationError(
                f"engine {engine.name!r} is already registered "
                "(pass replace=True to override)"
            )
        _ENGINES[engine.name] = engine
    return engine


def get_engine(name: str) -> Engine:
    with _LOCK:
        engine = _ENGINES.get(name)
    if engine is None:
        raise ConfigurationError(
            f"unknown engine {name!r} (registered: {list(engine_names())})"
        )
    return engine


def engine_names() -> Tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(_ENGINES))


def all_engines() -> Tuple[Engine, ...]:
    """Registered engines in name order."""
    with _LOCK:
        return tuple(_ENGINES[name] for name in sorted(_ENGINES))


def engine_for_model(model: str) -> str:
    """Map a ``SystemConfig.model`` knob to the engine that realises it."""
    engine = _MODEL_TO_ENGINE.get(model)
    if engine is None:
        raise ConfigurationError(
            f"no engine realises system model {model!r} "
            f"(known: {sorted(_MODEL_TO_ENGINE)})"
        )
    return engine


def _register_defaults() -> None:
    from repro.scenarios.engines import (
        AnalyticEngine,
        CycleEngine,
        FluidEngine,
    )

    for engine in (FluidEngine(), CycleEngine(), AnalyticEngine()):
        register(engine, replace=True)


_register_defaults()
