"""Canonical scenario specification and pluggable execution engines.

This package is the repo's single answer to "describe one simulated run
and execute it": :class:`ScenarioSpec` (the typed, versioned,
fingerprintable description every layer shares) plus the engine registry
(``fluid`` / ``cycle`` / ``analytic`` backends behind one ``run(spec)``
interface, all returning :class:`ExecutionResult`). The oracle, the
experiment suites and the scenario service are all thin layers over
these two ideas — see ``docs/architecture.md`` for the layer graph.
"""

from repro.scenarios.engines import (
    AnalyticEngine,
    CycleEngine,
    Engine,
    ExecutionResult,
    FluidEngine,
    fast_cycle_table,
    trace_digest,
)
from repro.scenarios.generator import ScenarioGenerator
from repro.scenarios.registry import (
    all_engines,
    engine_for_model,
    engine_names,
    get_engine,
    register,
)
from repro.scenarios.spec import KINDS, MAPPINGS, SPEC_VERSION, ScenarioSpec

__all__ = [
    "SPEC_VERSION",
    "KINDS",
    "MAPPINGS",
    "ScenarioSpec",
    "ScenarioGenerator",
    "Engine",
    "ExecutionResult",
    "FluidEngine",
    "CycleEngine",
    "AnalyticEngine",
    "trace_digest",
    "fast_cycle_table",
    "register",
    "get_engine",
    "engine_names",
    "all_engines",
    "engine_for_model",
]
