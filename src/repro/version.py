"""Package version, exposed separately so tooling can import it cheaply."""

__version__ = "1.0.0"
