"""Named deterministic random-number streams.

Every stochastic element of the simulator (cache-miss draws, OS-noise
arrival times, workload jitter) pulls from its own named stream so that

* two runs with the same :class:`~repro.config.SimulationConfig` produce
  bit-identical traces, and
* adding a new consumer of randomness does not perturb existing streams
  (streams are keyed by name, not by draw order).

Streams are derived from a root seed with ``numpy``'s ``SeedSequence``
spawn-key mechanism, hashed from the stream name, which is the idiom
recommended for reproducible parallel RNG in numerical Python.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["stream_seed", "RngStreams"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for ``name`` from ``root_seed``.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 of the name, not :func:`hash`, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed. Identical root seeds give identical
        streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.get("cache.l2")
    >>> b = streams.get("cache.l2")
    >>> a is b
    True
    >>> float(a.random()) == float(RngStreams(42).get("cache.l2").random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = root_seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(stream_seed(self._root_seed, name)))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Return a child factory rooted under ``name``.

        Useful to hand a subsystem its own namespace of streams without
        sharing the parent's cache.
        """
        return RngStreams(stream_seed(self._root_seed, name))

    def reset(self) -> None:
        """Drop all cached streams so subsequent draws restart each sequence."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(root_seed={self._root_seed}, active={sorted(self._streams)})"
