"""Small shared utilities: RNG streams, unit conversion, validation, tables."""

from repro.util.memo import CacheStats, LruCache
from repro.util.rng import RngStreams, stream_seed
from repro.util.units import (
    cycles_to_seconds,
    seconds_to_cycles,
    format_seconds,
    format_percent,
    format_si,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_probability,
)
from repro.util.tables import TextTable
from repro.util.stats import (
    weighted_mean,
    geometric_mean,
    relative_error,
    percent_change,
    summarize,
)

__all__ = [
    "CacheStats",
    "LruCache",
    "RngStreams",
    "stream_seed",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "format_seconds",
    "format_percent",
    "format_si",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_probability",
    "TextTable",
    "weighted_mean",
    "geometric_mean",
    "relative_error",
    "percent_change",
    "summarize",
]
