"""Unit conversions and human-readable formatting.

The SMT pipeline model works in *cycles*; the MPI runtime and all the
paper's tables work in *seconds*. The bridge is the core clock frequency
(the OpenPower 710's POWER5 runs at 1.65 GHz; we keep it configurable).
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = [
    "POWER5_FREQ_HZ",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "format_seconds",
    "format_percent",
    "format_si",
]

#: Clock frequency of the POWER5 in the IBM OpenPower 710 used by the paper.
POWER5_FREQ_HZ: float = 1.65e9


def cycles_to_seconds(cycles: float, freq_hz: float = POWER5_FREQ_HZ) -> float:
    """Convert a cycle count to seconds at ``freq_hz``."""
    check_positive("freq_hz", freq_hz)
    return float(cycles) / float(freq_hz)


def seconds_to_cycles(seconds: float, freq_hz: float = POWER5_FREQ_HZ) -> float:
    """Convert seconds to cycles at ``freq_hz``."""
    check_positive("freq_hz", freq_hz)
    return float(seconds) * float(freq_hz)


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's tables do (``81.64s``)."""
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_percent(fraction: float, digits: int = 2) -> str:
    """Format a 0..1 fraction as a percentage string (``75.69%``)."""
    return f"{fraction * 100.0:.{digits}f}%"


def format_si(value: float, unit: str = "") -> str:
    """Format ``value`` with an SI prefix (``1.65G``, ``3.2M``, ...)."""
    if value == 0:
        return f"0{unit}"
    sign = "-" if value < 0 else ""
    value = abs(value)
    for threshold, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= threshold:
            return f"{sign}{value / threshold:.2f}{prefix}{unit}"
    if value >= 1:
        return f"{sign}{value:.2f}{unit}"
    for threshold, prefix in ((1e-3, "m"), (1e-6, "u"), (1e-9, "n")):
        if value >= threshold:
            return f"{sign}{value / threshold:.2f}{prefix}{unit}"
    return f"{sign}{value:.3g}{unit}"
