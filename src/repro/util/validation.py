"""Argument-validation helpers used across the package.

Centralising these keeps error messages uniform and the call sites terse.
Every failure raises a typed error from :mod:`repro.errors`:
:class:`~repro.errors.ConfigurationError` for out-of-range values and
:class:`~repro.errors.ValidationTypeError` for outright wrong types (the
latter also derives from ``TypeError``, so pre-existing ``except
TypeError`` call sites keep working while ``except ReproError`` now sees
everything).
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple, Type, Union

from repro.errors import ConfigurationError, ValidationTypeError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_probability",
    "check_int",
    "check_choice",
]


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> None:
    """Raise :class:`ValidationTypeError` unless ``value`` is an instance
    of ``types``.

    ``bool`` is deliberately rejected where a number is expected, because
    ``isinstance(True, int)`` holds and silently accepting booleans hides
    caller bugs.
    """
    if isinstance(value, bool) and types in (int, float, (int, float), (float, int)):
        raise ValidationTypeError(f"{name} must be a number, got bool")
    if not isinstance(value, types):
        type_names = (
            types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        )
        raise ValidationTypeError(
            f"{name} must be {type_names}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is a number strictly greater than zero."""
    check_type(name, value, (int, float))
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is a number greater than or equal to zero."""
    check_type(name, value, (int, float))
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise unless ``lo <= value <= hi``."""
    check_type(name, value, (int, float))
    if not (lo <= value <= hi):
        raise ConfigurationError(f"{name} must be in [{lo}, {hi}], got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise unless ``value`` is a valid probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)


def check_int(name: str, value: Any) -> int:
    """Raise unless ``value`` is an integer (bool rejected); returns it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationTypeError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    return value


def check_choice(name: str, value: Any, choices: Sequence[Any]) -> None:
    """Raise unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(map(repr, choices))}, got {value!r}"
        )
