"""Bounded memoisation caches with hit/miss accounting.

The throughput models answer the same ``(load_a, load_b, prio_a,
prio_b)`` queries millions of times per experiment — MPI phase structure
makes machine-state tuples highly repetitive. :class:`LruCache` is the
shared infrastructure behind those memo layers: a plain
least-recently-used dict with a size bound (so cluster-scale sweeps
cannot grow memory without limit) and counters that let benchmarks and
:class:`~repro.core.search.SearchStats` report *effective* work (solves
actually performed) rather than just wall time.

A ``max_size`` of 0 disables the cache entirely — every lookup is a
miss and nothing is stored — which is how the equivalence tests compare
cached against uncached runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Optional, TypeVar

from repro.errors import ConfigurationError

# CacheStats moved to the telemetry layer (the reporting half of cache
# accounting); re-exported here because this was its original home.
from repro.telemetry.cache import CacheStats

__all__ = ["CacheStats", "LruCache"]

V = TypeVar("V")


class LruCache(Generic[V]):
    """A bounded mapping with least-recently-used eviction.

    Not thread-safe (the simulator is single-threaded per process); safe
    to pickle, so models carrying one can cross a process-pool boundary.
    """

    def __init__(
        self,
        max_size: int = 65536,
        sizeof: Optional[Callable[[V], int]] = None,
    ) -> None:
        if max_size < 0:
            raise ConfigurationError(f"max_size must be >= 0, got {max_size}")
        self.max_size = int(max_size)
        self._data: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional weigher: called once per insert, its results summed
        #: into :attr:`bytes` (and subtracted on eviction/replacement) so
        #: result caches can report how much payload they hold.
        self._sizeof = sizeof
        self._weights: "OrderedDict[Hashable, int]" = OrderedDict()
        self.bytes = 0

    @property
    def enabled(self) -> bool:
        return self.max_size > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value or ``None``, updating recency/stats."""
        hit = self._data.get(key)
        if hit is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return hit

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full."""
        if not self.enabled:
            return
        if key in self._data:
            self._data.move_to_end(key)
            if self._sizeof is not None:
                self.bytes -= self._weights.pop(key, 0)
        self._data[key] = value
        if self._sizeof is not None:
            weight = int(self._sizeof(value))
            self._weights[key] = weight
            self.bytes += weight
        if len(self._data) > self.max_size:
            evicted, _ = self._data.popitem(last=False)
            if self._sizeof is not None:
                self.bytes -= self._weights.pop(evicted, 0)

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            max_size=self.max_size,
            bytes=self.bytes,
        )

    def clear(self) -> None:
        """Drop all entries (keeps the hit/miss history)."""
        self._data.clear()
        self._weights.clear()
        self.bytes = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LruCache(size={len(self._data)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
