"""One canonical-JSON sha256 fingerprint for the whole package.

Before this helper existed the repo grew four copies of the same three
lines (``json.dumps(doc, sort_keys=True)`` piped through sha256) — in
the scenario spec, the service job spec, the golden-trace layer and the
persisted throughput table. Content addresses only compose when every
layer hashes the same bytes for the same document, so the canonical form
lives here exactly once.

Canonical form: ``json.dumps(doc, sort_keys=True)`` with the default
separators, UTF-8 encoded. Changing either would silently invalidate
every persisted fingerprint (golden traces, service cache keys, saved
throughput tables) — treat this module as a wire format.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "fingerprint_doc"]


def canonical_json(doc: object) -> str:
    """The canonical JSON serialisation fingerprints are computed over.

    Key order is fixed by ``sort_keys``; separators are json's defaults
    (kept for compatibility with fingerprints persisted before this
    helper existed).
    """
    return json.dumps(doc, sort_keys=True)


def fingerprint_doc(doc: object) -> str:
    """sha256 hex digest of ``doc``'s canonical JSON form.

    Two documents share a fingerprint iff their canonical forms are
    byte-identical — the content-address contract behind golden traces,
    service result-cache keys and throughput-table invalidation.
    """
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()
