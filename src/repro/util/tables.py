"""Fixed-width text tables in the style of the paper's result tables.

The experiment harness prints tables like the paper's Table IV/V/VI
(case, process, core, priority, comp %, sync %, imbalance %, execution
time). :class:`TextTable` is a tiny dependency-free formatter that keeps
column alignment stable for diffable output in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["TextTable"]


class TextTable:
    """Accumulate rows and render a monospace table.

    Examples
    --------
    >>> t = TextTable(["Case", "Imb %", "Time"])
    >>> t.add_row(["A", "75.69", "81.64s"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Case | Imb % | Time
    -----+-------+-------
    A    | 75.69 | 81.64s
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self._separators: set[int] = set()

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_separator(self) -> None:
        """Insert a horizontal rule before the next row (group boundary)."""
        self._separators.add(len(self.rows))

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = self._widths()
        rule = "-+-".join("-" * w for w in widths)

        def fmt(row: Sequence[str]) -> str:
            return " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append(rule)
        for i, row in enumerate(self.rows):
            if i in self._separators and i != 0:
                lines.append(rule)
            lines.append(fmt(row))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
