"""Summary statistics helpers for experiment analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "weighted_mean",
    "geometric_mean",
    "relative_error",
    "percent_change",
    "percentile",
    "Summary",
    "summarize",
]


def percentile(sample: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample (q in [0, 100]).

    Banker's rounding on the fractional rank (``round`` semantics), so
    ``percentile([1, 2], 50)`` is the *lower* of the two middle
    candidates — matching what the service's latency metrics have
    always reported.
    """
    if not sample:
        raise ConfigurationError("percentile of an empty sample")
    ordered = sorted(sample)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights must be non-negative, not all zero."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ConfigurationError(f"values/weights shape mismatch: {v.shape} vs {w.shape}")
    if np.any(w < 0):
        raise ConfigurationError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        raise ConfigurationError("weights sum to zero")
    return float((v * w).sum() / total)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values (the HPC speedup idiom)."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ConfigurationError("geometric_mean of empty sequence")
    if np.any(v <= 0):
        raise ConfigurationError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(v).mean()))


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|``; inf if reference is zero."""
    if reference == 0:
        return math.inf if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)


def percent_change(new: float, old: float) -> float:
    """Signed percent change from ``old`` to ``new`` (negative = faster/lower).

    Matches the paper's convention: a run going from 81.64 s to 74.90 s is
    reported as an 8.26 % improvement, i.e. ``percent_change(74.90, 81.64)``
    is ``-8.26`` (approximately).
    """
    if old == 0:
        raise ConfigurationError("percent_change with old == 0")
    return (new - old) / old * 100.0


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} median={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from a non-empty sample."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ConfigurationError("summarize of empty sequence")
    return Summary(
        n=int(v.size),
        mean=float(v.mean()),
        std=float(v.std(ddof=1)) if v.size > 1 else 0.0,
        minimum=float(v.min()),
        maximum=float(v.max()),
        median=float(np.median(v)),
    )
