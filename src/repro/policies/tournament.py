"""The tournament: score every (policy × scenario) cell, rank the zoo.

One tournament is a deterministic function of its
:class:`TournamentConfig` (which policies, which corpus, how many
cells, which seed, which engine). Every policy runs the same seeded
corpus; static policies are applied up front (their
:class:`~repro.core.PriorityAssignment` becomes the spec's static
priorities), dynamic policies ride the fluid engine's ``controllers``
option, and allocation policies rewrite the spec's *mapping* (the
thread-to-core axis) while leaving priorities at MEDIUM — all three
families go through ``Engine.run_batch``, so a 7-policy × 50-cell
tournament is 8 batched sweeps, not 400 scalar runs. When a
tournament fields both allocation and priority policies the rendered
leaderboard appends a mapping-vs-priority differential line
(:meth:`Leaderboard.differential_evidence`; display-only, never part
of the canonical doc).

The result is a typed :class:`Leaderboard`: per policy the paper's
imbalance metric, mean/worst total-time movement against the ST
baseline (the same corpus with no priority writes), and the trap score
(mean improvement over the migrating-bottleneck SIESTA cells — the
cells static planners are structurally blind to). Its canonical doc is
byte-stable and excludes wall-clock, so the sha256
:attr:`Leaderboard.fingerprint` is reproducible run-to-run and
golden-replayable like a trace digest (see
:func:`repro.oracle.golden.check_leaderboard`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import (
    AllocationPolicy,
    DynamicPolicy,
    PlacementPolicy,
    Policy,
    StaticPolicy,
)
from repro.errors import ConfigurationError, PersistenceError, ValidationError
from repro.policies.corpus import CORPORA, tournament_corpus
from repro.policies.zoo import DEFAULT_POLICIES, get_policy
from repro.scenarios import ScenarioSpec, get_engine
from repro.scenarios.engines import Engine, ExecutionResult
from repro.telemetry import default_registry
from repro.util.fingerprint import fingerprint_doc
from repro.util.tables import TextTable
from repro.workloads.bt_mz import BtMzConfig

__all__ = [
    "LEADERBOARD_FORMAT",
    "LEADERBOARD_VERSION",
    "TournamentConfig",
    "PolicyScore",
    "Leaderboard",
    "planning_works",
    "apply_policy",
    "run_tournament",
]

LEADERBOARD_FORMAT = "repro-tournament-leaderboard"
#: Bump with a CHANGES.md note whenever the scoring or the canonical
#: document shape changes — recorded leaderboards pin this.
LEADERBOARD_VERSION = 1

#: The paper's documented worst static outcome: MetBench case D finished
#: 17.24% slower than the balanced reference (95.71s vs 81.64s — the gap
#: overshot and reversed the imbalance). The zoo's quality bar: no
#: policy's leaderboard mean may regress past what the paper itself
#: shipped as its cautionary tale (tests/policies/test_tournament.py).
CASE_D_DOCUMENTED_LOSS_PERCENT = 17.24


@dataclass(frozen=True)
class TournamentConfig:
    """Everything that determines a tournament's outcome."""

    policies: Tuple[str, ...] = DEFAULT_POLICIES
    corpus: str = "mixed"
    n_scenarios: int = 50
    seed: int = 0
    engine: str = "fluid"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "policies", tuple(str(p) for p in self.policies)
        )
        if not self.policies:
            raise ConfigurationError("a tournament needs at least one policy")
        if len(set(self.policies)) != len(self.policies):
            raise ConfigurationError(
                f"duplicate policies in {self.policies}"
            )
        if self.corpus not in CORPORA:
            raise ConfigurationError(
                f"unknown corpus {self.corpus!r} (choose from {CORPORA})"
            )
        if self.n_scenarios <= 0:
            raise ConfigurationError(
                f"n_scenarios must be > 0, got {self.n_scenarios}"
            )
        if not self.engine:
            raise ConfigurationError("a tournament needs an engine name")

    def to_doc(self) -> dict:
        return {
            "policies": list(self.policies),
            "corpus": self.corpus,
            "n_scenarios": self.n_scenarios,
            "seed": self.seed,
            "engine": self.engine,
        }

    _FIELDS = ("policies", "corpus", "n_scenarios", "seed", "engine")

    @classmethod
    def from_doc(cls, doc: object) -> "TournamentConfig":
        if not isinstance(doc, dict):
            raise ValidationError(
                f"tournament config must be a JSON object, got {doc!r}"
            )
        unknown = set(doc) - set(cls._FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown tournament config fields: {sorted(unknown)}"
            )
        missing = [k for k in cls._FIELDS if k not in doc]
        if missing:
            raise ValidationError(f"missing tournament config fields: {missing}")
        policies = doc["policies"]
        if not isinstance(policies, (list, tuple)):
            raise ValidationError(
                f"policies must be a list of names, got {policies!r}"
            )
        try:
            return cls(
                policies=tuple(str(p) for p in policies),
                corpus=str(doc["corpus"]),
                n_scenarios=int(doc["n_scenarios"]),
                seed=int(doc["seed"]),
                engine=str(doc["engine"]),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise
            raise ValidationError(
                f"malformed tournament config: {exc}"
            ) from exc
        except ConfigurationError as exc:
            raise ValidationError(f"invalid tournament config: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        return fingerprint_doc(self.to_doc())


@dataclass(frozen=True)
class PolicyScore:
    """One leaderboard row: a policy's aggregate over every cell."""

    policy: str
    family: str
    policy_fingerprint: str
    cells: int
    #: Mean of the paper's imbalance metric across cells, percent.
    mean_imbalance_percent: float
    #: Mean total-time improvement vs the ST baseline, percent
    #: (positive = faster than no balancing).
    mean_improvement_percent: float
    #: The single worst cell's slowdown vs baseline, percent
    #: (0.0 when the policy never lost a cell).
    worst_regression_percent: float
    #: Mean improvement over the migrating-bottleneck (siesta) cells;
    #: None when the corpus has none.
    trap_score_percent: Optional[float]
    #: Per-cell total times, corpus order — the replayable evidence.
    total_times: Tuple[float, ...]

    def to_doc(self) -> dict:
        doc: dict = {
            "policy": self.policy,
            "family": self.family,
            "policy_fingerprint": self.policy_fingerprint,
            "cells": self.cells,
            "mean_imbalance_percent": self.mean_imbalance_percent,
            "mean_improvement_percent": self.mean_improvement_percent,
            "worst_regression_percent": self.worst_regression_percent,
            "total_times": list(self.total_times),
        }
        if self.trap_score_percent is not None:
            doc["trap_score_percent"] = self.trap_score_percent
        return doc

    _REQUIRED = (
        "policy",
        "family",
        "policy_fingerprint",
        "cells",
        "mean_imbalance_percent",
        "mean_improvement_percent",
        "worst_regression_percent",
        "total_times",
    )
    _OPTIONAL = ("trap_score_percent",)

    @classmethod
    def from_doc(cls, doc: object) -> "PolicyScore":
        if not isinstance(doc, dict):
            raise ValidationError(
                f"policy score must be a JSON object, got {doc!r}"
            )
        unknown = set(doc) - set(cls._REQUIRED) - set(cls._OPTIONAL)
        if unknown:
            raise ValidationError(f"unknown policy score fields: {sorted(unknown)}")
        missing = [k for k in cls._REQUIRED if k not in doc]
        if missing:
            raise ValidationError(f"missing policy score fields: {missing}")
        try:
            trap = doc.get("trap_score_percent")
            return cls(
                policy=str(doc["policy"]),
                family=str(doc["family"]),
                policy_fingerprint=str(doc["policy_fingerprint"]),
                cells=int(doc["cells"]),
                mean_imbalance_percent=float(doc["mean_imbalance_percent"]),
                mean_improvement_percent=float(doc["mean_improvement_percent"]),
                worst_regression_percent=float(doc["worst_regression_percent"]),
                trap_score_percent=None if trap is None else float(trap),
                total_times=tuple(float(t) for t in doc["total_times"]),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ValidationError):
                raise
            raise ValidationError(f"malformed policy score: {exc}") from exc


@dataclass(frozen=True)
class Leaderboard:
    """A finished tournament: config, corpus evidence, ranked scores.

    The canonical document (:meth:`to_doc`) is byte-stable — all physics
    numbers, no wall-clock — and :attr:`fingerprint` hashes it, so two
    runs of the same config must produce identical fingerprints.
    ``wall_seconds`` is carried for display only and excluded from the
    doc, equality and the fingerprint.
    """

    config: TournamentConfig
    scenario_fingerprints: Tuple[str, ...]
    #: Cell kinds, corpus order, so trap cells stay identifiable from
    #: the artifact alone.
    scenario_kinds: Tuple[str, ...]
    baseline_total_times: Tuple[float, ...]
    #: Ranked best-first by mean improvement (ties: policy name).
    scores: Tuple[PolicyScore, ...]
    wall_seconds: float = field(default=0.0, compare=False)

    def score_of(self, policy: str) -> PolicyScore:
        for score in self.scores:
            if score.policy == policy:
                return score
        raise ConfigurationError(f"no score for policy {policy!r}")

    def to_doc(self) -> dict:
        return {
            "format": LEADERBOARD_FORMAT,
            "version": LEADERBOARD_VERSION,
            "config": self.config.to_doc(),
            "scenario_fingerprints": list(self.scenario_fingerprints),
            "scenario_kinds": list(self.scenario_kinds),
            "baseline_total_times": list(self.baseline_total_times),
            "scores": [s.to_doc() for s in self.scores],
        }

    @classmethod
    def from_doc(cls, doc: object) -> "Leaderboard":
        if not isinstance(doc, dict):
            raise ValidationError(
                f"leaderboard must be a JSON object, got {doc!r}"
            )
        if doc.get("format") != LEADERBOARD_FORMAT:
            raise ValidationError(
                f"not a leaderboard document (format={doc.get('format')!r})"
            )
        if doc.get("version") != LEADERBOARD_VERSION:
            raise ValidationError(
                f"leaderboard version {doc.get('version')!r} unsupported "
                f"(this build reads version {LEADERBOARD_VERSION})"
            )
        known = {
            "format",
            "version",
            "config",
            "scenario_fingerprints",
            "scenario_kinds",
            "baseline_total_times",
            "scores",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValidationError(f"unknown leaderboard fields: {sorted(unknown)}")
        missing = [k for k in known if k not in doc]
        if missing:
            raise ValidationError(f"missing leaderboard fields: {sorted(missing)}")
        return cls(
            config=TournamentConfig.from_doc(doc["config"]),
            scenario_fingerprints=tuple(
                str(f) for f in doc["scenario_fingerprints"]
            ),
            scenario_kinds=tuple(str(k) for k in doc["scenario_kinds"]),
            baseline_total_times=tuple(
                float(t) for t in doc["baseline_total_times"]
            ),
            scores=tuple(PolicyScore.from_doc(s) for s in doc["scores"]),
        )

    @property
    def fingerprint(self) -> str:
        return fingerprint_doc(self.to_doc())

    # -- the on-disk artifact --------------------------------------------------

    def save(self, path: str) -> str:
        """Write the versioned artifact (doc + embedded fingerprint)."""
        doc = self.to_doc()
        doc["fingerprint"] = self.fingerprint
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "Leaderboard":
        """Read an artifact back, verifying its embedded fingerprint."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            raise PersistenceError(f"no leaderboard at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"unreadable leaderboard {path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise PersistenceError(f"{path} is not a leaderboard artifact")
        recorded = doc.pop("fingerprint", None)
        board = cls.from_doc(doc)
        if recorded != board.fingerprint:
            raise PersistenceError(
                f"{path}: embedded fingerprint {str(recorded)[:16]}... does "
                f"not match the content ({board.fingerprint[:16]}...); the "
                "artifact was edited after it was written"
            )
        return board

    def differential_evidence(self) -> Optional[str]:
        """Mapping-vs-priority evidence: best allocation row vs best
        priority row (static or dynamic, the ST reference excluded).

        Display-level only — derived from the scores, never part of the
        canonical doc or the fingerprint. ``None`` when the tournament
        did not field both families.
        """
        allocation = [s for s in self.scores if s.family == "allocation"]
        priority = [
            s
            for s in self.scores
            if s.family in ("static", "dynamic") and s.policy != "st"
        ]
        if not allocation or not priority:
            return None
        best_a = max(allocation, key=lambda s: s.mean_improvement_percent)
        best_p = max(priority, key=lambda s: s.mean_improvement_percent)
        delta = best_a.mean_improvement_percent - best_p.mean_improvement_percent
        axis = "mapping" if delta > 0 else "priority"
        return (
            f"mapping vs priority: best allocation {best_a.policy} "
            f"{best_a.mean_improvement_percent:+.2f}% vs best priority "
            f"{best_p.policy} {best_p.mean_improvement_percent:+.2f}% "
            f"(delta {delta:+.2f} pts; the {axis} axis wins this corpus)"
        )

    def render(self) -> str:
        """The leaderboard as a paper-style text table."""
        table = TextTable(
            ["#", "policy", "family", "impr %", "worst reg %", "imb %",
             "trap %", "cells"],
            title=(
                f"tournament {self.config.corpus} × {self.config.n_scenarios}"
                f" @ seed {self.config.seed} ({self.config.engine})"
            ),
        )
        for place, score in enumerate(self.scores, start=1):
            trap = (
                "-" if score.trap_score_percent is None
                else f"{score.trap_score_percent:+.2f}"
            )
            table.add_row([
                place,
                score.policy,
                score.family,
                f"{score.mean_improvement_percent:+.2f}",
                f"{score.worst_regression_percent:.2f}",
                f"{score.mean_imbalance_percent:.2f}",
                trap,
                score.cells,
            ])
        rendered = table.render()
        evidence = self.differential_evidence()
        if evidence is not None:
            rendered = f"{rendered}\n{evidence}"
        return rendered


_BTMZ_INIT_FACTOR = float(
    BtMzConfig.__dataclass_fields__["init_factor"].default
)


def planning_works(spec: ScenarioSpec) -> Tuple[float, ...]:
    """The per-rank *whole-run* work profile a static planner observes.

    The paper's procedure plans from whole-run compute profiles (the
    "Comp %" columns of an unbalanced reference run), not from one
    iteration's body. The distinction matters: BT-MZ's initialisation
    (``init_factor`` × the mean body work, equal across ranks) and
    SIESTA's init/final edges are *balanced* phases that dilute the
    body imbalance — a gap planned from body works alone penalises a
    rank through phases where it carries its fair share, which is how a
    static policy loses 2x on a short BT-MZ run.
    """
    body = tuple(w * spec.iterations for w in spec.works)
    if spec.kind == "btmz":
        factor = spec.param("init_factor")
        factor = _BTMZ_INIT_FACTOR if factor is None else float(factor)
        init = factor * sum(spec.works) / len(spec.works)
        return tuple(init + w for w in body)
    if spec.kind == "siesta":
        params = spec.params_dict()
        return tuple(
            i + w + f
            for i, w, f in zip(params["init_works"], body, params["final_works"])
        )
    return body


def apply_policy(
    policy: Policy, spec: ScenarioSpec
) -> Tuple[ScenarioSpec, Optional[dict]]:
    """One cell's execution plan: ``(spec to run, engine options)``.

    Static policies plan from the whole-run work profile
    (:func:`planning_works` — the observable the paper's procedure
    uses) and become static priorities on the spec. An all-MEDIUM plan
    returns the spec *unchanged* so the no-op baseline keeps the corpus
    spec's canonical bytes. Dynamic policies leave the spec alone and
    return a ``controllers`` factory for the engine. Allocation
    policies plan a :class:`~repro.machine.mapping.ProcessMapping` from
    the same whole-run profile and it becomes the spec's mapping —
    priorities stay untouched, so their rows isolate what placement
    alone buys; a plan in the incumbent's symmetry class (see
    ``docs/mapping.md``) returns the spec unchanged, exactly like the
    static no-op.
    """
    if isinstance(policy, StaticPolicy):
        assignment = policy.plan(planning_works(spec), spec.mapping_obj())
        if all(p == 4 for _, p in assignment.priorities):
            return spec, None
        return replace(spec, priorities=assignment.priorities), None
    if isinstance(policy, DynamicPolicy):
        return spec, {"controllers": lambda: [policy.controller()]}
    if isinstance(policy, AllocationPolicy):
        incumbent = spec.mapping_obj()
        planned = policy.plan_mapping(
            planning_works(spec), incumbent, profiles=spec.profile
        )
        if planned.canonical().rank_to_cpu == incumbent.canonical().rank_to_cpu:
            # Physics-equivalent to what the corpus drew: keep the
            # original spec object so the baseline-reuse fast path and
            # the canonical bytes survive.
            return spec, None
        return replace(spec, mapping=planned.rank_to_cpu), None
    if isinstance(policy, PlacementPolicy):
        if spec.topology is None:
            # Placement has no meaning on one chip: exact no-op, so a
            # placement policy in a single-chip tournament scores as the
            # baseline instead of perturbing recorded fingerprints.
            return spec, None
        incumbent = spec.mapping_obj()
        planned = policy.plan_placement(
            planning_works(spec),
            incumbent,
            n_nodes=spec.topology.n_nodes,
            cpus_per_node=spec.topology.cpus_per_node,
        )
        # Exact-CPU comparison on purpose: canonical() would repack
        # across node boundaries (see docs/cluster.md).
        if planned.rank_to_cpu == incumbent.rank_to_cpu:
            return spec, None
        return replace(spec, mapping=planned.rank_to_cpu), None
    raise ConfigurationError(
        f"policy {policy.name!r} belongs to no known family "
        "(static, dynamic, allocation or placement)"
    )


def _observe_policy(name: str, improvements: Sequence[float]) -> None:
    """Per-policy tournament telemetry into the default registry."""
    reg = default_registry()
    reg.counter(
        "repro_tournament_cells_total",
        "Scored tournament cells, by policy.",
        labelnames=("policy",),
    ).labels(name).inc(len(improvements))
    hist = reg.histogram(
        "repro_tournament_improvement_percent",
        "Per-cell total-time improvement vs the ST baseline, by policy.",
        labelnames=("policy",),
    ).labels(name)
    for value in improvements:
        hist.observe(value)


def _run_cells(
    engine: Engine,
    specs: List[ScenarioSpec],
    labels: List[str],
    options: Optional[dict],
    batch: bool,
) -> List[ExecutionResult]:
    if batch:
        return engine.run_batch(specs, labels=labels, options=options)
    return [
        engine.run(spec, label=label, options=options)
        for spec, label in zip(specs, labels)
    ]


def run_tournament(
    config: TournamentConfig,
    *,
    batch: bool = True,
    engine: Optional[Engine] = None,
) -> Leaderboard:
    """Score every (policy × scenario) cell and rank the zoo.

    ``batch`` picks the execution strategy only (``run_batch`` vs a
    scalar loop) — results and the leaderboard fingerprint are
    identical either way, which ``benchmarks/bench_tournament.py``
    asserts. ``engine`` overrides the registry lookup (benchmarks pass
    a cold engine; everything else resolves ``config.engine``).
    """
    t0 = time.perf_counter()
    policies = [get_policy(name) for name in config.policies]
    eng = engine if engine is not None else get_engine(config.engine)
    for policy in policies:
        if (
            isinstance(policy, DynamicPolicy)
            and "controllers" not in eng.option_names
        ):
            raise ConfigurationError(
                f"policy {policy.name!r} is dynamic but engine "
                f"{eng.name!r} has no controllers hook (use fluid)"
            )

    specs = tournament_corpus(config.corpus, config.n_scenarios, config.seed)

    # The ST baseline: the corpus exactly as drawn — no priority writes.
    baseline = _run_cells(
        eng,
        specs,
        [f"tournament.baseline.{s.name}" for s in specs],
        None,
        batch,
    )
    base_times = [r.total_time for r in baseline]
    if any(r.imbalance_percent is None for r in baseline):
        raise ConfigurationError(
            f"engine {eng.name!r} reports no imbalance metric; the "
            "tournament needs a trace-producing engine"
        )

    scores: List[PolicyScore] = []
    for policy in policies:
        cells = [apply_policy(policy, spec) for spec in specs]
        options = None
        for _, cell_options in cells:
            if cell_options is not None:
                options = cell_options
                break
        cell_specs = [spec for spec, _ in cells]
        if options is None and all(
            cell is original for cell, original in zip(cell_specs, specs)
        ):
            # The policy wrote nothing anywhere (the ST reference, or a
            # ladder that never triggered): its cells ARE the baseline.
            results = baseline
        else:
            results = _run_cells(
                eng,
                cell_specs,
                [f"tournament.{policy.name}.{s.name}" for s in cell_specs],
                options,
                batch,
            )
        times = [r.total_time for r in results]
        improvements = [
            (base - t) / base * 100.0 for base, t in zip(base_times, times)
        ]
        trap = [
            gain
            for gain, spec in zip(improvements, specs)
            if spec.kind == "siesta"
        ]
        scores.append(
            PolicyScore(
                policy=policy.name,
                family=policy.family,
                policy_fingerprint=policy.fingerprint,
                cells=len(specs),
                mean_imbalance_percent=(
                    sum(r.imbalance_percent for r in results) / len(results)
                ),
                mean_improvement_percent=sum(improvements) / len(improvements),
                worst_regression_percent=max(0.0, -min(improvements)),
                trap_score_percent=(sum(trap) / len(trap)) if trap else None,
                total_times=tuple(times),
            )
        )
        _observe_policy(policy.name, improvements)

    scores.sort(key=lambda s: (-s.mean_improvement_percent, s.policy))
    return Leaderboard(
        config=config,
        scenario_fingerprints=tuple(s.fingerprint for s in specs),
        scenario_kinds=tuple(s.kind for s in specs),
        baseline_total_times=tuple(base_times),
        scores=tuple(scores),
        wall_seconds=time.perf_counter() - t0,
    )
