"""The policy zoo: every balancing algorithm the tournament can score.

Static contenders (plan once from per-rank work, like the paper's hand
procedure) and dynamic ones (runtime controllers), all behind
:class:`~repro.core.Policy`:

``st``
    The unbalanced reference: no priority writes, every context at
    MEDIUM. At the priority level the paper's ST and case A coincide —
    this is the baseline every leaderboard improvement is measured
    against.
``paper-b`` / ``paper-c`` / ``paper-d``
    The paper's hand-tuned ladder generalised: when a core pair's work
    ratio reaches the case's trigger, the pair gets the case's exact
    priority shape — (5,6) for B, (4,6) for C, (3,6) for D (the
    MetBench table's assignments). The trigger grows with the gap
    (``gap_scale ** (gap - 0.5)``, the ratio at which the paper
    procedure's log rule rounds to that gap), encoding the paper's own
    lesson that a wide gap on a mild imbalance *reverses* it (MetBench
    case D). Below the trigger the pair stays at case A.
``propshare``
    The paper's full procedure as an algorithm: a graded gap
    proportional to the log of the pair's work ratio
    (:class:`~repro.core.StaticPriorityBalancer`), keeping the
    scenario's mapping (the tournament fixes the pairing; only
    priorities are the policy's to choose).
``lpt``
    Longest-processing-time heap greedy, after the EPLB pattern: keep
    core pairs in a max-heap keyed by projected finish time (work over
    the decode share ``2^gap / (2^gap + 1)``), pop the worst pair, move
    one priority step toward its heavier rank, keep the step only if
    the pair's projected finish strictly improved, re-push; freeze the
    pair otherwise. Converges to graded gaps up to 3 — it reaches the
    paper's D shape exactly when the imbalance is extreme enough to
    warrant it.
``hysteresis``
    The incumbent :class:`~repro.core.DynamicBalancer` behind the
    dynamic-policy protocol, behaviour unchanged: each run gets a fresh
    controller built from the same
    :class:`~repro.core.DynamicBalancerConfig`, whose canonical doc is
    the policy's fingerprint substrate.
``ilp-pair`` / ``ilp-spread`` / ``random-mapping``
    The **allocation family**: these choose the rank→core mapping and
    leave every priority at MEDIUM, so their leaderboard rows isolate
    what smart *placement* buys against smart *priorities* (the
    differential-evidence experiment the ROADMAP asks for). ``ilp-pair``
    pairs the highest decode-pressure rank with the lowest per core
    (:func:`~repro.core.paired_extremes_mapping` — the ILP-aware
    allocation rule, and the paper's own BT-MZ re-pairing when profiles
    are uniform); ``ilp-spread`` pairs like with like (the deliberate
    anti-pattern); ``random-mapping`` draws a seeded canonical mapping
    per cell (hash of the observations) — the control that separates
    "any re-pairing helps" from "this rule helps".
``locality-pack`` / ``bandwidth-spread`` / ``random-placement``
    The **placement family** for topology-bearing (v3) scenarios: they
    choose *which node* each rank lives on and leave priorities at
    MEDIUM. ``locality-pack`` co-locates each distant pair on one node
    (all exchanges become shared-memory); ``bandwidth-spread`` splits
    every pair across nodes (the contrast case); ``random-placement``
    draws a seeded canonical placement per cell — the lottery control.
    On single-chip cells all three are exact no-ops.

The registry maps names to zero-argument factories so ``repro
tournament`` and the scoring loop construct policies by name.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core import (
    AllocationPolicy,
    DynamicBalancer,
    DynamicBalancerConfig,
    DynamicPolicy,
    PlacementPolicy,
    PolicySpec,
    PriorityAssignment,
    StaticPolicy,
    StaticPriorityBalancer,
    candidate_mappings,
    candidate_placements,
    paired_adjacent_mapping,
    paired_extremes_mapping,
    placement_mapping,
    rank_pressures,
)
from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping
from repro.util.fingerprint import fingerprint_doc

__all__ = [
    "PaperCasePolicy",
    "ProportionalSharePolicy",
    "LptGreedyPolicy",
    "HysteresisPolicy",
    "IlpPairPolicy",
    "IlpSpreadPolicy",
    "RandomMappingPolicy",
    "LocalityPackPolicy",
    "BandwidthSpreadPolicy",
    "RandomPlacementPolicy",
    "register_policy",
    "get_policy",
    "policy_names",
    "all_policies",
    "DEFAULT_POLICIES",
    "ALLOCATION_POLICIES",
    "PLACEMENT_POLICIES",
]


def _full_pairs(mapping: ProcessMapping) -> List[Tuple[int, int]]:
    """Core pairs with both contexts mapped (singletons have no sibling
    to trade decode slots with, so no policy touches them)."""
    return [tuple(p) for p in mapping.core_pairs() if len(p) == 2]


class PaperCasePolicy(StaticPolicy):
    """One rung of the paper's ladder: a fixed per-pair priority shape.

    ``(base, base + gap)`` is installed on a pair exactly when the
    pair's work ratio reaches ``trigger_ratio``; otherwise the pair
    keeps the MEDIUM defaults (case A). All-or-nothing, like the hand
    assignments in the paper's tables.
    """

    def __init__(
        self,
        name: str,
        base_priority: int = 4,
        gap: int = 0,
        trigger_ratio: float = 1.25,
        description: str = "",
    ) -> None:
        if gap < 0 or not 1 <= base_priority <= 6 or base_priority + gap > 6:
            raise ConfigurationError(
                f"policy {name!r}: shape ({base_priority}, "
                f"{base_priority + gap}) leaves the OS range"
            )
        if trigger_ratio < 1.0:
            raise ConfigurationError(
                f"policy {name!r}: trigger_ratio must be >= 1, got {trigger_ratio}"
            )
        self.name = name
        self.base_priority = int(base_priority)
        self.gap = int(gap)
        self.trigger_ratio = float(trigger_ratio)
        self.description = description or (
            f"fixed pair shape ({base_priority}, {base_priority + gap}) "
            f"at work ratio >= {trigger_ratio:.2f}"
        )

    def spec(self) -> PolicySpec:
        return PolicySpec(
            name=self.name,
            family="static",
            params={
                "base_priority": self.base_priority,
                "gap": self.gap,
                "trigger_ratio": self.trigger_ratio,
            },
        )

    def plan(
        self, compute_seconds: Sequence[float], mapping: ProcessMapping
    ) -> PriorityAssignment:
        n = len(compute_seconds)
        if n != mapping.n_ranks:
            raise ConfigurationError(
                f"{n} observations for a {mapping.n_ranks}-rank mapping"
            )
        priorities: Dict[int, int] = {r: 4 for r in range(n)}
        if self.gap > 0:
            for a, b in _full_pairs(mapping):
                heavy, light = (
                    (a, b) if compute_seconds[a] >= compute_seconds[b] else (b, a)
                )
                wl = float(compute_seconds[light])
                wh = float(compute_seconds[heavy])
                ratio = float("inf") if wl <= 0 else wh / wl
                if ratio >= self.trigger_ratio:
                    priorities[light] = self.base_priority
                    priorities[heavy] = self.base_priority + self.gap
        return PriorityAssignment.build(mapping, priorities, label=self.name)


class ProportionalSharePolicy(StaticPolicy):
    """Graded gaps from per-rank load ratios (the paper procedure,
    mapping kept as given — the tournament's cells fix the pairing)."""

    name = "propshare"
    description = (
        "gap proportional to log(pair work ratio), bounded at 2 "
        "(the static planner with the scenario's own pairing)"
    )

    def __init__(
        self,
        base_priority: int = 4,
        max_gap: int = 2,
        balance_threshold: float = 0.8,
        gap_scale: float = 2.2,
    ) -> None:
        self._balancer = StaticPriorityBalancer(
            base_priority=base_priority,
            max_gap=max_gap,
            balance_threshold=balance_threshold,
            gap_scale=gap_scale,
            repair_mapping=False,
        )

    def spec(self) -> PolicySpec:
        b = self._balancer
        return PolicySpec(
            name=self.name,
            family="static",
            params={
                "base_priority": b.base_priority,
                "max_gap": b.max_gap,
                "balance_threshold": b.balance_threshold,
                "gap_scale": b.gap_scale,
            },
        )

    def plan(
        self, compute_seconds: Sequence[float], mapping: ProcessMapping
    ) -> PriorityAssignment:
        return self._balancer.plan(compute_seconds, mapping)


class LptGreedyPolicy(StaticPolicy):
    """Heap greedy over projected finish times (the EPLB/LPT idiom).

    Each core pair's projected finish is its slower rank's work over
    that rank's decode share at the current gap
    (``2^gap / (2^gap + 1)`` — the exponential decode law). A max-heap
    keyed by projected finish drives the greedy loop: always improve
    the currently-worst pair by one priority step toward its heavier
    rank, commit only strictly-improving steps, freeze the pair
    otherwise. Deterministic: heap ties break on pair index, rank ties
    on rank order.
    """

    name = "lpt"
    description = (
        "longest-processing-time heap greedy: one priority step at a "
        "time toward the worst pair's heavy rank while it helps"
    )

    def __init__(
        self,
        base_priority: int = 4,
        min_priority: int = 3,
        max_priority: int = 6,
        max_gap: int = 3,
    ) -> None:
        if not 1 <= min_priority <= base_priority <= max_priority <= 6:
            raise ConfigurationError(
                f"need 1 <= min({min_priority}) <= base({base_priority}) "
                f"<= max({max_priority}) <= 6"
            )
        if max_gap < 0 or max_gap > max_priority - min_priority:
            raise ConfigurationError(
                f"max_gap {max_gap} incompatible with priority bounds"
            )
        self.base_priority = int(base_priority)
        self.min_priority = int(min_priority)
        self.max_priority = int(max_priority)
        self.max_gap = int(max_gap)

    def spec(self) -> PolicySpec:
        return PolicySpec(
            name=self.name,
            family="static",
            params={
                "base_priority": self.base_priority,
                "min_priority": self.min_priority,
                "max_priority": self.max_priority,
                "max_gap": self.max_gap,
            },
        )

    @staticmethod
    def _share(gap: int) -> float:
        return 2.0**gap / (2.0**gap + 1.0)

    def plan(
        self, compute_seconds: Sequence[float], mapping: ProcessMapping
    ) -> PriorityAssignment:
        n = len(compute_seconds)
        if n != mapping.n_ranks:
            raise ConfigurationError(
                f"{n} observations for a {mapping.n_ranks}-rank mapping"
            )
        prios: Dict[int, int] = {r: self.base_priority for r in range(n)}
        pairs = _full_pairs(mapping)

        def finish(rank: int, sibling: int) -> float:
            return float(compute_seconds[rank]) / self._share(
                prios[rank] - prios[sibling]
            )

        def pair_finish(i: int) -> float:
            a, b = pairs[i]
            return max(finish(a, b), finish(b, a))

        heap = [(-pair_finish(i), i) for i in range(len(pairs))]
        heapq.heapify(heap)
        while heap:
            neg, i = heapq.heappop(heap)
            current = pair_finish(i)
            if -neg > current * (1.0 + 1e-12):
                # Stale entry from before another pair's update; re-key.
                heapq.heappush(heap, (-current, i))
                continue
            a, b = pairs[i]
            heavy, light = (a, b) if finish(a, b) >= finish(b, a) else (b, a)
            step = None
            if prios[heavy] - prios[light] < self.max_gap:
                if prios[heavy] < self.max_priority:
                    step = (heavy, prios[heavy] + 1)
                elif prios[light] > self.min_priority:
                    step = (light, prios[light] - 1)
            if step is not None:
                rank, value = step
                previous = prios[rank]
                prios[rank] = value
                improved = pair_finish(i)
                if improved < current * (1.0 - 1e-12):
                    heapq.heappush(heap, (-improved, i))
                    continue
                prios[rank] = previous
            # No improving step: the pair is done; drop it from the heap.
        return PriorityAssignment.build(mapping, prios, label=self.name)


class HysteresisPolicy(DynamicPolicy):
    """The incumbent :class:`~repro.core.DynamicBalancer`, retrofitted.

    Behaviour is unchanged: :meth:`controller` hands out a fresh
    ``DynamicBalancer(config)`` per run, exactly what callers built by
    hand before the protocol existed. The config's canonical doc is the
    policy's parameter set, so two differently-tuned hysteresis
    policies have different fingerprints.
    """

    name = "hysteresis"
    description = (
        "runtime feedback controller over window sync fractions "
        "(one priority step toward the bottleneck, with hysteresis)"
    )

    def __init__(self, config: DynamicBalancerConfig = None) -> None:
        self.config = config if config is not None else DynamicBalancerConfig()

    def spec(self) -> PolicySpec:
        return PolicySpec(
            name=self.name, family="dynamic", params=self.config.to_doc()
        )

    def controller(self) -> DynamicBalancer:
        return DynamicBalancer(self.config)


class IlpPairPolicy(AllocationPolicy):
    """Pair the most decode-hungry rank with the least, per core.

    The ILP-aware allocation rule from the related work, driven by
    :func:`~repro.core.rank_pressures` (observed work × the profile's
    decode appetite). With the uniform per-scenario profiles the corpora
    draw, it reduces to the paper's own BT-MZ move: heaviest with
    lightest, so the future priority boost (or the hardware's leftover
    decode slots) steals only from a rank with slack.
    """

    name = "ilp-pair"
    description = (
        "allocation: pair highest decode-pressure rank with lowest per "
        "core (ILP-aware placement; priorities stay MEDIUM)"
    )

    def spec(self) -> PolicySpec:
        return PolicySpec(name=self.name, family="allocation",
                          params={"rule": "extremes"})

    def plan_mapping(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        profiles=None,
    ) -> ProcessMapping:
        pressures = rank_pressures(compute_seconds, profiles or "hpc")
        return paired_extremes_mapping(pressures)


class IlpSpreadPolicy(AllocationPolicy):
    """Pair like with like — the deliberate anti-pattern.

    Adjacent ranks in pressure order share a core: two decode-hungry
    ranks fight for one core's slots while the light pair leaves theirs
    idle. Scored so the leaderboard shows the *spread* between the
    allocation rule and its inverse, not just "ilp-pair beats nothing".
    """

    name = "ilp-spread"
    description = (
        "allocation: pair similar decode-pressure ranks per core "
        "(the anti-pattern contrast to ilp-pair)"
    )

    def spec(self) -> PolicySpec:
        return PolicySpec(name=self.name, family="allocation",
                          params={"rule": "adjacent"})

    def plan_mapping(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        profiles=None,
    ) -> ProcessMapping:
        pressures = rank_pressures(compute_seconds, profiles or "hpc")
        return paired_adjacent_mapping(pressures)


class RandomMappingPolicy(AllocationPolicy):
    """The control: a seeded, observation-hashed canonical mapping.

    Deterministic — the choice is the sha256 of (seed, observations)
    modulo the canonical mapping classes for the rank count — but
    blind to which rank is heavy. If ``ilp-pair`` cannot beat this on a
    corpus, the pairing *rule* is doing nothing the re-pairing lottery
    would not.
    """

    name = "random-mapping"
    description = (
        "allocation control: seeded random canonical mapping per cell "
        "(blind re-pairing lottery)"
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def spec(self) -> PolicySpec:
        return PolicySpec(
            name=self.name, family="allocation", params={"seed": self.seed}
        )

    def plan_mapping(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        profiles=None,
    ) -> ProcessMapping:
        classes = candidate_mappings(mapping.n_ranks, n_cores=2)
        digest = fingerprint_doc(
            {"seed": self.seed, "works": [float(w) for w in compute_seconds]}
        )
        return classes[int(digest[:12], 16) % len(classes)]


def _distant_pairs(n_ranks: int) -> List[Tuple[int, int]]:
    """The cluster corpus's involutive pairing: rank ``r`` with
    ``r + n/2`` — the distant-neighbour pattern
    :func:`~repro.workloads.generators.distant_pairs_programs` runs."""
    half = n_ranks // 2
    return [(r, r + half) for r in range(half)]


class LocalityPackPolicy(PlacementPolicy):
    """Co-locate each distant pair on one node — the locality move.

    The cluster corpus's workload exchanges with the rank half the ring
    away, so the identity layout puts every partner on a *different*
    node and every exchange on the wire. This policy packs partner
    pairs together (``cpus_per_node // 2`` pairs per node, in pair
    order), turning all of that traffic into shared-memory transfers —
    the placement analogue of the paper's BT-MZ re-pairing.
    """

    name = "locality-pack"
    description = (
        "placement: co-locate each distant pair on one node "
        "(all exchanges become shared-memory)"
    )

    def spec(self) -> PolicySpec:
        return PolicySpec(name=self.name, family="placement",
                          params={"rule": "pack-pairs"})

    def plan_placement(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        n_nodes: int,
        cpus_per_node: int = 4,
    ) -> ProcessMapping:
        n = mapping.n_ranks
        pairs_per_node = cpus_per_node // 2
        if n % 2 or pairs_per_node < 1 or n > n_nodes * cpus_per_node:
            return mapping
        planned: Dict[int, int] = {}
        for i, (a, b) in enumerate(_distant_pairs(n)):
            node = i // pairs_per_node
            base = node * cpus_per_node + (i % pairs_per_node) * 2
            planned[a] = base
            planned[b] = base + 1
        return ProcessMapping.from_dict(planned)


class BandwidthSpreadPolicy(PlacementPolicy):
    """Split every distant pair across nodes — the contrast case.

    Each pair's endpoints land on different nodes in a round-robin, so
    every exchange crosses the network but the traffic is spread evenly
    over the links. Scored so the leaderboard shows the *gap* between
    locality and its inverse, not just "locality beats the draw".
    """

    name = "bandwidth-spread"
    description = (
        "placement: split each distant pair across nodes, round-robin "
        "(every exchange crosses the network, load spread)"
    )

    def spec(self) -> PolicySpec:
        return PolicySpec(name=self.name, family="placement",
                          params={"rule": "split-pairs"})

    def plan_placement(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        n_nodes: int,
        cpus_per_node: int = 4,
    ) -> ProcessMapping:
        n = mapping.n_ranks
        if n % 2 or n_nodes < 2 or n > n_nodes * cpus_per_node:
            return mapping
        next_cpu = [node * cpus_per_node for node in range(n_nodes)]

        def place(rank: int, node: int) -> bool:
            if next_cpu[node] >= (node + 1) * cpus_per_node:
                return False
            planned[rank] = next_cpu[node]
            next_cpu[node] += 1
            return True

        planned: Dict[int, int] = {}
        for i, (a, b) in enumerate(_distant_pairs(n)):
            node_a = i % n_nodes
            node_b = (node_a + 1) % n_nodes
            # Capacity fallback: first node with room, partner anywhere else.
            if not place(a, node_a):
                for node in range(n_nodes):
                    if place(a, node):
                        node_a = node
                        break
            if next_cpu[node_b] >= (node_b + 1) * cpus_per_node or node_b == node_a:
                for node in range(n_nodes):
                    if node != node_a and place(b, node):
                        break
                else:
                    return mapping  # nowhere to split: keep the incumbent
            else:
                place(b, node_b)
        return ProcessMapping.from_dict(planned)


class RandomPlacementPolicy(PlacementPolicy):
    """The control: a seeded, observation-hashed canonical placement.

    Deterministic — the sha256 of (seed, observations) modulo the
    canonical placement classes — but blind to who talks to whom. If
    ``locality-pack`` cannot beat this, co-location is doing nothing a
    node-assignment lottery would not.
    """

    name = "random-placement"
    description = (
        "placement control: seeded random canonical placement per cell "
        "(blind node-assignment lottery)"
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def spec(self) -> PolicySpec:
        return PolicySpec(
            name=self.name, family="placement", params={"seed": self.seed}
        )

    def plan_placement(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        n_nodes: int,
        cpus_per_node: int = 4,
    ) -> ProcessMapping:
        classes = candidate_placements(
            mapping.n_ranks, n_nodes, cpus_per_node
        )
        digest = fingerprint_doc(
            {"seed": self.seed, "works": [float(w) for w in compute_seconds]}
        )
        choice = classes[int(digest[:12], 16) % len(classes)]
        return placement_mapping(choice, cpus_per_node)


# -- the registry --------------------------------------------------------------

_LOCK = threading.Lock()
_FACTORIES: Dict[str, Callable[[], "StaticPolicy | DynamicPolicy"]] = {}


def register_policy(
    name: str, factory: Callable[[], object], replace: bool = False
) -> None:
    """Add a policy factory to the zoo under ``name``."""
    with _LOCK:
        if not replace and name in _FACTORIES:
            raise ConfigurationError(f"policy {name!r} is already registered")
        _FACTORIES[name] = factory


def get_policy(name: str):
    """A fresh policy instance by zoo name."""
    with _LOCK:
        factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown policy {name!r} (registered: {', '.join(policy_names())})"
        )
    policy = factory()
    if policy.name != name:
        raise ConfigurationError(
            f"policy registered as {name!r} calls itself {policy.name!r}"
        )
    return policy


def policy_names() -> Tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def all_policies():
    """Fresh instances of every registered policy, name-sorted."""
    return [get_policy(name) for name in policy_names()]


def _register_defaults() -> None:
    register_policy(
        "st",
        lambda: PaperCasePolicy(
            "st",
            gap=0,
            description=(
                "no priority writes: every context at MEDIUM "
                "(the paper's ST/case-A reference)"
            ),
        ),
    )
    # Triggers sit where the paper procedure's log rule first rounds to
    # the case's gap (gap_scale 2.2): a wide gap on a mild imbalance
    # reverses it — the documented MetBench case-D failure mode.
    register_policy(
        "paper-b", lambda: PaperCasePolicy("paper-b", 5, 1, 2.2**0.5)
    )
    register_policy(
        "paper-c", lambda: PaperCasePolicy("paper-c", 4, 2, 2.2**1.5)
    )
    register_policy(
        "paper-d", lambda: PaperCasePolicy("paper-d", 3, 3, 2.2**2.5)
    )
    register_policy("propshare", ProportionalSharePolicy)
    register_policy("lpt", LptGreedyPolicy)
    # The zoo's hysteresis entry observes on a fast cadence: the control
    # interval must sit well below a bottleneck episode (one SCF
    # iteration in the trap corpus, a few simulated seconds) or the
    # controller perpetually backs the *previous* iteration's bottleneck
    # — the same lag-ratio lesson as bench_ablation_dynamic.
    register_policy(
        "hysteresis",
        lambda: HysteresisPolicy(DynamicBalancerConfig(interval=0.25)),
    )
    register_policy("ilp-pair", IlpPairPolicy)
    register_policy("ilp-spread", IlpSpreadPolicy)
    register_policy("random-mapping", RandomMappingPolicy)
    register_policy("locality-pack", LocalityPackPolicy)
    register_policy("bandwidth-spread", BandwidthSpreadPolicy)
    register_policy("random-placement", RandomPlacementPolicy)


_register_defaults()

#: The tournament's default line-up: every priority built-in, ST
#: reference first. The allocation family is a separate axis
#: (``ALLOCATION_POLICIES``) so the incumbent default boards keep their
#: recorded fingerprints; the differential experiment runs the union.
DEFAULT_POLICIES = (
    "st",
    "paper-b",
    "paper-c",
    "paper-d",
    "propshare",
    "lpt",
    "hysteresis",
)

#: The thread-to-core allocation family: mapping planners that leave
#: every priority at MEDIUM (see ``repro.experiments.allocation`` for
#: the mapping-vs-priority differential experiment).
ALLOCATION_POLICIES = ("ilp-pair", "ilp-spread", "random-mapping")

#: The node-placement family: rank→node planners for topology-bearing
#: (v3) scenarios — locality vs spread vs the lottery control, scored
#: over the ``cluster`` corpus. Single-chip cells pass through them
#: unchanged, so adding these to a tournament never perturbs one.
PLACEMENT_POLICIES = ("locality-pack", "bandwidth-spread", "random-placement")
