"""The policy subsystem: a balancing-policy zoo judged by tournaments.

The paper hand-tuned one priority assignment per application; the
ROADMAP's answer is to treat the balancer as a *contender* — a typed,
fingerprintable :class:`~repro.core.Policy` — and judge the whole zoo
head-to-head over seeded scenario corpora:

* :mod:`repro.policies.zoo` — the built-in contenders (the paper's
  static ladder, the proportional-share planner, an EPLB-style LPT
  heap greedy, the hysteresis runtime controller, and the
  thread-to-core allocation family: ``ilp-pair``, ``ilp-spread``, the
  ``random-mapping`` control) and the name registry.
* :mod:`repro.policies.corpus` — deterministic scenario corpora,
  including the migrating-bottleneck SIESTA traps and the
  MetBench/BT-MZ ``metbtmz`` allocation-differential mix.
* :mod:`repro.policies.tournament` — the batch-powered runner and the
  typed, fingerprintable :class:`Leaderboard` artifact.

Layer position: above ``scenarios`` (it consumes specs and engines),
below ``oracle``/``cli`` (which golden-replay and render leaderboards).
"""

from repro.policies.corpus import CORPORA, tournament_corpus
from repro.policies.tournament import (
    LEADERBOARD_FORMAT,
    LEADERBOARD_VERSION,
    Leaderboard,
    PolicyScore,
    TournamentConfig,
    apply_policy,
    planning_works,
    run_tournament,
)
from repro.policies.zoo import (
    ALLOCATION_POLICIES,
    BandwidthSpreadPolicy,
    DEFAULT_POLICIES,
    HysteresisPolicy,
    IlpPairPolicy,
    IlpSpreadPolicy,
    LocalityPackPolicy,
    LptGreedyPolicy,
    PLACEMENT_POLICIES,
    PaperCasePolicy,
    ProportionalSharePolicy,
    RandomMappingPolicy,
    RandomPlacementPolicy,
    all_policies,
    get_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "CORPORA",
    "tournament_corpus",
    "LEADERBOARD_FORMAT",
    "LEADERBOARD_VERSION",
    "Leaderboard",
    "PolicyScore",
    "TournamentConfig",
    "apply_policy",
    "planning_works",
    "run_tournament",
    "ALLOCATION_POLICIES",
    "BandwidthSpreadPolicy",
    "DEFAULT_POLICIES",
    "HysteresisPolicy",
    "IlpPairPolicy",
    "IlpSpreadPolicy",
    "LocalityPackPolicy",
    "LptGreedyPolicy",
    "PLACEMENT_POLICIES",
    "PaperCasePolicy",
    "ProportionalSharePolicy",
    "RandomMappingPolicy",
    "RandomPlacementPolicy",
    "all_policies",
    "get_policy",
    "policy_names",
    "register_policy",
]
