"""Seeded scenario corpora the tournament scores policies over.

Three named corpora, all deterministic functions of ``(corpus, n,
seed)`` — the tournament fingerprints the corpus via the specs'
content addresses, so a corpus draw is part of the frozen replay
contract exactly like the fuzz generator's draw sequence:

``fuzz``
    :class:`~repro.scenarios.ScenarioGenerator` draws with their
    priorities stripped — the generator decorates ~70% of specs with
    random static priorities, but in a tournament the *policy* owns the
    priorities, so every cell starts from the MEDIUM defaults.
``siesta``
    Migrating-bottleneck traps: 4-rank SIESTA runs with moderately
    imbalanced mean works, strong per-iteration jitter and a high
    bottleneck-rotation probability. A static planner only sees the
    means, so it backs the *average* bottleneck — the paper's SIESTA
    lesson ("the process that computes the most is not the same across
    all the iterations") — while a runtime controller can chase it.
``mixed``
    The default: alternating trap and fuzz cells (trap first), so a
    leaderboard exercises both the steady imbalances static policies
    are built for and the migrating ones they are blind to.
``metbtmz``
    The allocation-differential corpus: alternating 4-rank MetBench
    and BT-MZ cells (MetBench first) with lognormal work imbalance and
    the identity mapping. Steady imbalances, no migrating bottleneck —
    the regime where *both* smart priorities and smart placement can
    win — so a tournament over it with priority and allocation
    policies side by side yields the mapping-vs-priority differential
    evidence (:meth:`repro.policies.tournament.Leaderboard.
    differential_evidence`).
``cluster``
    The distant-neighbour corpus: 8-rank ``distant_pairs`` cells on a
    2-node topology (spec v3), identity mapping — which puts every
    rank's exchange partner on the *other* node, so the drawn layout
    maximises network traffic. Lognormal compute imbalance plus
    multi-megabyte exchanges make both the placement axis (co-locate
    the pairs?) and the priority axis (feed the heavy ranks?) matter;
    the placement-policy family is scored here.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.errors import ConfigurationError
from repro.scenarios import ScenarioGenerator, ScenarioSpec
from repro.util.rng import RngStreams

__all__ = ["CORPORA", "tournament_corpus"]

#: Valid ``TournamentConfig.corpus`` values.
CORPORA = ("fuzz", "siesta", "mixed", "metbtmz", "cluster")

#: Named stream the trap corpus draws from (isolated from every other
#: randomness consumer, like the fuzz generator's "oracle.fuzz").
_TRAP_STREAM = "policies.corpus.siesta"

#: Named stream for the MetBench/BT-MZ allocation-differential corpus.
_METBTMZ_STREAM = "policies.corpus.metbtmz"

#: Named stream for the distant-neighbour cluster corpus.
_CLUSTER_STREAM = "policies.corpus.cluster"


def _fuzz_corpus(n: int, seed: int) -> List[ScenarioSpec]:
    generator = ScenarioGenerator(seed)
    return [replace(spec, priorities=()) for spec in generator.take(n)]


def _trap_corpus(n: int, seed: int) -> List[ScenarioSpec]:
    rng = RngStreams(seed).get(_TRAP_STREAM)
    specs: List[ScenarioSpec] = []
    for i in range(n):
        # Moderately imbalanced means: enough spread that static planners
        # commit to a priority shape, not so much that the mean bottleneck
        # dominates every iteration regardless of rotation. Iterations are
        # several seconds each (6e9 instructions at ~1 IPC) so a runtime
        # controller gets many observation windows per bottleneck episode.
        works = tuple(
            float(w) for w in rng.lognormal(mean=0.0, sigma=0.5, size=4) * 6.0e9
        )
        iterations = int(rng.integers(10, 15))
        jitter = float(rng.uniform(0.5, 0.7))
        rotate = float(rng.uniform(0.55, 0.85))
        workload_seed = int(rng.integers(0, 2**31 - 1))
        specs.append(
            ScenarioSpec(
                name=f"trap-{seed}-{i + 1}",
                kind="siesta",
                works=works,
                iterations=iterations,
                profile="dft",
                mapping="identity",
                seed=seed,
                params={
                    "init_works": tuple(0.6 * w for w in works),
                    "final_works": tuple(0.4 * w for w in works),
                    "jitter_sigma": jitter,
                    "rotate_prob": rotate,
                    "workload_seed": workload_seed,
                },
            )
        )
    return specs


def _metbtmz_corpus(n: int, seed: int) -> List[ScenarioSpec]:
    rng = RngStreams(seed).get(_METBTMZ_STREAM)
    specs: List[ScenarioSpec] = []
    for i in range(n):
        # Wider spread than the trap corpus (sigma 0.6): placement only
        # matters when the per-rank decode appetites differ enough that
        # pairing choices change who shares a core with whom. Every draw
        # happens every cell so the stream stays aligned whichever kind
        # the cell lands on.
        works = tuple(
            float(w) for w in rng.lognormal(mean=0.0, sigma=0.6, size=4) * 4.5e9
        )
        iterations = int(rng.integers(6, 12))
        init_factor = float(rng.uniform(2.0, 5.0))
        if i % 2 == 0:
            specs.append(
                ScenarioSpec(
                    name=f"metbtmz-{seed}-{i + 1}",
                    kind="metbench",
                    works=works,
                    iterations=iterations,
                    profile="hpc",
                    mapping="identity",
                    seed=seed,
                )
            )
        else:
            specs.append(
                ScenarioSpec(
                    name=f"metbtmz-{seed}-{i + 1}",
                    kind="btmz",
                    works=works,
                    iterations=iterations,
                    profile="cfd",
                    mapping="identity",
                    seed=seed,
                    params={"init_factor": init_factor},
                )
            )
    return specs


def _cluster_corpus(n: int, seed: int) -> List[ScenarioSpec]:
    rng = RngStreams(seed).get(_CLUSTER_STREAM)
    specs: List[ScenarioSpec] = []
    for i in range(n):
        # 8 ranks on 2 nodes; the identity mapping puts partner r+4 on
        # the other node, so the drawn layout pays the network for every
        # exchange — the extrinsic-imbalance trap a locality placement
        # escapes. Exchanges of several MB over the uniform network's
        # 250 MB/s make the crossing cost a visible fraction of the
        # ~1-3 s compute iterations without drowning the priority axis.
        works = tuple(
            float(w) for w in rng.lognormal(mean=0.0, sigma=0.5, size=8) * 2.5e9
        )
        iterations = int(rng.integers(4, 9))
        exchange_bytes = int(rng.integers(8_000_000, 32_000_000))
        specs.append(
            ScenarioSpec(
                name=f"cluster-{seed}-{i + 1}",
                kind="distant_pairs",
                works=works,
                iterations=iterations,
                profile="hpc",
                mapping="identity",
                seed=seed,
                params={"exchange_bytes": exchange_bytes},
                topology={"n_nodes": 2},
            )
        )
    return specs


def tournament_corpus(corpus: str, n: int, seed: int) -> List[ScenarioSpec]:
    """The ``n`` specs of the named corpus for ``seed``, in cell order."""
    if n <= 0:
        raise ConfigurationError(f"corpus size must be > 0, got {n}")
    if corpus == "fuzz":
        return _fuzz_corpus(n, seed)
    if corpus == "siesta":
        return _trap_corpus(n, seed)
    if corpus == "mixed":
        traps = _trap_corpus((n + 1) // 2, seed)
        fuzz = _fuzz_corpus(n // 2, seed)
        specs: List[ScenarioSpec] = []
        for i in range(n):
            specs.append(traps[i // 2] if i % 2 == 0 else fuzz[i // 2])
        return specs
    if corpus == "metbtmz":
        return _metbtmz_corpus(n, seed)
    if corpus == "cluster":
        return _cluster_corpus(n, seed)
    raise ConfigurationError(
        f"unknown corpus {corpus!r} (choose from {', '.join(CORPORA)})"
    )
