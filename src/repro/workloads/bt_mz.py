"""BT Multi-Zone (NAS NPB-MZ) structural model (paper VII-B).

BT-MZ partitions the mesh into *zones* whose sizes grow geometrically, so
that per-process work is skewed when zones are distributed naively. Each
iteration, every process computes over its zones, exchanges boundary data
with its neighbours asynchronously (``mpi_isend``/``mpi_irecv``) and then
``mpi_waitall``-s — it synchronises with *neighbours*, not globally.

The zone generator reproduces the geometric size law; a round-robin zone
assignment (zone *k* to process *k mod P*) then yields per-rank work
ratios of ``(1, r, r^2, r^3)`` for a 4x4 grid — at the default ratio the
~5.6x max/min skew of the paper's Table V. A greedy bin-packing
assignment is also provided (what a balanced distribution would do), used
by the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.mpi.process import RankApi, RankProgram
from repro.workloads.base import validate_works

__all__ = ["ZoneGrid", "BtMzConfig", "bt_mz_programs"]


@dataclass(frozen=True)
class ZoneGrid:
    """A grid of zones with geometrically increasing sizes.

    ``size(i, j) = base * ratio**i * ratio**j`` grid points for zone
    ``(i, j)``; class A of BT-MZ uses a 4x4 grid.
    """

    x_zones: int = 4
    y_zones: int = 4
    ratio: float = 1.78
    base_points: float = 4096.0

    def __post_init__(self) -> None:
        if self.x_zones <= 0 or self.y_zones <= 0:
            raise WorkloadError("zone grid dimensions must be > 0")
        if self.ratio < 1.0:
            raise WorkloadError(f"zone ratio must be >= 1, got {self.ratio}")
        if self.base_points <= 0:
            raise WorkloadError(f"base_points must be > 0, got {self.base_points}")

    @property
    def n_zones(self) -> int:
        return self.x_zones * self.y_zones

    def zone_size(self, i: int, j: int) -> float:
        """Grid points of zone (i, j)."""
        if not (0 <= i < self.x_zones and 0 <= j < self.y_zones):
            raise WorkloadError(f"zone ({i},{j}) outside {self.x_zones}x{self.y_zones}")
        return self.base_points * self.ratio**i * self.ratio**j

    def zone_sizes(self) -> List[float]:
        """All zone sizes in row-major zone order."""
        return [
            self.zone_size(i, j)
            for i in range(self.x_zones)
            for j in range(self.y_zones)
        ]

    @property
    def skew(self) -> float:
        """Largest/smallest zone size ratio."""
        sizes = self.zone_sizes()
        return max(sizes) / min(sizes)

    # -- zone-to-process assignment ----------------------------------------------

    def assign_round_robin(self, n_procs: int) -> List[List[int]]:
        """Zone k -> process k mod P (the naive assignment)."""
        if n_procs <= 0:
            raise WorkloadError(f"n_procs must be > 0, got {n_procs}")
        out: List[List[int]] = [[] for _ in range(n_procs)]
        for k in range(self.n_zones):
            out[k % n_procs].append(k)
        return out

    def assign_greedy(self, n_procs: int) -> List[List[int]]:
        """Largest-zone-first greedy bin packing (a balanced assignment)."""
        if n_procs <= 0:
            raise WorkloadError(f"n_procs must be > 0, got {n_procs}")
        sizes = self.zone_sizes()
        order = sorted(range(self.n_zones), key=lambda k: -sizes[k])
        loads = [0.0] * n_procs
        out: List[List[int]] = [[] for _ in range(n_procs)]
        for k in order:
            p = min(range(n_procs), key=loads.__getitem__)
            out[p].append(k)
            loads[p] += sizes[k]
        for zones in out:
            zones.sort()
        return out

    def rank_works(
        self,
        n_procs: int,
        instructions_per_point: float = 1.0,
        assignment: str = "round_robin",
    ) -> List[float]:
        """Per-rank instructions per iteration under an assignment."""
        if assignment == "round_robin":
            assigned = self.assign_round_robin(n_procs)
        elif assignment == "greedy":
            assigned = self.assign_greedy(n_procs)
        else:
            raise WorkloadError(f"unknown assignment {assignment!r}")
        sizes = self.zone_sizes()
        return [
            instructions_per_point * sum(sizes[k] for k in zones)
            for zones in assigned
        ]


@dataclass(frozen=True)
class BtMzConfig:
    """One BT-MZ run.

    ``works`` are per-rank instructions per iteration; derive them from a
    :class:`ZoneGrid` or supply them directly (the experiments calibrate
    them against the paper's Table V compute percentages).
    """

    works: Sequence[float]
    iterations: int = 200
    profile: str = "hpc"
    #: Boundary-exchange message size per neighbour per iteration.
    exchange_bytes: int = 40960
    #: Initialisation work as a multiple of one iteration's mean work.
    init_factor: float = 4.0

    def __post_init__(self) -> None:
        validate_works(self.works)
        if self.iterations <= 0:
            raise WorkloadError(f"iterations must be > 0, got {self.iterations}")
        if self.exchange_bytes < 0:
            raise WorkloadError(f"exchange_bytes must be >= 0, got {self.exchange_bytes}")
        if self.init_factor < 0:
            raise WorkloadError(f"init_factor must be >= 0, got {self.init_factor}")

    @property
    def n_ranks(self) -> int:
        return len(self.works)

    def neighbours(self, rank: int) -> List[int]:
        """Boundary-exchange partners: the ring neighbours (zone borders
        wrap in BT-MZ's doubly-periodic mesh)."""
        n = self.n_ranks
        if n == 1:
            return []
        if n == 2:
            return [1 - rank]
        return [(rank - 1) % n, (rank + 1) % n]


def _bt_mz_program(cfg: BtMzConfig, rank: int) -> RankProgram:
    work = float(cfg.works[rank])
    mean_work = sum(cfg.works) / len(cfg.works)
    init_work = cfg.init_factor * mean_work
    neighbours = cfg.neighbours(rank)

    def program(mpi: RankApi):
        # Initialisation phase (white bars in Figure 3) ending in a barrier.
        if init_work > 0:
            yield mpi.init_phase(init_work, profile=cfg.profile)
        yield mpi.barrier()
        for it in range(cfg.iterations):
            if work > 0:
                yield mpi.compute(work, profile=cfg.profile)
            requests = []
            for nb in neighbours:
                r = yield mpi.irecv(source=nb, tag=it)
                requests.append(r)
            for nb in neighbours:
                r = yield mpi.isend(dest=nb, tag=it, nbytes=cfg.exchange_bytes)
                requests.append(r)
            yield mpi.waitall(requests)
        yield mpi.barrier()

    return program


def bt_mz_programs(
    works: Optional[Sequence[float]] = None,
    iterations: int = 200,
    config: Optional[BtMzConfig] = None,
    **kwargs,
) -> List[RankProgram]:
    """Rank programs for a BT-MZ run (from works or a full config)."""
    if config is None:
        if works is None:
            raise WorkloadError("bt_mz_programs needs works or a config")
        config = BtMzConfig(works=works, iterations=iterations, **kwargs)
    return [_bt_mz_program(config, r) for r in range(config.n_ranks)]
