"""The other NAS multi-zone benchmarks: SP-MZ and LU-MZ.

The paper evaluates BT-MZ because its geometrically-sized zones make it
*imbalanced*. Its siblings in NPB-MZ are the natural control group:

* **SP-MZ** — all zones equal size: per-rank work is balanced by
  construction, so priority balancing has nothing to win and gap-boosting
  anything only hurts (the control experiment for the paper's claim that
  misused priorities worsen imbalance).
* **LU-MZ** — a fixed 4x4 grid of equal zones, but a heavier per-point
  kernel with tighter communication (the SSOR wavefront exchanges more
  often): balanced compute, higher communication sensitivity.

Both reuse the BT-MZ program structure (compute + asynchronous neighbour
exchange + waitall per iteration) with their own zone laws.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.mpi.process import RankProgram
from repro.workloads.bt_mz import BtMzConfig, ZoneGrid, bt_mz_programs

__all__ = ["sp_mz_zone_grid", "lu_mz_zone_grid", "sp_mz_programs", "lu_mz_programs"]


def sp_mz_zone_grid(x_zones: int = 4, y_zones: int = 4, base_points: float = 4096.0) -> ZoneGrid:
    """SP-MZ's zone law: a grid of *equal* zones (ratio 1)."""
    return ZoneGrid(x_zones=x_zones, y_zones=y_zones, ratio=1.0, base_points=base_points)


def lu_mz_zone_grid(base_points: float = 8192.0) -> ZoneGrid:
    """LU-MZ's zone law: always 4x4 equal zones (the benchmark fixes 16)."""
    return ZoneGrid(x_zones=4, y_zones=4, ratio=1.0, base_points=base_points)


def sp_mz_programs(
    n_ranks: int = 4,
    iterations: int = 100,
    instructions_per_point: float = 1.5e4,
    profile: str = "cfd",
    exchange_bytes: int = 40960,
    init_factor: float = 1.0,
) -> List[RankProgram]:
    """Rank programs for an SP-MZ-like run (balanced by construction)."""
    if n_ranks <= 0:
        raise WorkloadError(f"n_ranks must be > 0, got {n_ranks}")
    grid = sp_mz_zone_grid()
    works = grid.rank_works(n_ranks, instructions_per_point)
    cfg = BtMzConfig(
        works=works,
        iterations=iterations,
        profile=profile,
        exchange_bytes=exchange_bytes,
        init_factor=init_factor,
    )
    return bt_mz_programs(config=cfg)


def lu_mz_programs(
    n_ranks: int = 4,
    iterations: int = 100,
    instructions_per_point: float = 2.5e4,
    profile: str = "cfd",
    exchange_bytes: int = 16384,
    exchanges_per_iteration: int = 4,
    init_factor: float = 1.0,
) -> List[RankProgram]:
    """Rank programs for an LU-MZ-like run.

    LU's SSOR sweep synchronises more often: each iteration performs
    ``exchanges_per_iteration`` smaller neighbour exchanges, modelled by
    splitting the iteration into that many compute+exchange sub-steps.
    """
    if n_ranks <= 0:
        raise WorkloadError(f"n_ranks must be > 0, got {n_ranks}")
    if exchanges_per_iteration <= 0:
        raise WorkloadError(
            f"exchanges_per_iteration must be > 0, got {exchanges_per_iteration}"
        )
    grid = lu_mz_zone_grid()
    works = grid.rank_works(n_ranks, instructions_per_point)
    # Sub-step decomposition: same total work/communication per iteration,
    # more synchronisation points.
    sub_works = [w / exchanges_per_iteration for w in works]
    cfg = BtMzConfig(
        works=sub_works,
        iterations=iterations * exchanges_per_iteration,
        profile=profile,
        exchange_bytes=exchange_bytes,
        init_factor=init_factor * exchanges_per_iteration,
    )
    return bt_mz_programs(config=cfg)
