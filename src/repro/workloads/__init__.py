"""The paper's workloads, rebuilt as simulated MPI applications.

* :mod:`repro.workloads.metbench` — MetBench, the BSC micro-benchmark
  (master/worker, strict barrier synchronisation, per-worker loads).
* :mod:`repro.workloads.bt_mz` — the NAS BT Multi-Zone benchmark's
  structure: geometric zone-size skew, per-iteration neighbour exchange
  with ``isend/irecv/waitall``.
* :mod:`repro.workloads.siesta` — SIESTA's phase structure: imbalanced
  init, self-consistent-field iterations whose bottleneck migrates
  between ranks, imbalanced finalisation.
* :mod:`repro.workloads.generators` — synthetic imbalance patterns for
  examples, tests and Figure 1.
"""

from repro.workloads.base import WorkVector, works_for_targets, scale_works
from repro.workloads.loads import MetBenchLoad, METBENCH_LOADS, get_load
from repro.workloads.metbench import MetBenchConfig, metbench_programs
from repro.workloads.bt_mz import BtMzConfig, ZoneGrid, bt_mz_programs
from repro.workloads.nas_mz import (
    sp_mz_programs,
    lu_mz_programs,
    sp_mz_zone_grid,
    lu_mz_zone_grid,
)
from repro.workloads.siesta import SiestaConfig, siesta_programs
from repro.workloads.master_worker import (
    static_master_worker_programs,
    dynamic_master_worker_programs,
)
from repro.workloads.generators import (
    one_heavy_works,
    linear_ramp_works,
    random_works,
    barrier_loop_programs,
)

__all__ = [
    "WorkVector",
    "works_for_targets",
    "scale_works",
    "MetBenchLoad",
    "METBENCH_LOADS",
    "get_load",
    "MetBenchConfig",
    "metbench_programs",
    "BtMzConfig",
    "ZoneGrid",
    "bt_mz_programs",
    "sp_mz_programs",
    "lu_mz_programs",
    "sp_mz_zone_grid",
    "lu_mz_zone_grid",
    "SiestaConfig",
    "siesta_programs",
    "static_master_worker_programs",
    "dynamic_master_worker_programs",
    "one_heavy_works",
    "linear_ramp_works",
    "random_works",
    "barrier_loop_programs",
]
