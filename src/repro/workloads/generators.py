"""Synthetic imbalance generators for examples, tests and Figure 1."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.mpi.process import RankApi, RankProgram
from repro.workloads.base import WorkVector, validate_works

__all__ = [
    "one_heavy_works",
    "linear_ramp_works",
    "random_works",
    "barrier_loop_programs",
    "distant_pairs_programs",
]


def one_heavy_works(
    n_ranks: int, base: float, heavy_factor: float, heavy_rank: int = 0
) -> WorkVector:
    """All ranks get ``base`` work except one with ``base*heavy_factor``.

    The paper's Figure 1 scenario: a single straggler holds everyone up.
    """
    if n_ranks <= 0:
        raise WorkloadError(f"n_ranks must be > 0, got {n_ranks}")
    if not 0 <= heavy_rank < n_ranks:
        raise WorkloadError(f"heavy_rank {heavy_rank} out of range")
    if base <= 0 or heavy_factor <= 0:
        raise WorkloadError("base and heavy_factor must be > 0")
    works = [base] * n_ranks
    works[heavy_rank] = base * heavy_factor
    return validate_works(works)


def linear_ramp_works(n_ranks: int, base: float, slope: float) -> WorkVector:
    """Rank r gets ``base * (1 + slope*r)`` work — a domain-skew pattern."""
    if n_ranks <= 0:
        raise WorkloadError(f"n_ranks must be > 0, got {n_ranks}")
    if base <= 0:
        raise WorkloadError(f"base must be > 0, got {base}")
    if slope < 0:
        raise WorkloadError(f"slope must be >= 0, got {slope}")
    return validate_works([base * (1.0 + slope * r) for r in range(n_ranks)])


def random_works(
    n_ranks: int, base: float, sigma: float, rng: np.random.Generator
) -> WorkVector:
    """Lognormal per-rank work around ``base`` — a sparse-input pattern."""
    if n_ranks <= 0:
        raise WorkloadError(f"n_ranks must be > 0, got {n_ranks}")
    if base <= 0 or sigma < 0:
        raise WorkloadError("base must be > 0 and sigma >= 0")
    draws = rng.lognormal(-0.5 * sigma**2, sigma, n_ranks)
    return validate_works([base * float(d) for d in draws])


def barrier_loop_programs(
    works: Sequence[float],
    iterations: int = 5,
    profile: str = "hpc",
) -> List[RankProgram]:
    """The simplest SPMD shape: compute your share, barrier, repeat.

    The workhorse of the examples and of Figure 1's synthetic trace.
    """
    works = validate_works(works)
    if iterations <= 0:
        raise WorkloadError(f"iterations must be > 0, got {iterations}")

    def make(rank_work: float) -> RankProgram:
        def program(mpi: RankApi):
            for _ in range(iterations):
                if rank_work > 0:
                    yield mpi.compute(rank_work, profile=profile)
                yield mpi.barrier()

        return program

    return [make(w) for w in works]


def distant_pairs_programs(
    works: Sequence[float],
    iterations: int = 5,
    profile: str = "hpc",
    exchange_bytes: int = 65536,
) -> List[RankProgram]:
    """Compute + a pairwise exchange with the rank half the ring away.

    Rank ``r`` exchanges ``exchange_bytes`` with partner
    ``(r + n/2) % n`` every iteration (the pairing is involutive, so
    each sendrecv has a matching peer), then synchronises on a barrier.
    On one chip every partner is a core or sibling away; on a cluster
    the *placement* decides whether partners talk over shared memory or
    the network — which is exactly the extrinsic-imbalance axis the
    cluster corpus probes. Needs an even rank count.
    """
    works = validate_works(works)
    n = len(works)
    if n % 2:
        raise WorkloadError(f"distant_pairs needs an even rank count, got {n}")
    if iterations <= 0:
        raise WorkloadError(f"iterations must be > 0, got {iterations}")
    if exchange_bytes < 0:
        raise WorkloadError(
            f"exchange_bytes must be >= 0, got {exchange_bytes}"
        )

    def make(rank: int, rank_work: float) -> RankProgram:
        partner = (rank + n // 2) % n

        def program(mpi: RankApi):
            for _ in range(iterations):
                if rank_work > 0:
                    yield mpi.compute(rank_work, profile=profile)
                yield mpi.sendrecv(
                    partner, rank, exchange_bytes, partner, partner
                )
                yield mpi.barrier()

        return program

    return [make(r, w) for r, w in enumerate(works)]
