"""SIESTA's phase structure as a simulated MPI application (paper VII-C).

SIESTA (ab-initio materials simulation) is the paper's "real application":

* an *initialisation* phase (11.99 % of the reference run) that is itself
  imbalanced, ending in a barrier;
* a body of self-consistent-field iterations in which "each iteration is
  not necessarily similar to the previous or the next one. In particular,
  the process that computes the most is not the same across all the
  iterations" — per-iteration work varies and the bottleneck migrates;
* a *finalisation* phase (13.41 %) after a last barrier.

The model draws per-iteration work vectors around per-rank means with
lognormal jitter, and occasionally swaps the heaviest rank's work with
another rank's to migrate the bottleneck. All randomness is generated at
configuration time from a seed, so the resulting rank programs are pure
data and every run of the same config is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.mpi.process import RankApi, RankProgram
from repro.util.rng import RngStreams
from repro.workloads.base import validate_works

__all__ = ["SiestaConfig", "siesta_programs", "draw_iteration_works"]


def draw_iteration_works(
    mean_works: Sequence[float],
    n_iterations: int,
    jitter_sigma: float,
    rotate_prob: float,
    rng: np.random.Generator,
) -> List[List[float]]:
    """Per-iteration work vectors with jitter and bottleneck migration.

    Row *i* is the work vector of iteration *i*; row means track
    ``mean_works`` (lognormal jitter is mean-one), and with probability
    ``rotate_prob`` an iteration's heaviest entry trades places with a
    uniformly chosen other rank — the bottleneck migration the paper
    describes for SIESTA.
    """
    means = np.asarray(validate_works(mean_works), dtype=float)
    if n_iterations <= 0:
        raise WorkloadError(f"n_iterations must be > 0, got {n_iterations}")
    if jitter_sigma < 0:
        raise WorkloadError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
    if not 0.0 <= rotate_prob <= 1.0:
        raise WorkloadError(f"rotate_prob must be in [0,1], got {rotate_prob}")
    n_ranks = means.size
    out: List[List[float]] = []
    for _ in range(n_iterations):
        if jitter_sigma > 0:
            # Mean-one lognormal: exp(N(-s^2/2, s)).
            jitter = rng.lognormal(-0.5 * jitter_sigma**2, jitter_sigma, n_ranks)
        else:
            jitter = np.ones(n_ranks)
        works = means * jitter
        if n_ranks > 1 and rng.random() < rotate_prob:
            heavy = int(np.argmax(works))
            other = int(rng.integers(0, n_ranks - 1))
            if other >= heavy:
                other += 1
            works[heavy], works[other] = works[other], works[heavy]
        out.append([float(w) for w in works])
    return out


@dataclass(frozen=True)
class SiestaConfig:
    """One SIESTA run.

    ``mean_works`` are per-rank mean instructions per SCF iteration;
    ``init_works``/``final_works`` the per-rank instructions of the two
    edge phases. The experiments calibrate all three against the paper's
    Table VI phase shares.
    """

    mean_works: Sequence[float]
    init_works: Sequence[float]
    final_works: Sequence[float]
    n_iterations: int = 40
    profile: str = "dft"
    jitter_sigma: float = 0.30
    rotate_prob: float = 0.35
    #: Convergence-check payload of the per-iteration allreduce.
    allreduce_bytes: int = 64
    seed: int = 2008

    def __post_init__(self) -> None:
        validate_works(self.mean_works)
        validate_works(self.init_works)
        validate_works(self.final_works)
        n = len(self.mean_works)
        if len(self.init_works) != n or len(self.final_works) != n:
            raise WorkloadError(
                "mean_works/init_works/final_works must have equal length"
            )
        if self.n_iterations <= 0:
            raise WorkloadError(f"n_iterations must be > 0, got {self.n_iterations}")
        if self.allreduce_bytes < 0:
            raise WorkloadError(f"allreduce_bytes must be >= 0, got {self.allreduce_bytes}")

    @property
    def n_ranks(self) -> int:
        return len(self.mean_works)

    def iteration_works(self) -> List[List[float]]:
        """The (deterministic) per-iteration work table for this config."""
        rng = RngStreams(self.seed).get("siesta.iterations")
        return draw_iteration_works(
            self.mean_works,
            self.n_iterations,
            self.jitter_sigma,
            self.rotate_prob,
            rng,
        )


def _siesta_program(
    cfg: SiestaConfig, rank: int, iteration_works: List[List[float]]
) -> RankProgram:
    init_work = float(cfg.init_works[rank])
    final_work = float(cfg.final_works[rank])
    my_works = [row[rank] for row in iteration_works]

    def program(mpi: RankApi):
        if init_work > 0:
            yield mpi.init_phase(init_work, profile=cfg.profile)
        yield mpi.barrier()
        for work in my_works:
            if work > 0:
                yield mpi.compute(work, profile=cfg.profile)
            yield mpi.allreduce(cfg.allreduce_bytes)
        yield mpi.barrier()
        if final_work > 0:
            yield mpi.final_phase(final_work, profile=cfg.profile)

    return program


def siesta_programs(
    config: SiestaConfig,
) -> List[RankProgram]:
    """Rank programs for a SIESTA run (work table drawn once, shared)."""
    table = config.iteration_works()
    return [_siesta_program(config, r, table) for r in range(config.n_ranks)]
