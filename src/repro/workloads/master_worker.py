"""Master-worker (master-slave) workloads.

The paper lists the "master-slave architecture" among the *intrinsic*
imbalance causes (section II-A). Two variants are provided:

* :func:`static_master_worker_programs` — the master deals every worker
  its whole share up front; uneven task costs then produce exactly the
  imbalance the paper's mechanism targets.
* :func:`dynamic_master_worker_programs` — workers pull chunks on demand
  (the classic *software* self-balancing alternative to hardware
  priorities): fast workers simply fetch more chunks, at the price of a
  request/response round-trip per chunk and a serialised master.

Comparing the two against priority balancing is the related-work
triangle: data re-distribution vs. computational-power re-distribution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.mpi.datatypes import ANY_SOURCE
from repro.mpi.process import RankApi, RankProgram
from repro.workloads.base import validate_works

__all__ = [
    "static_master_worker_programs",
    "dynamic_master_worker_programs",
]

#: Message tags of the pull protocol.
_TAG_REQUEST = 1
_TAG_WORK = 2
_TAG_STOP = 3


def static_master_worker_programs(
    worker_works: Sequence[float],
    profile: str = "hpc",
    task_bytes: int = 4096,
) -> List[RankProgram]:
    """Rank 0 distributes fixed shares; workers compute them and report.

    ``worker_works[i]`` is worker *i+1*'s total instructions. The master
    only coordinates (like MetBench's framework).
    """
    works = validate_works(worker_works)

    def master(mpi: RankApi):
        for w in range(len(works)):
            yield mpi.send(dest=w + 1, tag=_TAG_WORK, nbytes=task_bytes)
        for _ in range(len(works)):
            yield mpi.recv(source=ANY_SOURCE, tag=_TAG_STOP)

    def make_worker(index: int) -> RankProgram:
        def worker(mpi: RankApi):
            yield mpi.recv(source=0, tag=_TAG_WORK)
            yield mpi.compute(works[index], profile=profile)
            yield mpi.send(dest=0, tag=_TAG_STOP, nbytes=8)

        return worker

    return [master] + [make_worker(i) for i in range(len(works))]


def dynamic_master_worker_programs(
    total_work: float,
    n_workers: int,
    chunk_work: float,
    profile: str = "hpc",
    task_bytes: int = 4096,
) -> List[RankProgram]:
    """On-demand chunking: workers request, the master deals, stop at end.

    The task pool holds ``ceil(total_work / chunk_work)`` equal chunks
    (total work rounds up to a whole number of chunks). Workers that run
    on favoured (or quiet) contexts naturally process more chunks —
    software load balancing.
    """
    if total_work <= 0:
        raise WorkloadError(f"total_work must be > 0, got {total_work}")
    if n_workers <= 0:
        raise WorkloadError(f"n_workers must be > 0, got {n_workers}")
    if chunk_work <= 0:
        raise WorkloadError(f"chunk_work must be > 0, got {chunk_work}")

    n_chunks = max(1, -(-int(total_work) // int(max(1, chunk_work))))

    def master(mpi: RankApi):
        remaining = n_chunks
        active = n_workers
        while active:
            status = yield mpi.recv(source=ANY_SOURCE, tag=_TAG_REQUEST)
            if remaining:
                remaining -= 1
                yield mpi.send(dest=status.source, tag=_TAG_WORK, nbytes=task_bytes)
            else:
                yield mpi.send(dest=status.source, tag=_TAG_STOP, nbytes=8)
                active -= 1

    def make_worker() -> RankProgram:
        def worker(mpi: RankApi):
            while True:
                yield mpi.send(dest=0, tag=_TAG_REQUEST, nbytes=8)
                status = yield mpi.recv(source=0)
                if status.tag == _TAG_STOP:
                    return
                yield mpi.compute(chunk_work, profile=profile)

        return worker

    return [master] + [make_worker() for _ in range(n_workers)]
