"""MetBench loads: one per stressed processor resource.

Paper section VII-A: *"we developed several loads, each one stressing a
different processor resource (the Floating Point Unit, the L2 cache, the
branch predictor, etc) for a given amount of time."* Each load pairs a
:class:`~repro.smt.instructions.LoadProfile` with a human description;
the MetBench framework runs whichever load a worker is assigned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import WorkloadError
from repro.smt.instructions import BASE_PROFILES, LoadProfile

__all__ = ["MetBenchLoad", "METBENCH_LOADS", "get_load"]


@dataclass(frozen=True)
class MetBenchLoad:
    """One MetBench load kernel."""

    name: str
    profile: LoadProfile
    description: str

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("MetBenchLoad needs a name")


METBENCH_LOADS: Dict[str, MetBenchLoad] = {
    "cpu_fpu": MetBenchLoad(
        "cpu_fpu", BASE_PROFILES["fpu"], "dense floating-point kernel (FPU stress)"
    ),
    "cache_l2": MetBenchLoad(
        "cache_l2", BASE_PROFILES["l2"], "working set resident in L2 (L1-miss stress)"
    ),
    "mem_stream": MetBenchLoad(
        "mem_stream", BASE_PROFILES["mem"], "streaming footprint (memory stress)"
    ),
    "branch_mix": MetBenchLoad(
        "branch_mix", BASE_PROFILES["branch"], "hard-to-predict branches (BXU stress)"
    ),
    "cpu_int": MetBenchLoad(
        "cpu_int", BASE_PROFILES["int"], "integer ALU kernel (FXU stress)"
    ),
    "hpc_mix": MetBenchLoad(
        "hpc_mix",
        BASE_PROFILES["hpc"],
        "balanced HPC kernel mix (the default MetBench load)",
    ),
}


def get_load(name: str) -> MetBenchLoad:
    """Look up a MetBench load by name."""
    try:
        return METBENCH_LOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown MetBench load {name!r}; available: {sorted(METBENCH_LOADS)}"
        ) from None
