"""MetBench — the BSC Minimum Execution Time Benchmark (paper VII-A).

Structure, per the paper: a *framework* of one master and several
workers. Workers execute their assigned load, then synchronise; the
master only coordinates ("the master and the workers only exchange data
during the initialization phase and use an ``mpi_barrier()`` to get
synchronized") and starts the next iteration. Imbalance is introduced by
assigning one worker a larger load than the worker sharing its core.

Two variants are provided:

* the 4-rank layout of the paper's Table IV (the master's negligible
  coordination work folded into rank 0, which is also the light worker —
  matching the table where P1 both computes a little and waits a lot);
* the explicit master variant (``explicit_master=True``) with a 5th,
  compute-free master rank, matching the Figure 2 traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.mpi.process import RankApi, RankProgram
from repro.workloads.base import validate_works

__all__ = ["MetBenchConfig", "metbench_programs"]


@dataclass(frozen=True)
class MetBenchConfig:
    """One MetBench run.

    Attributes
    ----------
    works:
        Per-worker instructions per iteration.
    iterations:
        Barrier-synchronised iterations ("the number of iterations to
        perform is a run time parameter").
    load:
        MetBench load (profile name) every worker runs; per-worker loads
        may be given instead via ``worker_loads``.
    init_bytes:
        Data the master distributes during initialisation.
    explicit_master:
        Add a compute-free master rank 0 (Figure 2 layout).
    """

    works: Sequence[float]
    iterations: int = 10
    load: str = "hpc"
    worker_loads: Optional[Sequence[str]] = None
    init_bytes: int = 1 << 20
    #: Small statistics bookkeeping after each computation phase (the
    #: black bars in Figure 2), as a fraction of the mean work.
    stats_fraction: float = 0.005
    explicit_master: bool = False

    def __post_init__(self) -> None:
        validate_works(self.works)
        if self.iterations <= 0:
            raise WorkloadError(f"iterations must be > 0, got {self.iterations}")
        if self.worker_loads is not None and len(self.worker_loads) != len(self.works):
            raise WorkloadError(
                "worker_loads must match works length "
                f"({len(self.worker_loads)} vs {len(self.works)})"
            )
        if not 0.0 <= self.stats_fraction <= 0.5:
            raise WorkloadError(f"stats_fraction out of range: {self.stats_fraction}")

    @property
    def n_ranks(self) -> int:
        return len(self.works) + (1 if self.explicit_master else 0)

    def load_of_worker(self, worker: int) -> str:
        if self.worker_loads is not None:
            return self.worker_loads[worker]
        return self.load


def _worker_program(cfg: MetBenchConfig, worker_index: int) -> RankProgram:
    work = float(cfg.works[worker_index])
    load = cfg.load_of_worker(worker_index)
    mean_work = sum(cfg.works) / len(cfg.works)
    stats_work = cfg.stats_fraction * mean_work

    def program(mpi: RankApi):
        # Initialisation: receive the work description from the master
        # (rank 0 in both variants).
        if mpi.rank != 0:
            yield mpi.recv(source=0, tag=0)
        else:
            for peer in range(1, mpi.size):
                yield mpi.send(dest=peer, tag=0, nbytes=cfg.init_bytes)
        yield mpi.barrier()
        for _ in range(cfg.iterations):
            if work > 0:
                yield mpi.compute(work, profile=load)
            if stats_work > 0:
                yield mpi.compute(stats_work, profile="int")
            yield mpi.barrier()

    return program


def _master_program(cfg: MetBenchConfig) -> RankProgram:
    def program(mpi: RankApi):
        for peer in range(1, mpi.size):
            yield mpi.send(dest=peer, tag=0, nbytes=cfg.init_bytes)
        yield mpi.barrier()
        for _ in range(cfg.iterations):
            # The master performs only bookkeeping between barriers.
            yield mpi.compute(1e6, profile="int")
            yield mpi.barrier()

    return program


def metbench_programs(
    works: Optional[Sequence[float]] = None,
    iterations: int = 10,
    load: str = "hpc",
    config: Optional[MetBenchConfig] = None,
    **kwargs,
) -> List[RankProgram]:
    """Build the rank programs for a MetBench run.

    Either pass a full :class:`MetBenchConfig` or the common parameters.
    """
    if config is None:
        if works is None:
            raise WorkloadError("metbench_programs needs works or a config")
        config = MetBenchConfig(works=works, iterations=iterations, load=load, **kwargs)
    programs: List[RankProgram] = []
    if config.explicit_master:
        programs.append(_master_program(config))
        worker_offset = 1
    else:
        worker_offset = 0
    del worker_offset
    for w in range(len(config.works)):
        programs.append(_worker_program(config, w))
    return programs
