"""Shared workload plumbing: work vectors and calibration helpers.

A *work vector* is the per-rank amount of work (in instructions) of one
iteration or phase. The paper characterises its applications by each
rank's computing percentage in the balanced reference run; the helpers
here translate such targets into work vectors given a throughput
estimate, so experiments can match the paper's compute-time *shape*
without hand-tuned magic numbers.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import WorkloadError

__all__ = ["WorkVector", "works_for_targets", "scale_works", "validate_works"]

WorkVector = List[float]


def validate_works(works: Sequence[float]) -> List[float]:
    """Check a work vector: non-empty, all finite and non-negative."""
    if not list(works):
        raise WorkloadError("empty work vector")
    out = []
    for i, w in enumerate(works):
        w = float(w)
        if not w >= 0.0:  # also catches NaN
            raise WorkloadError(f"work[{i}] must be >= 0, got {w}")
        out.append(w)
    if sum(out) == 0.0:
        raise WorkloadError("work vector is all zeros")
    return out


def works_for_targets(
    compute_fractions: Sequence[float],
    total_seconds: float,
    rate_instructions_per_second,
) -> WorkVector:
    """Per-rank work so rank *r* computes for ``compute_fractions[r] *
    total_seconds`` at the given throughput.

    This is how the experiment definitions translate the paper's
    "Comp %" columns into simulator inputs: the rank that computes 99 %
    of an 81.64 s run at ~3.6 G instructions/s needs ~2.9e11 instructions.
    ``rate_instructions_per_second`` may be a scalar or one rate per rank
    (ranks whose core sibling mostly spins run at a different operating
    point than ranks whose sibling computes).
    """
    if total_seconds <= 0:
        raise WorkloadError(f"total_seconds must be > 0, got {total_seconds}")
    n = len(compute_fractions)
    if isinstance(rate_instructions_per_second, (int, float)):
        rates = [float(rate_instructions_per_second)] * n
    else:
        rates = [float(r) for r in rate_instructions_per_second]
        if len(rates) != n:
            raise WorkloadError(
                f"need one rate per rank: got {len(rates)} for {n} ranks"
            )
    for i, (f, rate) in enumerate(zip(compute_fractions, rates)):
        if not 0.0 <= f <= 1.0:
            raise WorkloadError(f"compute_fractions[{i}] must be in [0,1], got {f}")
        if rate <= 0:
            raise WorkloadError(f"rate[{i}] must be > 0, got {rate}")
    return validate_works(
        [f * total_seconds * rate for f, rate in zip(compute_fractions, rates)]
    )


def scale_works(works: Sequence[float], factor: float) -> WorkVector:
    """Multiply every entry by ``factor`` (e.g. per-iteration split)."""
    if factor <= 0:
        raise WorkloadError(f"scale factor must be > 0, got {factor}")
    return [float(w) * factor for w in validate_works(works)]
