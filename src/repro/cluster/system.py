"""ClusterSystem: the multi-node counterpart of :class:`repro.machine.system.System`.

Builds a :class:`~repro.cluster.machine.ClusterMachine`, one kernel image
spanning all nodes (each node runs the same patched/standard kernel; the
scheduler pins by global CPU), and derives per-rank-pair communication
costs from the node placement and the network model: intra-node pairs use
shared-memory parameters, inter-node pairs the topology's latency and
bandwidth (and a network-appropriate rendezvous threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.cluster.machine import ClusterConfig, ClusterMachine
from repro.cluster.topology import NetworkModel, UniformNetwork, network_from_doc
from repro.errors import ConfigurationError, ValidationError
from repro.kernel.hmt import HmtController
from repro.kernel.kernel import make_kernel
from repro.kernel.scheduler import PinnedScheduler
from repro.machine.mapping import ProcessMapping
from repro.mpi.p2p import CommCosts
from repro.mpi.process import RankProgram
from repro.mpi.runtime import MpiRuntime, RunResult, RuntimeConfig
from repro.smt.analytic import AnalyticModelConfig, AnalyticThroughputModel
from repro.smt.instructions import LoadProfile
from repro.util.fingerprint import fingerprint_doc

__all__ = ["ClusterSystemConfig", "ClusterSystem"]

_SYSTEM_FIELDS = ("cluster", "network", "kernel", "network_eager_threshold")


@dataclass(frozen=True)
class ClusterSystemConfig:
    """Everything configurable about the simulated cluster."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    network: NetworkModel = field(default_factory=UniformNetwork)
    kernel: str = "patched"
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    analytic: AnalyticModelConfig = field(default_factory=AnalyticModelConfig)
    #: Eager/rendezvous switch for inter-node messages (network transports
    #: buffer less than shared memory).
    network_eager_threshold: int = 16384

    def __post_init__(self) -> None:
        if self.kernel not in ("standard", "patched"):
            raise ConfigurationError(
                f"kernel must be standard|patched, got {self.kernel!r}"
            )
        if self.network_eager_threshold < 0:
            raise ConfigurationError("network_eager_threshold must be >= 0")

    # -- wire format -----------------------------------------------------------
    #
    # The runtime/analytic model parameters are process-level tuning, not
    # identity (single-chip ``SystemConfig`` has no wire format either);
    # the document captures the machine-shape fields that distinguish one
    # cluster from another, so a cluster run can be fingerprinted/cached.

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe document (round-trips through :meth:`from_doc`)."""
        return {
            "cluster": self.cluster.to_doc(),
            "network": self.network.to_doc(),
            "kernel": self.kernel,
            "network_eager_threshold": self.network_eager_threshold,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ClusterSystemConfig":
        """Strict inverse of :meth:`to_doc` — unknown fields are rejected."""
        if not isinstance(doc, Mapping):
            raise ValidationError(
                f"cluster system document must be a mapping, "
                f"got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(_SYSTEM_FIELDS))
        if unknown:
            raise ValidationError(f"unknown cluster system fields: {unknown}")
        kernel = doc.get("kernel", "patched")
        if not isinstance(kernel, str):
            raise ValidationError(
                f"cluster system field 'kernel' must be a string, "
                f"got {type(kernel).__name__}"
            )
        eager = doc.get("network_eager_threshold", 16384)
        if isinstance(eager, bool) or not isinstance(eager, int):
            raise ValidationError(
                "cluster system field 'network_eager_threshold' must be an "
                f"int, got {type(eager).__name__}"
            )
        cluster = (
            ClusterConfig.from_doc(doc["cluster"])
            if "cluster" in doc
            else ClusterConfig()
        )
        network = (
            network_from_doc(doc["network"])
            if "network" in doc
            else UniformNetwork()
        )
        try:
            return cls(
                cluster=cluster,
                network=network,
                kernel=kernel,
                network_eager_threshold=eager,
            )
        except ConfigurationError as exc:
            raise ValidationError(f"invalid cluster system document: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """Canonical content hash of :meth:`to_doc`."""
        return fingerprint_doc(self.to_doc())


class ClusterSystem:
    """Factory/runner for multi-node machines."""

    def __init__(self, config: Optional[ClusterSystemConfig] = None) -> None:
        self.config = config or ClusterSystemConfig()
        self.model = AnalyticThroughputModel(self.config.analytic)

    def build_machine(self):
        machine = ClusterMachine(self.config.cluster)
        hmt = HmtController(machine)
        scheduler = PinnedScheduler(machine.config.n_cpus)
        kernel = make_kernel(self.config.kernel, hmt, scheduler)
        return machine, hmt, scheduler, kernel

    def _pair_costs(self, machine: ClusterMachine, mapping: ProcessMapping):
        """Resolve rank-pair transfer parameters from node placement."""
        base = self.config.runtime.comm_costs
        network = self.config.network
        rank_node = {
            rank: machine.node_of_cpu(cpu) for rank, cpu in mapping.as_dict().items()
        }

        def costs(src: int, dst: int) -> CommCosts:
            a, b = rank_node[src], rank_node[dst]
            if a == b:
                return base
            return CommCosts(
                latency=base.latency + network.latency(a, b),
                bandwidth=min(base.bandwidth, network.bandwidth(a, b)),
                eager_threshold=self.config.network_eager_threshold,
                call_overhead=base.call_overhead,
            )

        return costs

    def run(
        self,
        programs: Sequence[RankProgram],
        mapping: Optional[ProcessMapping] = None,
        priorities: Optional[Mapping[int, int]] = None,
        profiles: Optional[Mapping[str, LoadProfile]] = None,
        label: str = "",
        controllers: Optional[Sequence] = None,
    ) -> RunResult:
        """Run one experiment on the cluster.

        ``mapping`` maps ranks to *global* CPUs (node k owns CPUs
        ``4k..4k+3`` for default chips); defaults to packing ranks onto
        nodes in order.
        """
        mapping = mapping or ProcessMapping.identity(len(programs))
        if mapping.n_ranks != len(programs):
            raise ConfigurationError(
                f"mapping covers {mapping.n_ranks} ranks but "
                f"{len(programs)} programs given"
            )
        machine, hmt, scheduler, kernel = self.build_machine()

        on_start = None
        if priorities:
            wanted = dict(priorities)

            def on_start(runtime: MpiRuntime) -> None:
                for pid, prio in sorted(wanted.items()):
                    if kernel.has_hmt_procfs:
                        kernel.procfs.set_priority_of_pid(pid, prio, time=0.0)
                    else:
                        from repro.kernel.hmt import Actor

                        hmt.try_set_priority(
                            scheduler.cpu_of(pid), prio, Actor.USER, time=0.0
                        )

        runtime = MpiRuntime(
            chip=machine,
            kernel=kernel,
            hmt=hmt,
            model=self.model,
            programs=programs,
            mapping=mapping.as_dict(),
            profiles=profiles,
            config=self.config.runtime,
            label=label,
            on_start=on_start,
            controllers=controllers,
            pair_costs=self._pair_costs(machine, mapping),
        )
        return runtime.run()
