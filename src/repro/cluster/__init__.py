"""Multi-node machines: several POWER5 chips behind a network model.

The paper runs on one OpenPower 710 but motivates everything with
MareNostrum (10 240 CPUs): imbalance wastes a *cluster*. This subpackage
scales the simulation to many nodes:

* :mod:`repro.cluster.topology` — network models (uniform, two-level
  switch tree), providing per-node-pair latency/bandwidth. Distant
  neighbours are one of the paper's extrinsic imbalance causes.
* :mod:`repro.cluster.machine` — :class:`ClusterMachine`, a multi-chip
  machine exposing the single-chip interface on global CPU ids (the MPI
  runtime and kernel layers work unchanged), with per-chip core groups so
  shared-cache coupling stays within a chip.
* :mod:`repro.cluster.system` — :class:`ClusterSystem`, the multi-node
  counterpart of :class:`repro.machine.system.System`: intra-node
  messages use shared-memory costs, inter-node messages the topology's.
* :mod:`repro.cluster.spec` — :class:`TopologySpec`, the frozen,
  strictly-serialisable cluster shape a v3
  :class:`~repro.scenarios.ScenarioSpec` may carry.
"""

from repro.cluster.topology import (
    NETWORK_KINDS,
    NetworkModel,
    TwoLevelTree,
    UniformNetwork,
    network_from_doc,
)
from repro.cluster.machine import ClusterMachine, ClusterConfig
from repro.cluster.system import ClusterSystem, ClusterSystemConfig
from repro.cluster.spec import TopologySpec

__all__ = [
    "NETWORK_KINDS",
    "NetworkModel",
    "UniformNetwork",
    "TwoLevelTree",
    "network_from_doc",
    "ClusterMachine",
    "ClusterConfig",
    "ClusterSystem",
    "ClusterSystemConfig",
    "TopologySpec",
]
