"""Cluster network models.

Section II-B (extrinsic imbalance, "network topology"): *"if the job
scheduler has placed processes that need to communicate 'far away', their
communication latency could increase so much that the whole application
will be affected."* These models supply per-node-pair latency and
bandwidth; rank-pair communication costs are derived from them by
:class:`~repro.cluster.system.ClusterSystem`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

__all__ = ["NetworkModel", "UniformNetwork", "TwoLevelTree"]


class NetworkModel(ABC):
    """Per-node-pair transfer parameters."""

    @abstractmethod
    def latency(self, node_a: int, node_b: int) -> float:
        """One-way latency in seconds between two nodes (0 for a == b)."""

    @abstractmethod
    def bandwidth(self, node_a: int, node_b: int) -> float:
        """Link bandwidth in bytes/second between two nodes."""

    def check_node(self, node: int) -> None:
        if node < 0:
            raise ConfigurationError(f"node index must be >= 0, got {node}")


@dataclass(frozen=True)
class UniformNetwork(NetworkModel):
    """Every node pair has the same parameters (a flat switch).

    Myrinet-class defaults, roughly MareNostrum's interconnect era.
    """

    inter_latency: float = 6.0e-6
    inter_bandwidth: float = 250e6

    def __post_init__(self) -> None:
        check_non_negative("inter_latency", self.inter_latency)
        check_positive("inter_bandwidth", self.inter_bandwidth)

    def latency(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        return 0.0 if node_a == node_b else self.inter_latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        return float("inf") if node_a == node_b else self.inter_bandwidth


@dataclass(frozen=True)
class TwoLevelTree(NetworkModel):
    """Nodes grouped under leaf switches; crossing the spine costs more.

    Nodes ``k*nodes_per_switch .. (k+1)*nodes_per_switch - 1`` share leaf
    switch ``k``. Same-switch pairs pay ``near_latency``; pairs in
    different sub-trees pay ``far_latency`` and the (lower) spine
    bandwidth — the "far away in the network" scenario.
    """

    nodes_per_switch: int = 4
    near_latency: float = 6.0e-6
    far_latency: float = 18.0e-6
    near_bandwidth: float = 250e6
    far_bandwidth: float = 120e6

    def __post_init__(self) -> None:
        check_positive("nodes_per_switch", self.nodes_per_switch)
        check_non_negative("near_latency", self.near_latency)
        check_non_negative("far_latency", self.far_latency)
        check_positive("near_bandwidth", self.near_bandwidth)
        check_positive("far_bandwidth", self.far_bandwidth)
        if self.far_latency < self.near_latency:
            raise ConfigurationError("far_latency must be >= near_latency")

    def switch_of(self, node: int) -> int:
        self.check_node(node)
        return node // self.nodes_per_switch

    def latency(self, node_a: int, node_b: int) -> float:
        if node_a == node_b:
            return 0.0
        if self.switch_of(node_a) == self.switch_of(node_b):
            return self.near_latency
        return self.far_latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        if node_a == node_b:
            return float("inf")
        if self.switch_of(node_a) == self.switch_of(node_b):
            return self.near_bandwidth
        return self.far_bandwidth
