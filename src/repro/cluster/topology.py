"""Cluster network models.

Section II-B (extrinsic imbalance, "network topology"): *"if the job
scheduler has placed processes that need to communicate 'far away', their
communication latency could increase so much that the whole application
will be affected."* These models supply per-node-pair latency and
bandwidth; rank-pair communication costs are derived from them by
:class:`~repro.cluster.system.ClusterSystem`.

Every concrete model carries a ``kind`` discriminator and serialises
through strict ``to_doc``/``from_doc`` (unknown fields rejected, like
:meth:`repro.scenarios.ScenarioSpec.from_doc`), so topologies can be
fingerprinted, cached, and embedded in scenario documents.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Mapping, Tuple, Type

from repro.errors import ConfigurationError, ValidationError
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "NETWORK_KINDS",
    "NetworkModel",
    "UniformNetwork",
    "TwoLevelTree",
    "network_from_doc",
]

#: Registered network-model discriminators (doc ``kind`` values).
NETWORK_KINDS = ("uniform", "two-level-tree")


def _check_doc_fields(
    kind: str, doc: Mapping[str, Any], allowed: Tuple[str, ...]
) -> None:
    """Reject non-mapping docs and unknown fields (strict wire format)."""
    if not isinstance(doc, Mapping):
        raise ValidationError(
            f"{kind} network document must be a mapping, got {type(doc).__name__}"
        )
    unknown = sorted(set(doc) - set(allowed) - {"kind"})
    if unknown:
        raise ValidationError(f"unknown {kind} network fields: {unknown}")


def _doc_number(kind: str, doc: Mapping[str, Any], field: str, default: Any) -> Any:
    value = doc.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{kind} network field {field!r} must be a number, "
            f"got {type(value).__name__}"
        )
    return value


class NetworkModel(ABC):
    """Per-node-pair transfer parameters."""

    #: Wire-format discriminator; one of :data:`NETWORK_KINDS`.
    kind: ClassVar[str] = ""

    @abstractmethod
    def latency(self, node_a: int, node_b: int) -> float:
        """One-way latency in seconds between two nodes (0 for a == b)."""

    @abstractmethod
    def bandwidth(self, node_a: int, node_b: int) -> float:
        """Link bandwidth in bytes/second between two nodes."""

    @abstractmethod
    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe document (round-trips through :func:`network_from_doc`)."""

    @property
    def fingerprint(self) -> str:
        """Canonical content hash of :meth:`to_doc`."""
        return fingerprint_doc(self.to_doc())

    def check_node(self, node: int) -> None:
        if node < 0:
            raise ConfigurationError(f"node index must be >= 0, got {node}")


@dataclass(frozen=True)
class UniformNetwork(NetworkModel):
    """Every node pair has the same parameters (a flat switch).

    Myrinet-class defaults, roughly MareNostrum's interconnect era.
    """

    kind: ClassVar[str] = "uniform"

    inter_latency: float = 6.0e-6
    inter_bandwidth: float = 250e6

    def __post_init__(self) -> None:
        check_non_negative("inter_latency", self.inter_latency)
        check_positive("inter_bandwidth", self.inter_bandwidth)

    def latency(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        return 0.0 if node_a == node_b else self.inter_latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        return float("inf") if node_a == node_b else self.inter_bandwidth

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "inter_latency": self.inter_latency,
            "inter_bandwidth": self.inter_bandwidth,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "UniformNetwork":
        _check_doc_fields(cls.kind, doc, ("inter_latency", "inter_bandwidth"))
        try:
            return cls(
                inter_latency=float(
                    _doc_number(cls.kind, doc, "inter_latency", cls.inter_latency)
                ),
                inter_bandwidth=float(
                    _doc_number(cls.kind, doc, "inter_bandwidth", cls.inter_bandwidth)
                ),
            )
        except ConfigurationError as exc:
            raise ValidationError(f"invalid uniform network document: {exc}") from exc


@dataclass(frozen=True)
class TwoLevelTree(NetworkModel):
    """Nodes grouped under leaf switches; crossing the spine costs more.

    Nodes ``k*nodes_per_switch .. (k+1)*nodes_per_switch - 1`` share leaf
    switch ``k``. Same-switch pairs pay ``near_latency``; pairs in
    different sub-trees pay ``far_latency`` and the (lower) spine
    bandwidth — the "far away in the network" scenario.
    """

    kind: ClassVar[str] = "two-level-tree"

    nodes_per_switch: int = 4
    near_latency: float = 6.0e-6
    far_latency: float = 18.0e-6
    near_bandwidth: float = 250e6
    far_bandwidth: float = 120e6

    def __post_init__(self) -> None:
        check_positive("nodes_per_switch", self.nodes_per_switch)
        check_non_negative("near_latency", self.near_latency)
        check_non_negative("far_latency", self.far_latency)
        check_positive("near_bandwidth", self.near_bandwidth)
        check_positive("far_bandwidth", self.far_bandwidth)
        if self.far_latency < self.near_latency:
            raise ConfigurationError("far_latency must be >= near_latency")

    def switch_of(self, node: int) -> int:
        self.check_node(node)
        return node // self.nodes_per_switch

    def latency(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        if node_a == node_b:
            return 0.0
        if self.switch_of(node_a) == self.switch_of(node_b):
            return self.near_latency
        return self.far_latency

    def bandwidth(self, node_a: int, node_b: int) -> float:
        self.check_node(node_a)
        self.check_node(node_b)
        if node_a == node_b:
            return float("inf")
        if self.switch_of(node_a) == self.switch_of(node_b):
            return self.near_bandwidth
        return self.far_bandwidth

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "nodes_per_switch": self.nodes_per_switch,
            "near_latency": self.near_latency,
            "far_latency": self.far_latency,
            "near_bandwidth": self.near_bandwidth,
            "far_bandwidth": self.far_bandwidth,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "TwoLevelTree":
        _check_doc_fields(
            cls.kind,
            doc,
            (
                "nodes_per_switch",
                "near_latency",
                "far_latency",
                "near_bandwidth",
                "far_bandwidth",
            ),
        )
        nodes_per_switch = doc.get("nodes_per_switch", cls.nodes_per_switch)
        if isinstance(nodes_per_switch, bool) or not isinstance(nodes_per_switch, int):
            raise ValidationError(
                "two-level-tree field 'nodes_per_switch' must be an int, "
                f"got {type(nodes_per_switch).__name__}"
            )
        try:
            return cls(
                nodes_per_switch=nodes_per_switch,
                near_latency=float(
                    _doc_number(cls.kind, doc, "near_latency", cls.near_latency)
                ),
                far_latency=float(
                    _doc_number(cls.kind, doc, "far_latency", cls.far_latency)
                ),
                near_bandwidth=float(
                    _doc_number(cls.kind, doc, "near_bandwidth", cls.near_bandwidth)
                ),
                far_bandwidth=float(
                    _doc_number(cls.kind, doc, "far_bandwidth", cls.far_bandwidth)
                ),
            )
        except ConfigurationError as exc:
            raise ValidationError(
                f"invalid two-level-tree network document: {exc}"
            ) from exc


_NETWORK_TYPES: Dict[str, Type[NetworkModel]] = {
    UniformNetwork.kind: UniformNetwork,
    TwoLevelTree.kind: TwoLevelTree,
}


def network_from_doc(doc: Mapping[str, Any]) -> NetworkModel:
    """Rebuild a network model from its document (``kind``-dispatched)."""
    if not isinstance(doc, Mapping):
        raise ValidationError(
            f"network document must be a mapping, got {type(doc).__name__}"
        )
    kind = doc.get("kind")
    if kind not in _NETWORK_TYPES:
        raise ValidationError(
            f"unknown network kind {kind!r}; expected one of {NETWORK_KINDS}"
        )
    return _NETWORK_TYPES[kind].from_doc(doc)
