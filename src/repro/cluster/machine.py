"""ClusterMachine: several POWER5 chips behind one chip-like interface.

Global logical CPU ids run ``0 .. 4*n_nodes - 1``: node ``k`` owns CPUs
``4k .. 4k+3`` (with the default 2-core/2-thread chips). The facade
implements everything :class:`~repro.mpi.runtime.MpiRuntime`,
:class:`~repro.kernel.hmt.HmtController` and the kernel models use on a
single chip — ``cores`` (flattened), ``set_load``/``set_priority``/
``priority`` by global CPU, ``config.n_cpus`` — plus ``core_groups``,
which the runtime uses to keep the throughput model's shared-cache
coupling within each chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, ValidationError
from repro.smt.chip import ChipConfig, Power5Chip
from repro.smt.core import SmtCore
from repro.smt.instructions import LoadProfile
from repro.smt.priorities import HardwarePriority
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_positive

__all__ = ["ClusterConfig", "ClusterMachine"]

_CHIP_FIELDS = ("n_cores", "threads_per_core", "freq_hz")
_CLUSTER_FIELDS = ("n_nodes", "chip")


@dataclass(frozen=True)
class ClusterConfig:
    """A cluster of identical nodes."""

    n_nodes: int = 2
    chip: ChipConfig = field(default_factory=ChipConfig)

    def __post_init__(self) -> None:
        check_positive("n_nodes", self.n_nodes)

    @property
    def n_cpus(self) -> int:
        return self.n_nodes * self.chip.n_cpus

    @property
    def cpus_per_node(self) -> int:
        return self.chip.n_cpus

    #: The runtime only reads n_cpus and freq_hz from ``machine.config``.
    @property
    def freq_hz(self) -> float:
        return self.chip.freq_hz

    # -- wire format -----------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe document (round-trips through :meth:`from_doc`)."""
        return {
            "n_nodes": self.n_nodes,
            "chip": {
                "n_cores": self.chip.n_cores,
                "threads_per_core": self.chip.threads_per_core,
                "freq_hz": self.chip.freq_hz,
            },
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ClusterConfig":
        """Strict inverse of :meth:`to_doc` — unknown fields are rejected."""
        if not isinstance(doc, Mapping):
            raise ValidationError(
                f"cluster document must be a mapping, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(_CLUSTER_FIELDS))
        if unknown:
            raise ValidationError(f"unknown cluster fields: {unknown}")
        n_nodes = doc.get("n_nodes", 2)
        if isinstance(n_nodes, bool) or not isinstance(n_nodes, int):
            raise ValidationError(
                f"cluster field 'n_nodes' must be an int, got {type(n_nodes).__name__}"
            )
        chip_doc = doc.get("chip", {})
        if not isinstance(chip_doc, Mapping):
            raise ValidationError(
                f"cluster field 'chip' must be a mapping, got {type(chip_doc).__name__}"
            )
        unknown = sorted(set(chip_doc) - set(_CHIP_FIELDS))
        if unknown:
            raise ValidationError(f"unknown chip fields: {unknown}")
        for name in ("n_cores", "threads_per_core"):
            value = chip_doc.get(name, 2)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValidationError(
                    f"chip field {name!r} must be an int, got {type(value).__name__}"
                )
        freq = chip_doc.get("freq_hz", ChipConfig.freq_hz)
        if isinstance(freq, bool) or not isinstance(freq, (int, float)):
            raise ValidationError(
                f"chip field 'freq_hz' must be a number, got {type(freq).__name__}"
            )
        try:
            chip = ChipConfig(
                n_cores=chip_doc.get("n_cores", 2),
                threads_per_core=chip_doc.get("threads_per_core", 2),
                freq_hz=float(freq),
            )
            return cls(n_nodes=n_nodes, chip=chip)
        except ConfigurationError as exc:
            raise ValidationError(f"invalid cluster document: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """Canonical content hash of :meth:`to_doc`."""
        return fingerprint_doc(self.to_doc())


class ClusterMachine:
    """Multi-chip machine with the single-chip surface on global CPUs."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.chips: List[Power5Chip] = [
            Power5Chip(self.config.chip) for _ in range(self.config.n_nodes)
        ]

    # -- addressing ------------------------------------------------------------

    def node_of_cpu(self, cpu: int) -> int:
        """Which node hosts global CPU ``cpu``."""
        if not 0 <= cpu < self.config.n_cpus:
            raise ConfigurationError(
                f"cpu must be in 0..{self.config.n_cpus - 1}, got {cpu}"
            )
        return cpu // self.config.cpus_per_node

    def local_cpu(self, cpu: int) -> int:
        """The node-local CPU id of global CPU ``cpu``."""
        self.node_of_cpu(cpu)  # bounds check
        return cpu % self.config.cpus_per_node

    @property
    def cpus(self) -> List[int]:
        return list(range(self.config.n_cpus))

    # -- chip-like surface (flattened cores + per-chip groups) -------------------

    @property
    def cores(self) -> List[SmtCore]:
        """All cores, flattened in node order (global core = global cpu // 2)."""
        out: List[SmtCore] = []
        for chip in self.chips:
            out.extend(chip.cores)
        return out

    @property
    def core_groups(self) -> List[List[int]]:
        """Core indices per chip — the throughput-coupling domains."""
        per_chip = self.config.chip.n_cores
        return [
            list(range(k * per_chip, (k + 1) * per_chip))
            for k in range(self.config.n_nodes)
        ]

    def _chip_cpu(self, cpu: int) -> Tuple[Power5Chip, int]:
        return self.chips[self.node_of_cpu(cpu)], self.local_cpu(cpu)

    def priority(self, cpu: int) -> HardwarePriority:
        chip, local = self._chip_cpu(cpu)
        return chip.priority(local)

    def set_priority(self, cpu: int, priority: int) -> None:
        chip, local = self._chip_cpu(cpu)
        chip.set_priority(local, priority)

    def load(self, cpu: int) -> Optional[LoadProfile]:
        chip, local = self._chip_cpu(cpu)
        return chip.load(local)

    def set_load(self, cpu: int, profile: Optional[LoadProfile]) -> None:
        chip, local = self._chip_cpu(cpu)
        chip.set_load(local, profile)

    def reset(self) -> None:
        for chip in self.chips:
            chip.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterMachine(n_nodes={self.config.n_nodes})"
