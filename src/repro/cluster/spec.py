"""TopologySpec: the serialisable cluster-shape half of a scenario.

:class:`~repro.scenarios.ScenarioSpec` (v3) optionally carries one of
these to target an N-node cluster behind a network model instead of the
default single POWER5 chip. It is deliberately small — node count, a
network kind from :data:`~repro.cluster.topology.NETWORK_KINDS`, and the
network's parameter overrides — because it is part of the scenario wire
format: frozen, hashable (it participates in engine batch dedup keys),
strictly validated, and byte-stable under ``to_doc``/``from_doc``.

The node chips are always the paper's default
:class:`~repro.smt.chip.ChipConfig` (2 cores × 2 threads): node ``k``
owns global CPUs ``4k .. 4k+3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from repro.cluster.machine import ClusterConfig
from repro.cluster.topology import NETWORK_KINDS, NetworkModel, network_from_doc
from repro.errors import ConfigurationError, ValidationError
from repro.smt.chip import ChipConfig
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_choice

__all__ = ["TopologySpec"]

_CPUS_PER_NODE = ChipConfig().n_cpus

_ParamValue = Union[int, float]


def _freeze_topology_params(
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]],
) -> Tuple[Tuple[str, _ParamValue], ...]:
    """Canonical params form: key-sorted tuple of scalar pairs."""
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"topology param {key!r} must be a number, got {value!r}"
            )
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class TopologySpec:
    """A declarative cluster shape: N default-chip nodes behind a network."""

    n_nodes: int
    #: Network kind, one of :data:`~repro.cluster.topology.NETWORK_KINDS`.
    network: str = "uniform"
    #: Overrides for the network model's parameters (scalars only),
    #: canonically key-sorted. Empty = the network kind's defaults.
    params: Tuple[Tuple[str, _ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.n_nodes, bool) or not isinstance(self.n_nodes, int):
            raise ConfigurationError(
                f"topology n_nodes must be an int, got {self.n_nodes!r}"
            )
        if self.n_nodes < 1:
            raise ConfigurationError(
                f"topology n_nodes must be >= 1, got {self.n_nodes}"
            )
        check_choice("topology.network", self.network, NETWORK_KINDS)
        object.__setattr__(self, "params", _freeze_topology_params(self.params))
        # Building the model validates the param names and values against
        # the network kind's strict document schema.
        try:
            self.network_model()
        except ValidationError as exc:
            raise ConfigurationError(f"invalid topology params: {exc}") from exc

    # -- derived views ---------------------------------------------------------

    @property
    def n_cpus(self) -> int:
        """Global logical CPUs the cluster exposes (4 per node)."""
        return self.n_nodes * _CPUS_PER_NODE

    @property
    def cpus_per_node(self) -> int:
        return _CPUS_PER_NODE

    def network_model(self) -> NetworkModel:
        """Instantiate the network model this spec names."""
        doc: Dict[str, Any] = {"kind": self.network}
        doc.update(dict(self.params))
        return network_from_doc(doc)

    def cluster_config(self) -> ClusterConfig:
        """The machine shape: ``n_nodes`` default paper chips."""
        return ClusterConfig(n_nodes=self.n_nodes)

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        """JSON-safe canonical document (``params`` omitted when empty)."""
        doc: Dict[str, Any] = {"n_nodes": self.n_nodes, "network": self.network}
        if self.params:
            doc["params"] = dict(self.params)
        return doc

    _FIELDS = ("n_nodes", "network", "params")

    @classmethod
    def from_doc(cls, doc: object) -> "TopologySpec":
        """Strict inverse of :meth:`to_doc` — unknown fields rejected."""
        if not isinstance(doc, Mapping):
            raise ValidationError(
                f"topology document must be a mapping, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(cls._FIELDS))
        if unknown:
            raise ValidationError(f"unknown topology fields: {unknown}")
        if "n_nodes" not in doc:
            raise ValidationError("topology document needs 'n_nodes'")
        network = doc.get("network", "uniform")
        if not isinstance(network, str):
            raise ValidationError(
                f"topology field 'network' must be a string, got {network!r}"
            )
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise ValidationError(
                f"topology field 'params' must be an object, got {params!r}"
            )
        try:
            return cls(
                n_nodes=doc["n_nodes"],
                network=network,
                params=_freeze_topology_params(params),
            )
        except ConfigurationError as exc:
            raise ValidationError(f"invalid topology document: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """Canonical content hash of :meth:`to_doc` (memoised)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_doc(self.to_doc())
            object.__setattr__(self, "_fingerprint", cached)
        return cached
