"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``report [--fast]``
    The full paper-vs-measured report (all tables and figures).
``tables``
    The architectural Tables I-III, instantly.
``case <suite> <name> [--iterations N] [--width W] [--prv FILE]
      [--model analytic|cycle] [--table FILE]``
    Run one paper case (suite: metbench|btmz|siesta), print the
    characterisation table and the ASCII trace; optionally export a
    PARAVER ``.prv``. With ``--model cycle --table FILE``, pipeline
    measurements are loaded from/persisted to ``FILE``.
``profiles``
    The bundled load profiles and their model operating points.
``sweep [--profile P]``
    Victim/favoured throughput across priority gaps 0-4.
``cache info|clear [--table FILE] [--service URL]``
    Inspect or delete a persisted throughput table, and/or report a
    running ``repro serve`` instance's result-cache stats (entries,
    bytes, hit/miss/coalesced) from its ``/metrics`` endpoint.
``serve [--host H] [--port P] [--workers N] [--queue-depth D]
       [--cache-entries E] [--timeout S] [--table FILE] [--verbose]``
    The scenario-serving HTTP JSON API: ``POST /v1/jobs``,
    ``GET /v1/jobs/<id>``, ``GET /healthz``, ``GET /metrics``
    (see ``docs/service.md``).
``oracle record|check|fuzz``
    The invariant/conformance oracle layer: record or replay golden
    traces and the golden tournament leaderboard under ``tests/golden/``,
    or fuzz randomized scenarios through every registered execution
    engine (``--budget N --seed S``; failing scenarios are written as
    JSON for CI artifacts).
``tournament run|show|policies [--policies a,b,c] [--corpus C] [-n N]
           [--seed S] [--engine E] [--scalar] [--out FILE]``
    The balancing-policy tournament (see ``docs/policies.md``): score
    every registered (or named) policy over a seeded scenario corpus
    and print the ranked leaderboard (``run``, optionally persisting
    the artifact with ``--out``), render a saved artifact (``show
    FILE``), or list the policy zoo (``policies``).
``engines list``
    The registered scenario execution engines (name, batch strategy,
    physics axes, options, what each backend is), from the
    :mod:`repro.scenarios` registry.
``search joint [--works W,W,...] [--kind K] [--profile P] [--levels L,L,...]
       [--max-gap G] [--workers N] [--top K] [--seed S] [--no-prune]
       [--staged]``
    The joint (mapping × priority) configuration search
    (``docs/mapping.md``): enumerate symmetry-pruned thread-to-core
    mappings crossed with per-core priority combinations, simulate every
    candidate, and print the ranking against the default (identity
    mapping, all-MEDIUM) configuration. ``--staged`` swaps the mapping
    sweep for the decode-pressure pairing heuristic.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.cases import btmz_suite, metbench_suite, siesta_suite
from repro.experiments.report import full_report
from repro.experiments.runner import run_case
from repro.experiments.table2 import decode_cycles_table
from repro.experiments.table3 import special_cases_table
from repro.machine.system import System, SystemConfig
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.throughput import ThroughputTable
from repro.smt.priorities import PRIORITY_TABLE
from repro.trace.paraver import render_gantt, render_legend
from repro.trace.prv import render_pcf, render_prv
from repro.util.tables import TextTable

__all__ = ["main", "build_parser"]

_SUITES = {
    "metbench": lambda it: metbench_suite(iterations=it or 10),
    "btmz": lambda it: btmz_suite(iterations=it or 50),
    "siesta": lambda it: siesta_suite(n_iterations=it or 40),
}


def _cmd_report(args: argparse.Namespace) -> int:
    print(full_report(fast=args.fast))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    del args
    t1 = TextTable(
        ["Priority", "Level", "Privilege", "or-nop"],
        title="Table I: hardware thread priorities",
    )
    for prio in range(8):
        info = PRIORITY_TABLE[prio]
        t1.add_row([prio, info.label, info.privilege.label, info.or_nop_mnemonic or "-"])
    print(t1.render())
    print()
    print(decode_cycles_table().render())
    print()
    print(special_cases_table().render())
    return 0


def _cmd_case(args: argparse.Namespace) -> int:
    suite_factory = _SUITES.get(args.suite)
    if suite_factory is None:
        print(f"unknown suite {args.suite!r}; choose from {sorted(_SUITES)}",
              file=sys.stderr)
        return 2
    suite = suite_factory(args.iterations)
    try:
        case = suite.case(args.name.upper())
    except Exception:
        names = [c.name for c in suite.cases]
        print(f"unknown case {args.name!r}; suite {args.suite} has {names}",
              file=sys.stderr)
        return 2
    system = System(
        SystemConfig(model=args.model, throughput_table_path=args.table)
    )
    result = run_case(system, suite, case)
    saved = system.save_throughput_table()
    if saved is not None:
        print(f"[cache] persisted {saved} throughput entries to {args.table}")
    prios = case.priorities or {r: 4 for r in range(case.n_ranks)}
    cores = {r: case.mapping.core_of(r) + 1 for r in range(case.n_ranks)}
    print(result.run.stats.as_table(prios, cores,
                                    label=f"{args.suite} case {case.name}").render())
    print()
    print(f"paper: {case.paper_exec_seconds:.2f}s / "
          f"{case.paper_imbalance_percent:.2f}%   "
          f"simulated: {result.measured_exec:.2f}s / "
          f"{result.measured_imbalance:.2f}%")
    print()
    print(render_gantt(result.run.trace, width=args.width))
    print(render_legend())
    if args.prv:
        with open(args.prv, "w") as fh:
            fh.write(render_prv(result.run.trace,
                                rank_to_cpu=case.mapping.as_dict()))
        pcf_path = args.prv.rsplit(".", 1)[0] + ".pcf"
        with open(pcf_path, "w") as fh:
            fh.write(render_pcf())
        print(f"\nwrote {args.prv} and {pcf_path}")
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    del args
    model = AnalyticThroughputModel()
    table = TextTable(
        ["profile", "mem%", "FPU%", "ILP", "solo IPC", "pair IPC", "pair tax"],
        title="Bundled load profiles (model operating points)",
    )
    for name in sorted(BASE_PROFILES):
        p = BASE_PROFILES[name]
        solo = model.core_ipc(p, None, 7, 0)[0]
        pair = model.core_ipc(p, p, 4, 4)[0]
        tax = (1 - pair / solo) * 100 if solo else 0.0
        table.add_row(
            [
                name,
                f"{p.memory_fraction * 100:.0f}",
                f"{p.fpu_fraction * 100:.0f}",
                f"{p.ilp:.1f}",
                f"{solo:.2f}",
                f"{pair:.2f}",
                f"{tax:.0f}%",
            ]
        )
    print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    profile = BASE_PROFILES.get(args.profile)
    if profile is None:
        print(f"unknown profile {args.profile!r}; see `repro profiles`",
              file=sys.stderr)
        return 2
    model = AnalyticThroughputModel()
    table = TextTable(
        ["gap", "priorities", "victim IPC", "favoured IPC", "victim slowdown"],
        title=f"Priority-gap sweep for profile {args.profile!r}",
    )
    eq = model.core_ipc(profile, profile, 4, 4)[0]
    for gap, (lo, hi) in {0: (4, 4), 1: (4, 5), 2: (4, 6), 3: (3, 6), 4: (2, 6)}.items():
        v, f = model.core_ipc(profile, profile, lo, hi)
        table.add_row(
            [gap, f"{lo} vs {hi}", f"{v:.3f}", f"{f:.3f}",
             f"{eq / v:.2f}x" if v else "inf"]
        )
    print(table.render())
    return 0


def _cache_table_info(path: str) -> int:
    probe = ThroughputTable()
    try:
        import json

        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"no table at {path}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"unreadable table {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict) or doc.get("format") != ThroughputTable.FORMAT:
        print(f"{path} is not a throughput table file", file=sys.stderr)
        return 2
    table = TextTable(["field", "value"], title=f"throughput table {path}")
    table.add_row(["version", doc.get("version")])
    table.add_row(["fingerprint", str(doc.get("fingerprint"))[:16] + "..."])
    table.add_row(["warmup_cycles", doc.get("warmup_cycles")])
    table.add_row(["measure_cycles", doc.get("measure_cycles")])
    table.add_row(["seed", doc.get("seed")])
    table.add_row(["entries", len(doc.get("entries", ()))])
    matches = "yes" if doc.get("fingerprint") == probe.fingerprint else "no"
    table.add_row(["matches default config", matches])
    print(table.render())
    return 0


def _cache_service_info(url: str) -> int:
    """Render a running service's result-cache stats from /metrics."""
    import json
    import urllib.error
    import urllib.request

    endpoint = url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(endpoint, timeout=10.0) as resp:
            doc = json.load(resp)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"cannot read {endpoint}: {exc}", file=sys.stderr)
        return 2
    cache = doc.get("cache", {})
    queue = doc.get("queue", {})
    table = TextTable(
        ["field", "value"], title=f"service result cache at {url}"
    )
    table.add_row(["entries", f"{cache.get('entries')} / {cache.get('max_entries')}"])
    table.add_row(["bytes", cache.get("bytes")])
    table.add_row(["hits", cache.get("hits")])
    table.add_row(["misses", cache.get("misses")])
    table.add_row(["hit rate", f"{cache.get('hit_rate', 0.0):.1%}"])
    table.add_row(["coalesced", cache.get("coalesced")])
    table.add_row(["inserts", cache.get("inserts")])
    table.add_row(["in flight", cache.get("in_flight")])
    table.add_row(["queue depth", f"{queue.get('depth')} / {queue.get('max_depth')}"])
    table.add_row(["jobs done", doc.get("jobs", {}).get("done")])
    print(table.render())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.table is None and args.service is None:
        print("cache: need --table FILE and/or --service URL", file=sys.stderr)
        return 2
    if args.action == "clear":
        if args.table is None:
            print("cache clear: needs --table FILE", file=sys.stderr)
            return 2
        if os.path.exists(args.table):
            os.remove(args.table)
            print(f"removed {args.table}")
        else:
            print(f"nothing to clear at {args.table}")
        return 0
    # info: report whichever sources were named, alongside each other.
    rc = 0
    if args.table is not None:
        rc = _cache_table_info(args.table)
    if args.service is not None:
        rc = max(rc, _cache_service_info(args.service))
    return rc


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.executor import ScenarioService, ServiceConfig
    from repro.service.server import serve

    service = ScenarioService(
        ServiceConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            cache_entries=args.cache_entries,
            default_timeout_s=args.timeout if args.timeout > 0 else None,
            throughput_table_path=args.table,
        )
    )
    serve(service, host=args.host, port=args.port, quiet=not args.verbose)
    return 0


def _default_golden_dir() -> str:
    """``tests/golden`` next to the repo the package runs from, else cwd."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    candidate = os.path.join(here, "tests", "golden")
    if os.path.isdir(os.path.join(here, "tests")):
        return candidate
    return os.path.join(os.getcwd(), "tests", "golden")


def _cmd_oracle(args: argparse.Namespace) -> int:
    # Imported here: the oracle package pulls in the workload generators,
    # which `repro tables` etc. never need.
    from repro.errors import GoldenMismatchError, OracleError
    from repro.oracle import checker, differential, golden

    directory = args.dir or _default_golden_dir()
    if args.action == "record":
        paths = golden.record_all(directory)
        for p in paths:
            print(f"recorded {p}")
        return 0
    if args.action == "check":
        report = checker.verify_decode_law(strict=False)
        if not report.ok:
            print(report.summary(), file=sys.stderr)
            return 1
        try:
            checks = golden.check_all(directory, tolerance=args.tolerance,
                                      strict=False)
        except OracleError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            batch_checks = golden.check_all_batch(
                directory, tolerance=args.tolerance, strict=False
            )
        except OracleError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        bad = 0
        for label, group in (("", checks), ("[batch] ", batch_checks)):
            for c in group:
                status = "ok" if c.ok else "MISMATCH"
                print(f"{status:8s} {label}{os.path.basename(c.path)} "
                      f"(replayed {c.replayed_time:.4f}s, "
                      f"recorded {c.recorded_time:.4f}s)")
                for m in c.mismatches:
                    bad += 1
                    print(f"         - {m}")
        try:
            board = golden.check_leaderboard(directory, strict=False)
        except OracleError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        status = "ok" if board.ok else "MISMATCH"
        print(f"{status:8s} {os.path.basename(board.path)} "
              f"(replayed {board.replayed_fingerprint[:16]}..., "
              f"recorded {board.recorded_fingerprint[:16]}...)")
        if not board.ok:
            bad += 1
        try:
            joint = golden.check_joint_search(directory, strict=False)
        except OracleError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        status = "ok" if joint.ok else "MISMATCH"
        print(f"{status:8s} {os.path.basename(joint.path)} "
              f"(replayed {joint.replayed_digest[:16]}..., "
              f"recorded {joint.recorded_digest[:16]}...)")
        for m in joint.mismatches:
            bad += 1
            print(f"         - {m}")
        cluster_eq = differential.check_cluster_equivalence(strict=False)
        status = "ok" if cluster_eq.ok else "MISMATCH"
        print(f"{status:8s} 1-node cluster law "
              f"(cluster {cluster_eq.cluster_digest[:16]}..., "
              f"single chip {cluster_eq.single_chip_digest[:16]}...)")
        for m in cluster_eq.mismatches:
            bad += 1
            print(f"         - {m}")
        if bad:
            print(f"{bad} golden mismatch(es)", file=sys.stderr)
            return 1
        print(f"{len(checks)} golden trace(s) match scalar and batch "
              "replay; leaderboard and joint search reproduce; "
              "decode law and the 1-node cluster law hold")
        return 0
    # fuzz
    report = differential.fuzz(args.budget, seed=args.seed)
    print(report.summary())
    if not report.ok and args.failures:
        import json

        doc = {
            "budget": report.budget,
            "seed": report.seed,
            "failures": [
                {
                    "scenario": res.scenario.to_doc(),
                    "fingerprint": res.scenario.fingerprint,
                    "disagreements": list(res.disagreements),
                    "fluid_time": res.fluid_time,
                    "cycle_time": res.cycle_time,
                    "estimate_time": res.estimate_time,
                }
                for res in report.failures
            ],
        }
        with open(args.failures, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote failing scenarios to {args.failures}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Dump a telemetry snapshot — this process's default registry, or a
    running service's /metrics when --url is given."""
    from repro.telemetry import default_registry, render_prometheus

    if args.url is not None:
        import urllib.error
        import urllib.request

        fmt = "json" if args.format == "json" else "prometheus"
        endpoint = args.url.rstrip("/") + f"/metrics?format={fmt}"
        try:
            with urllib.request.urlopen(endpoint, timeout=10.0) as resp:
                body = resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot read {endpoint}: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(body if body.endswith("\n") else body + "\n")
        return 0

    reg = default_registry()
    if args.format == "prom":
        sys.stdout.write(render_prometheus(reg))
        return 0
    snapshot = reg.snapshot()
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    table = TextTable(
        ["metric", "kind", "labels", "value"],
        title="process telemetry snapshot",
    )
    for name, doc in sorted(snapshot.items()):
        for sample in doc["samples"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sample["labels"].items()
            ) or "-"
            if "value" in sample:
                value = sample["value"]
            else:
                value = f"count={sample['count']} sum={sample['sum']:.6g}"
            table.add_row([name, doc["kind"], labels, value])
    print(table.render())
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    del args
    from repro.scenarios import all_engines

    table = TextTable(
        ["engine", "batch", "axes", "options", "description"],
        title="Registered scenario execution engines",
    )
    for engine in all_engines():
        table.add_row(
            [
                engine.name,
                getattr(engine, "batch_strategy", "loop"),
                ",".join(getattr(engine, "axes", ())) or "-",
                ", ".join(engine.option_names) or "-",
                engine.description,
            ]
        )
    print(table.render())
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    # Imported here like the oracle: the policy subsystem drags in the
    # workload generators, which the architectural commands never need.
    from repro.errors import ConfigurationError, PersistenceError
    from repro.policies import (
        DEFAULT_POLICIES,
        Leaderboard,
        TournamentConfig,
        all_policies,
        run_tournament,
    )

    if args.action == "policies":
        axis_of = {"static": "priority", "dynamic": "priority",
                   "allocation": "mapping", "placement": "node"}
        table = TextTable(
            ["policy", "family", "axis", "fingerprint", "description"],
            title="The policy zoo (docs/policies.md)",
        )
        for policy in all_policies():
            table.add_row([
                policy.name,
                policy.family,
                axis_of.get(policy.family, "-"),
                policy.fingerprint[:12],
                policy.description,
            ])
        print(table.render())
        return 0

    if args.action == "show":
        if not args.path:
            print("tournament show: needs a leaderboard artifact path",
                  file=sys.stderr)
            return 2
        try:
            board = Leaderboard.load(args.path)
        except PersistenceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(board.render())
        print(f"fingerprint {board.fingerprint}")
        return 0

    # run
    if args.policies:
        names = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    else:
        names = DEFAULT_POLICIES
    try:
        config = TournamentConfig(
            policies=names,
            corpus=args.corpus,
            n_scenarios=args.scenarios,
            seed=args.seed,
            engine=args.engine,
        )
        board = run_tournament(config, batch=not args.scalar)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(board.render())
    print(f"fingerprint {board.fingerprint}  "
          f"({len(board.scores)} policies x {config.n_scenarios} cells "
          f"in {board.wall_seconds:.2f}s)")
    if args.out:
        board.save(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_search_cluster(args: argparse.Namespace, works, levels) -> int:
    """The ``repro search cluster`` action: placement, then priorities."""
    from repro.cluster import (
        ClusterConfig,
        ClusterSystem,
        ClusterSystemConfig,
        UniformNetwork,
    )
    from repro.core import candidate_placements, two_level_search
    from repro.errors import ConfigurationError, MappingError
    from repro.machine.mapping import ProcessMapping
    from repro.workloads.generators import distant_pairs_programs

    n_ranks = len(works)

    def factory():
        return distant_pairs_programs(
            list(works),
            iterations=args.iterations,
            profile=args.profile,
            exchange_bytes=args.exchange_bytes,
        )

    try:
        system = ClusterSystem(
            ClusterSystemConfig(
                cluster=ClusterConfig(n_nodes=args.nodes),
                network=UniformNetwork(),
            )
        )
        baseline = system.run(
            list(factory()),
            mapping=ProcessMapping.identity(n_ranks),
            label="search.cluster.baseline",
        )
        prune = not args.no_prune
        pruned = len(candidate_placements(n_ranks, args.nodes))
        total = len(
            candidate_placements(n_ranks, args.nodes, prune_symmetry=False)
        )
        result = two_level_search(
            system,
            factory,
            n_ranks=n_ranks,
            n_nodes=args.nodes,
            levels=levels,
            max_gap=args.max_gap,
            keep_top=args.top,
            workers=args.workers,
            prune_symmetry=prune,
        )
    except (ConfigurationError, MappingError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    table = TextTable(
        ["#", "mapping", "priorities", "time [s]", "imb %", "vs default %"],
        title=(
            f"two-level (placement -> priority) search: {n_ranks} ranks "
            f"on {args.nodes} nodes"
        ),
    )
    for place, (assignment, total_time, imbalance) in enumerate(
        result.entries, start=1
    ):
        mapping = ",".join(
            f"{r}>{c}" for r, c in assignment.mapping.rank_to_cpu
        )
        prios = ",".join(str(p) for _, p in assignment.priorities)
        gain = (baseline.total_time - total_time) / baseline.total_time * 100.0
        table.add_row([
            place, mapping, prios,
            f"{total_time:.4f}", f"{imbalance:.2f}", f"{gain:+.2f}",
        ])
    print(table.render())
    print(
        f"placements: {pruned} canonical of {total} "
        f"({'pruned' if prune else 'NOT pruned'}; "
        f"{total / pruned:.1f}x node-symmetry cut)"
    )
    stats = result.stats
    print(
        f"evaluated {stats.evaluations} candidates "
        f"(workers {stats.workers}, model cache hit rate "
        f"{stats.hit_rate * 100.0:.1f}%); default config: "
        f"{baseline.total_time:.4f}s"
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    # Imported here like the oracle/tournament commands: the search and
    # workload layers are never needed by the architectural commands.
    from repro.core import (
        candidate_mappings,
        joint_search,
        mapping_then_priority_search,
    )
    from repro.errors import ConfigurationError, MappingError
    from repro.machine.mapping import ProcessMapping
    from repro.scenarios import ScenarioSpec

    try:
        works = tuple(float(w) for w in args.works.split(",") if w.strip())
        levels = tuple(int(l) for l in args.levels.split(",") if l.strip())
    except ValueError as exc:
        print(f"search {args.action}: {exc}", file=sys.stderr)
        return 2
    if args.action == "cluster":
        return _cmd_search_cluster(args, works, levels)
    try:
        spec = ScenarioSpec(
            name="search-joint",
            kind=args.kind,
            works=works,
            iterations=args.iterations,
            profile=args.profile,
            seed=args.seed,
        )
        system = System(SystemConfig(seed=args.seed))
        baseline = system.run(
            list(spec.programs()),
            mapping=ProcessMapping.identity(spec.n_ranks),
            label="search.baseline",
        )
        if args.staged:
            result = mapping_then_priority_search(
                system,
                spec.programs,
                works,
                profiles=args.profile,
                levels=levels,
                max_gap=args.max_gap,
                keep_top=args.top,
                workers=args.workers,
            )
            space_note = "staged: pressure-paired mapping, priorities searched"
        else:
            prune = not args.no_prune
            n_cores = system.config.chip.n_cores
            pruned = len(candidate_mappings(spec.n_ranks, n_cores))
            total = len(
                candidate_mappings(spec.n_ranks, n_cores, prune_symmetry=False)
            )
            result = joint_search(
                system,
                spec.programs,
                n_ranks=spec.n_ranks,
                levels=levels,
                max_gap=args.max_gap,
                keep_top=args.top,
                workers=args.workers,
                prune_symmetry=prune,
            )
            space_note = (
                f"mappings: {pruned} canonical of {total} "
                f"({'pruned' if prune else 'NOT pruned'}; "
                f"{total / pruned:.1f}x symmetry cut)"
            )
    except (ConfigurationError, MappingError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    table = TextTable(
        ["#", "mapping", "priorities", "time [s]", "imb %", "vs default %"],
        title=f"joint (mapping × priority) search over {len(works)} ranks",
    )
    for place, (assignment, total_time, imbalance) in enumerate(
        result.entries, start=1
    ):
        mapping = ",".join(
            f"{r}>{c}" for r, c in assignment.mapping.rank_to_cpu
        )
        prios = ",".join(str(p) for _, p in assignment.priorities)
        gain = (baseline.total_time - total_time) / baseline.total_time * 100.0
        table.add_row([
            place, mapping, prios,
            f"{total_time:.4f}", f"{imbalance:.2f}", f"{gain:+.2f}",
        ])
    print(table.render())
    print(space_note)
    stats = result.stats
    print(
        f"evaluated {stats.evaluations} candidates "
        f"(workers {stats.workers}, model cache hit rate "
        f"{stats.hit_rate * 100.0:.1f}%); default config: "
        f"{baseline.total_time:.4f}s"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Balancing HPC Applications Through "
        "Smart Allocation of Resources in MT Processors' (IPDPS 2008).",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="attach a stderr handler to the repro.* loggers at LEVEL "
        "(DEBUG, INFO, WARNING, ...); off by default",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="full paper-vs-measured report")
    p_report.add_argument("--fast", action="store_true",
                          help="reduced iteration counts")
    p_report.set_defaults(func=_cmd_report)

    p_tables = sub.add_parser("tables", help="architectural Tables I-III")
    p_tables.set_defaults(func=_cmd_tables)

    p_case = sub.add_parser("case", help="run one paper case")
    p_case.add_argument("suite", choices=sorted(_SUITES))
    p_case.add_argument("name", help="case name: ST, A, B, C or D")
    p_case.add_argument("--iterations", type=int, default=None)
    p_case.add_argument("--width", type=int, default=90, help="trace width")
    p_case.add_argument("--prv", default=None,
                        help="export a PARAVER .prv to this path")
    p_case.add_argument("--model", choices=("analytic", "cycle"),
                        default="analytic", help="throughput model")
    p_case.add_argument("--table", default=None,
                        help="persisted throughput table (cycle model only)")
    p_case.set_defaults(func=_cmd_case)

    p_prof = sub.add_parser("profiles", help="bundled load profiles")
    p_prof.set_defaults(func=_cmd_profiles)

    p_sweep = sub.add_parser("sweep", help="priority-gap operating points")
    p_sweep.add_argument("--profile", default="hpc")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_cache = sub.add_parser(
        "cache", help="persisted throughput tables / service result cache"
    )
    p_cache.add_argument("action", choices=("info", "clear"))
    p_cache.add_argument("--table", default=None,
                         help="path of the persisted throughput table")
    p_cache.add_argument("--service", default=None,
                         help="base URL of a running `repro serve` "
                         "(reports its result-cache stats)")
    p_cache.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="scenario-serving HTTP JSON API (docs/service.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="0 picks a free port")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="simulation worker threads")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission bound before 429 backpressure")
    p_serve.add_argument("--cache-entries", type=int, default=1024,
                         help="result-cache LRU capacity")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="default per-attempt seconds; 0 disables")
    p_serve.add_argument("--table", default=None,
                         help="shared persistent throughput table for "
                         "model=cycle jobs")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(func=_cmd_serve)

    p_oracle = sub.add_parser(
        "oracle", help="invariant / conformance / golden-trace oracle"
    )
    p_oracle.add_argument("action", choices=("record", "check", "fuzz"))
    p_oracle.add_argument("--dir", default=None,
                          help="golden-trace directory (default tests/golden)")
    p_oracle.add_argument("--tolerance", type=float, default=0.0,
                          help="relative metric tolerance for check "
                          "(0 = bit-exact trace digests)")
    p_oracle.add_argument("--budget", type=int, default=100,
                          help="fuzz: number of random scenarios")
    p_oracle.add_argument("--seed", type=int, default=0,
                          help="fuzz: scenario-generator seed")
    p_oracle.add_argument("--failures", default=None,
                          help="fuzz: write failing scenarios to this JSON "
                          "path (CI artifact)")
    p_oracle.set_defaults(func=_cmd_oracle)

    p_search = sub.add_parser(
        "search",
        help="joint (mapping × priority) and cluster placement search",
    )
    p_search.add_argument("action", choices=("joint", "cluster"))
    p_search.add_argument("--works", default="8e8,2.4e9,1.2e9,2e9",
                          metavar="W,W,...",
                          help="per-rank work in instructions "
                               "(default: a skewed 4-rank profile)")
    p_search.add_argument("--kind", default="metbench",
                          choices=("barrier_loop", "metbench", "btmz",
                                   "siesta"),
                          help="workload family (default: metbench)")
    p_search.add_argument("--profile", default="hpc",
                          help="load profile name (default: hpc)")
    p_search.add_argument("--iterations", type=int, default=2)
    p_search.add_argument("--levels", default="3,4,5,6", metavar="L,L,...",
                          help="priority levels to search (default: 3,4,5,6)")
    p_search.add_argument("--max-gap", type=int, default=2,
                          help="max per-core priority gap (default: 2)")
    p_search.add_argument("--workers", type=int, default=1,
                          help="process-pool width (default: serial)")
    p_search.add_argument("--top", type=int, default=10,
                          help="ranking rows to keep/print (default: 10)")
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--nodes", type=int, default=2,
                          help="cluster node count for the cluster action "
                               "(default: 2)")
    p_search.add_argument("--exchange-bytes", type=int, default=16_000_000,
                          help="per-iteration sendrecv payload for the "
                               "cluster action's distant-pairs workload "
                               "(default: 16 MB)")
    p_search.add_argument("--no-prune", action="store_true",
                          help="disable symmetry pruning of the mapping "
                               "or placement axis (same best physics, "
                               "strictly more simulation)")
    p_search.add_argument("--staged", action="store_true",
                          help="mapping_then_priority heuristic: pick the "
                               "mapping from decode pressure, search "
                               "priorities only")
    p_search.set_defaults(func=_cmd_search)

    p_engines = sub.add_parser(
        "engines", help="registered scenario execution engines"
    )
    p_engines.add_argument("action", choices=("list",))
    p_engines.set_defaults(func=_cmd_engines)

    p_tour = sub.add_parser(
        "tournament",
        help="balancing-policy tournaments over seeded scenario corpora "
        "(docs/policies.md)",
    )
    p_tour.add_argument("action", choices=("run", "show", "policies"))
    p_tour.add_argument("path", nargs="?", default=None,
                        help="show: the leaderboard artifact to render")
    p_tour.add_argument("--policies", default=None, metavar="A,B,C",
                        help="comma-separated policy names "
                        "(default: every built-in)")
    p_tour.add_argument("--corpus", default="mixed",
                        choices=("fuzz", "siesta", "mixed", "metbtmz",
                                 "cluster"),
                        help="scenario corpus (default mixed; metbtmz is "
                        "the MetBench/BT-MZ allocation-differential mix, "
                        "cluster the 2-node distant-neighbour set the "
                        "placement family is scored on)")
    p_tour.add_argument("-n", "--scenarios", type=int, default=50,
                        help="corpus size (default 50)")
    p_tour.add_argument("--seed", type=int, default=0,
                        help="corpus seed (default 0)")
    p_tour.add_argument("--engine", default="fluid",
                        help="execution engine (default fluid; dynamic "
                        "policies need its controllers hook)")
    p_tour.add_argument("--scalar", action="store_true",
                        help="scalar per-cell runs instead of run_batch "
                        "(same leaderboard fingerprint, slower)")
    p_tour.add_argument("--out", default=None,
                        help="run: also write the leaderboard artifact "
                        "to this path")
    p_tour.set_defaults(func=_cmd_tournament)

    p_tele = sub.add_parser(
        "telemetry",
        help="dump a telemetry snapshot (docs/observability.md)",
    )
    p_tele.add_argument(
        "--format", choices=("table", "json", "prom"), default="table",
        help="table (default), json snapshot, or Prometheus text",
    )
    p_tele.add_argument(
        "--url", default=None,
        help="base URL of a running `repro serve`; reads its /metrics "
        "instead of this process's registry",
    )
    p_tele.set_defaults(func=_cmd_telemetry)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.telemetry import configure_logging

        configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
