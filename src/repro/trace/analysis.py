"""Trace analysis beyond the paper's two metrics.

Helpers the (dynamic) balancing story needs:

* :func:`windowed_stats` — the paper's metrics per time window, to see
  imbalance evolve;
* :func:`bottleneck_timeline` — which rank is the bottleneck per window
  (SIESTA's migrating bottleneck, made visible);
* :func:`drift_score` — how unstable the bottleneck is (0 = one rank
  dominates every window, 1 = a different rank every window), the
  quantity that predicts whether static balancing can work;
* :func:`phase_breakdown` — per-trace-state share of each rank's time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TraceError
from repro.trace.events import RankState
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.trace import Trace

__all__ = [
    "windowed_stats",
    "bottleneck_timeline",
    "drift_score",
    "phase_breakdown",
]


def windowed_stats(trace: Trace, n_windows: int) -> List[TraceStats]:
    """The paper's metrics over ``n_windows`` equal time slices."""
    if n_windows <= 0:
        raise TraceError(f"n_windows must be > 0, got {n_windows}")
    total = trace.total_time
    if total <= 0:
        raise TraceError("empty trace")
    dt = total / n_windows
    return [
        compute_stats(trace, window=(i * dt, (i + 1) * dt))
        for i in range(n_windows)
    ]


def bottleneck_timeline(trace: Trace, n_windows: int) -> List[int]:
    """The bottleneck rank (least waiting) per window."""
    return [stats.bottleneck_rank for stats in windowed_stats(trace, n_windows)]


def drift_score(trace: Trace, n_windows: int = 10) -> float:
    """Bottleneck instability in [0, 1].

    0: the same rank is the bottleneck in every window (BT-MZ-like —
    static balancing can win). 1: the bottleneck changes at every window
    boundary (SIESTA-at-its-worst — static assignments are wrong half the
    time; use the dynamic balancer).
    """
    timeline = bottleneck_timeline(trace, n_windows)
    if len(timeline) < 2:
        return 0.0
    changes = sum(1 for a, b in zip(timeline, timeline[1:]) if a != b)
    return changes / (len(timeline) - 1)


def phase_breakdown(trace: Trace) -> Dict[int, Dict[RankState, float]]:
    """Per-rank fraction of the run in each recorded state."""
    total = trace.total_time
    if total <= 0:
        raise TraceError("empty trace")
    out: Dict[int, Dict[RankState, float]] = {}
    for tl in trace:
        shares: Dict[RankState, float] = {}
        for iv in tl.intervals:
            shares[iv.state] = shares.get(iv.state, 0.0) + iv.duration / total
        out[tl.rank] = shares
    return out
