"""Trace accumulation: per-rank timelines of state intervals.

The MPI runtime emits state *transitions* (``rank r enters state s at
time t``); :class:`RankTimeline` closes the previous interval on each
transition. Zero-length intervals are dropped — fluid simulation
produces many back-to-back transitions at the same instant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import TraceError
from repro.trace.events import RankState, StateInterval

__all__ = ["RankTimeline", "Trace"]


class RankTimeline:
    """State history of one rank."""

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise TraceError(f"rank must be >= 0, got {rank}")
        self.rank = rank
        self.intervals: List[StateInterval] = []
        self._open_state: Optional[RankState] = None
        self._open_since: float = 0.0
        self._closed = False

    @property
    def current_state(self) -> Optional[RankState]:
        return self._open_state

    @property
    def open_since(self) -> float:
        """Start time of the currently open interval (if any)."""
        return self._open_since

    def time_in_until(self, now: float, *states: RankState) -> float:
        """Like :meth:`time_in`, but counts the open interval up to ``now``.

        This is what an online controller (the dynamic balancer) sees at
        instant ``now`` — closed history plus the in-progress state.
        """
        total = self.time_in(*states)
        if self._open_state in states and now > self._open_since:
            total += now - self._open_since
        return total

    def transition(self, time: float, state: Optional[RankState]) -> None:
        """Enter ``state`` at ``time`` (``None`` closes without reopening)."""
        if self._closed:
            raise TraceError(f"rank {self.rank}: transition after finish()")
        if self._open_state is not None:
            if time < self._open_since:
                raise TraceError(
                    f"rank {self.rank}: time went backwards "
                    f"({time} < {self._open_since})"
                )
            if time > self._open_since:
                self.intervals.append(
                    StateInterval(self._open_since, time, self._open_state)
                )
        self._open_state = state
        self._open_since = time

    def finish(self, time: float) -> None:
        """Close the timeline at ``time``; further transitions are errors."""
        self.transition(time, None)
        self._closed = True

    @property
    def end_time(self) -> float:
        """Time of the last recorded activity."""
        if self.intervals:
            return self.intervals[-1].end
        return self._open_since

    def time_in(self, *states: RankState) -> float:
        """Total recorded time spent in any of ``states``."""
        wanted = set(states)
        return sum(iv.duration for iv in self.intervals if iv.state in wanted)

    def state_at(self, time: float) -> Optional[RankState]:
        """State at instant ``time`` (None outside recorded span)."""
        for iv in self.intervals:
            if iv.start <= time < iv.end:
                return iv.state
        return None

    def clipped(self, t0: float, t1: float) -> List[StateInterval]:
        """Intervals restricted to the window [t0, t1]."""
        if t1 < t0:
            raise TraceError(f"bad clip window [{t0}, {t1}]")
        return [iv.clipped(t0, t1) for iv in self.intervals if iv.overlaps(t0, t1)]

    def validate(self) -> None:
        """Raise :class:`TraceError` unless this timeline is well formed.

        Well-formed means what the runtime's enter/exit discipline
        guarantees by construction: strictly positive interval durations,
        monotonically increasing timestamps, and *contiguity* — each
        interval opens exactly when its predecessor closes (the
        transition API closes and reopens at the same instant, and
        zero-length intervals are dropped). The oracle layer replays this
        check over finished traces so a future refactor of the event loop
        cannot silently emit overlapping or time-travelling intervals.
        """
        prev_end: Optional[float] = None
        for i, iv in enumerate(self.intervals):
            if iv.end <= iv.start:
                raise TraceError(
                    f"rank {self.rank}: interval {i} has non-positive "
                    f"duration: {iv}"
                )
            if prev_end is not None and iv.start != prev_end:
                raise TraceError(
                    f"rank {self.rank}: interval {i} opens at {iv.start} "
                    f"but its predecessor closed at {prev_end}"
                )
            prev_end = iv.end
        if self._closed and self._open_state is not None:  # pragma: no cover
            raise TraceError(f"rank {self.rank}: closed timeline left an open state")


class Trace:
    """A full application trace: one timeline per rank plus run metadata."""

    def __init__(self, n_ranks: int, label: str = "") -> None:
        if n_ranks <= 0:
            raise TraceError(f"n_ranks must be > 0, got {n_ranks}")
        self.label = label
        self.timelines: Dict[int, RankTimeline] = {
            r: RankTimeline(r) for r in range(n_ranks)
        }

    @property
    def n_ranks(self) -> int:
        return len(self.timelines)

    def __getitem__(self, rank: int) -> RankTimeline:
        try:
            return self.timelines[rank]
        except KeyError:
            raise TraceError(f"no rank {rank} in trace (n_ranks={self.n_ranks})") from None

    def __iter__(self) -> Iterable[RankTimeline]:
        return iter(self.timelines[r] for r in sorted(self.timelines))

    def transition(self, rank: int, time: float, state: Optional[RankState]) -> None:
        """Record a state transition for ``rank``."""
        self[rank].transition(time, state)

    def finish_all(self, time: float) -> None:
        """Close every still-open timeline at ``time``."""
        for tl in self.timelines.values():
            if not tl._closed:
                tl.finish(time)

    @property
    def total_time(self) -> float:
        """End of the latest timeline — the application's execution time."""
        return max((tl.end_time for tl in self.timelines.values()), default=0.0)

    def validate(self) -> None:
        """Validate every rank timeline (see :meth:`RankTimeline.validate`)."""
        for tl in self:
            tl.validate()
