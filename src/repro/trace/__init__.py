"""PARAVER-like tracing: per-rank state timelines and the paper's metrics.

The paper evaluates every experiment with two numbers derived from a
PARAVER trace: the *percentage of imbalance* (the maximum fraction of its
lifetime any rank spends waiting at synchronisation points) and the total
execution time. This subpackage records the same state decomposition
(compute / sync / communication / ...) from the simulated MPI runtime and
renders the same figures as ASCII Gantt charts.
"""

from repro.trace.events import RankState, StateInterval
from repro.trace.trace import Trace, RankTimeline
from repro.trace.stats import RankStats, TraceStats, compute_stats
from repro.trace.paraver import render_gantt, render_legend, trace_to_csv
from repro.trace.prv import render_prv, render_pcf, PRV_STATE_CODES
from repro.trace.analysis import (
    windowed_stats,
    bottleneck_timeline,
    drift_score,
    phase_breakdown,
)

__all__ = [
    "RankState",
    "StateInterval",
    "Trace",
    "RankTimeline",
    "RankStats",
    "TraceStats",
    "compute_stats",
    "render_gantt",
    "render_legend",
    "trace_to_csv",
    "render_prv",
    "render_pcf",
    "PRV_STATE_CODES",
    "windowed_stats",
    "bottleneck_timeline",
    "drift_score",
    "phase_breakdown",
]
