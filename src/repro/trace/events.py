"""Trace primitives: rank states and state intervals.

The state vocabulary mirrors what the paper's PARAVER screenshots colour:
dark grey = computing, light grey = waiting at a synchronisation point,
black = communication, white = initialisation. We add ``NOISE`` for time
stolen by the simulated OS and ``IDLE`` for after a rank finalises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TraceError

__all__ = ["RankState", "StateInterval"]


class RankState(enum.Enum):
    """What a rank is doing during an interval."""

    INIT = "init"  # application initialisation phase
    COMPUTE = "compute"  # useful work
    SYNC = "sync"  # spinning at a barrier / wait / recv
    COMM = "comm"  # transferring data
    FINAL = "final"  # finalisation phase
    NOISE = "noise"  # preempted by OS noise (daemon, interrupt handler)
    IDLE = "idle"  # finished, context idle

    @property
    def is_waiting(self) -> bool:
        """Counts toward the paper's 'waiting time' metric."""
        return self is RankState.SYNC

    @property
    def is_useful(self) -> bool:
        """Counts toward the paper's 'computing' percentage.

        The paper folds init/finalisation compute into the computing
        colour of its traces; we do the same.
        """
        return self in (RankState.COMPUTE, RankState.INIT, RankState.FINAL)

    @property
    def glyph(self) -> str:
        """One-character representation for ASCII Gantt rendering."""
        return {
            RankState.INIT: ".",
            RankState.COMPUTE: "#",
            RankState.SYNC: " ",
            RankState.COMM: "|",
            RankState.FINAL: "+",
            RankState.NOISE: "!",
            RankState.IDLE: "_",
        }[self]


@dataclass(frozen=True)
class StateInterval:
    """One contiguous span of a rank's timeline in a single state."""

    start: float
    end: float
    state: RankState

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TraceError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """Does this interval intersect [t0, t1)?"""
        return self.start < t1 and t0 < self.end

    def clipped(self, t0: float, t1: float) -> "StateInterval":
        """This interval restricted to [t0, t1]."""
        if not self.overlaps(t0, t1) and not (self.start == self.end and t0 <= self.start <= t1):
            raise TraceError(f"clip window [{t0}, {t1}] disjoint from {self}")
        return StateInterval(max(self.start, t0), min(self.end, t1), self.state)
