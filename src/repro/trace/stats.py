"""The paper's metrics, computed from a trace.

Paper section VII: *"we used two metrics: first, the percentage of
imbalance (computed as the maximum waiting time in percentage of the
processes in the MPI application); second, the total execution time of
the application."* Waiting time is the light-grey SYNC state of the
PARAVER traces; computing is the dark-grey state (into which the paper
folds init/finalisation work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.events import RankState
from repro.trace.trace import Trace
from repro.util.tables import TextTable

__all__ = ["RankStats", "TraceStats", "compute_stats"]


@dataclass(frozen=True)
class RankStats:
    """Per-rank decomposition of total run time, as fractions in [0, 1]."""

    rank: int
    compute_fraction: float
    sync_fraction: float
    comm_fraction: float
    noise_fraction: float
    idle_fraction: float

    @property
    def compute_percent(self) -> float:
        return self.compute_fraction * 100.0

    @property
    def sync_percent(self) -> float:
        return self.sync_fraction * 100.0


@dataclass(frozen=True)
class TraceStats:
    """Whole-application metrics (the paper's two, plus the breakdown)."""

    total_time: float
    ranks: Tuple[RankStats, ...]

    @property
    def imbalance_fraction(self) -> float:
        """Paper metric: maximum per-rank waiting-time fraction."""
        return max((r.sync_fraction for r in self.ranks), default=0.0)

    @property
    def imbalance_percent(self) -> float:
        return self.imbalance_fraction * 100.0

    @property
    def bottleneck_rank(self) -> int:
        """The rank with the *least* waiting time — the one the paper
        identifies as the bottleneck worth prioritising."""
        return min(self.ranks, key=lambda r: r.sync_fraction).rank

    @property
    def most_waiting_rank(self) -> int:
        """The rank that waits the most (the candidate resource donor)."""
        return max(self.ranks, key=lambda r: r.sync_fraction).rank

    def rank_stats(self, rank: int) -> RankStats:
        for r in self.ranks:
            if r.rank == rank:
                return r
        raise TraceError(f"no rank {rank} in stats")

    def as_table(
        self,
        priorities: Optional[Dict[int, int]] = None,
        cores: Optional[Dict[int, int]] = None,
        label: str = "",
    ) -> TextTable:
        """Paper-style characterisation table (like Tables IV-VI)."""
        table = TextTable(
            ["Proc", "Core", "P", "Comp %", "Sync %", "Imb %", "Exec. Time"],
            title=label or None,
        )
        for i, r in enumerate(self.ranks):
            table.add_row(
                [
                    f"P{r.rank + 1}",
                    "" if cores is None else str(cores.get(r.rank, "")),
                    "" if priorities is None else str(priorities.get(r.rank, "")),
                    f"{r.compute_percent:.2f}",
                    f"{r.sync_percent:.2f}",
                    f"{self.imbalance_percent:.2f}" if i == 0 else "",
                    f"{self.total_time:.2f}s" if i == 0 else "",
                ]
            )
        return table


def compute_stats(trace: Trace, window: Optional[Tuple[float, float]] = None) -> TraceStats:
    """Compute :class:`TraceStats` over the whole run or a time window.

    Fractions are of the *application's total time* (``trace.total_time``
    or the window length), matching the paper's tables, so a rank that
    finished early accrues IDLE for the remainder.
    """
    if window is None:
        t0, t1 = 0.0, trace.total_time
    else:
        t0, t1 = window
        if t1 <= t0:
            raise TraceError(f"empty stats window [{t0}, {t1}]")
    span = t1 - t0
    if span <= 0:
        # Degenerate (zero-duration) run: everything is trivially balanced.
        return TraceStats(
            total_time=0.0,
            ranks=tuple(
                RankStats(tl.rank, 0.0, 0.0, 0.0, 0.0, 0.0) for tl in trace
            ),
        )

    per_rank: List[RankStats] = []
    for tl in trace:
        intervals = tl.clipped(t0, t1) if window is not None else tl.intervals
        totals: Dict[RankState, float] = {}
        for iv in intervals:
            totals[iv.state] = totals.get(iv.state, 0.0) + iv.duration
        accounted = sum(totals.values())
        compute = (
            totals.get(RankState.COMPUTE, 0.0)
            + totals.get(RankState.INIT, 0.0)
            + totals.get(RankState.FINAL, 0.0)
        )
        per_rank.append(
            RankStats(
                rank=tl.rank,
                compute_fraction=compute / span,
                sync_fraction=totals.get(RankState.SYNC, 0.0) / span,
                comm_fraction=totals.get(RankState.COMM, 0.0) / span,
                noise_fraction=totals.get(RankState.NOISE, 0.0) / span,
                idle_fraction=(totals.get(RankState.IDLE, 0.0) + (span - accounted))
                / span,
            )
        )
    return TraceStats(total_time=span, ranks=tuple(per_rank))
