"""ASCII rendering of traces, in the spirit of the paper's PARAVER figures.

Each rank is one horizontal line; time runs left to right; each column is
one time bucket coloured by the state the rank spent the *majority* of
that bucket in. ``#`` is computing (the paper's dark grey), blank is
waiting (light grey), ``|`` is communication (black), ``.``/``+`` are the
init/finalisation phases, ``!`` is OS noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.events import RankState
from repro.trace.trace import Trace

__all__ = ["render_gantt", "render_legend", "trace_to_csv"]


def _bucket_state(
    timeline_intervals, t0: float, t1: float
) -> Optional[RankState]:
    """Majority state of one rank within [t0, t1)."""
    totals: Dict[RankState, float] = {}
    for iv in timeline_intervals:
        if iv.overlaps(t0, t1):
            c = iv.clipped(t0, t1)
            totals[c.state] = totals.get(c.state, 0.0) + c.duration
    if not totals:
        return None
    return max(totals.items(), key=lambda kv: kv[1])[0]


def render_gantt(
    trace: Trace,
    width: int = 100,
    window: Optional[Tuple[float, float]] = None,
    show_axis: bool = True,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    Parameters
    ----------
    width:
        Number of time buckets (output columns).
    window:
        Optional ``(t0, t1)`` zoom; defaults to the whole run.
    """
    if width < 2:
        raise TraceError(f"gantt width must be >= 2, got {width}")
    t0, t1 = window if window is not None else (0.0, trace.total_time)
    if t1 <= t0:
        raise TraceError(f"empty gantt window [{t0}, {t1}]")
    dt = (t1 - t0) / width

    lines: List[str] = []
    if trace.label:
        lines.append(trace.label)
    for tl in trace:
        cells = []
        for i in range(width):
            state = _bucket_state(tl.intervals, t0 + i * dt, t0 + (i + 1) * dt)
            cells.append(state.glyph if state is not None else "_")
        lines.append(f"P{tl.rank + 1} |" + "".join(cells) + "|")
    if show_axis:
        label0 = f"{t0:.2f}s"
        label1 = f"{t1:.2f}s"
        pad = max(0, width - len(label0) - len(label1))
        lines.append("    " + label0 + " " * pad + label1)
    return "\n".join(lines)


def render_legend() -> str:
    """Legend mapping glyphs to states."""
    parts = [f"{s.glyph!r}={s.value}" for s in RankState]
    return "legend: " + "  ".join(parts)


def trace_to_csv(trace: Trace) -> str:
    """Flatten the trace to CSV (``rank,start,end,state``) for external tools."""
    rows = ["rank,start,end,state"]
    for tl in trace:
        for iv in tl.intervals:
            rows.append(f"{tl.rank},{iv.start:.9f},{iv.end:.9f},{iv.state.value}")
    return "\n".join(rows) + "\n"
