"""Export traces in the PARAVER ``.prv`` format.

The paper's analysis tool is PARAVER (CEPBA/BSC). This module emits
simulated traces in PARAVER 2's text format so they can be opened in the
real tool (or wxParaver): a header line, then one *state record* per
interval::

    #Paraver (dd/mm/yy at hh:mm):total_ns:nNodes(cpus,..):nAppl:appl_list
    1:cpu:appl:task:thread:begin_ns:end_ns:state

State values follow the standard PARAVER semantic:

====  =================  ======================================
code  PARAVER label      our :class:`~repro.trace.events.RankState`
====  =================  ======================================
 0    Idle               IDLE
 1    Running            COMPUTE, INIT, FINAL
 3    Waiting a message  COMM
 5    Synchronization    SYNC
 15   Others (OS)        NOISE
====  =================  ======================================

A companion ``.pcf`` (config) naming the states is produced by
:func:`render_pcf` so colours match the paper's figures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TraceError
from repro.trace.events import RankState
from repro.trace.trace import Trace

__all__ = ["PRV_STATE_CODES", "render_prv", "render_pcf"]

#: RankState -> PARAVER state code.
PRV_STATE_CODES: Dict[RankState, int] = {
    RankState.IDLE: 0,
    RankState.COMPUTE: 1,
    RankState.INIT: 1,
    RankState.FINAL: 1,
    RankState.COMM: 3,
    RankState.SYNC: 5,
    RankState.NOISE: 15,
}

_PCF_LABELS = {
    0: "Idle",
    1: "Running",
    3: "Waiting a message",
    5: "Synchronization",
    15: "Others (OS noise)",
}


def _ns(seconds: float) -> int:
    return int(round(seconds * 1e9))


def render_prv(
    trace: Trace,
    n_cpus: Optional[int] = None,
    rank_to_cpu: Optional[Dict[int, int]] = None,
    timestamp: str = "01/01/08 at 00:00",
) -> str:
    """Render ``trace`` as the contents of a ``.prv`` file.

    Parameters
    ----------
    n_cpus:
        CPUs of the (single) simulated node; defaults to the rank count.
    rank_to_cpu:
        Optional physical placement; PARAVER cpu ids are 1-based.
    timestamp:
        Header timestamp; fixed by default so exports are reproducible.
    """
    if trace.total_time <= 0:
        raise TraceError("cannot export an empty trace")
    n_ranks = trace.n_ranks
    cpus = n_cpus if n_cpus is not None else n_ranks
    if cpus <= 0:
        raise TraceError(f"n_cpus must be > 0, got {cpus}")
    total_ns = _ns(trace.total_time)

    # Application list: one application of n_ranks tasks, 1 thread each,
    # each task on its node (we model one node).
    task_list = ",".join(f"1:{1}" for _ in range(n_ranks))
    header = (
        f"#Paraver ({timestamp}):{total_ns}_ns:1({cpus}):1:"
        f"{n_ranks}({task_list})"
    )

    lines = [header]
    for tl in trace:
        rank = tl.rank
        cpu = (rank_to_cpu or {}).get(rank, rank) + 1  # 1-based
        task = rank + 1
        for iv in tl.intervals:
            code = PRV_STATE_CODES[iv.state]
            lines.append(
                f"1:{cpu}:1:{task}:1:{_ns(iv.start)}:{_ns(iv.end)}:{code}"
            )
    return "\n".join(lines) + "\n"


def render_pcf() -> str:
    """The ``.pcf`` companion: state names/colours for the viewer."""
    lines = [
        "DEFAULT_OPTIONS",
        "",
        "LEVEL               THREAD",
        "UNITS               NANOSEC",
        "",
        "STATES",
    ]
    for code in sorted(_PCF_LABELS):
        lines.append(f"{code}    {_PCF_LABELS[code]}")
    lines += [
        "",
        "STATES_COLOR",
        "0    {117,195,255}",
        "1    {0,0,255}",
        "3    {255,0,0}",
        "5    {255,255,102}",
        "15   {170,170,170}",
    ]
    return "\n".join(lines) + "\n"
