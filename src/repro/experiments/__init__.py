"""Experiment definitions and runners — one per paper table/figure.

Each suite encodes the paper's cases (mapping + priorities), calibrates
its workload so the *reference case A matches the paper's compute-share
profile by construction*, runs all cases, and reports measured vs. paper
values. The benchmarks under ``benchmarks/`` are thin wrappers around
these runners.
"""

from repro.experiments.allocation import allocation_axes_table
from repro.experiments.cases import (
    ExperimentCase,
    Suite,
    metbench_suite,
    btmz_suite,
    siesta_suite,
)
from repro.experiments.runner import CaseResult, run_case, run_suite, comparison_table
from repro.experiments.table2 import decode_cycles_table, measured_decode_shares
from repro.experiments.table3 import special_cases_table
from repro.experiments.figures import figure1_traces, case_trace
from repro.experiments.report import suite_report, full_report

__all__ = [
    "allocation_axes_table",
    "ExperimentCase",
    "Suite",
    "metbench_suite",
    "btmz_suite",
    "siesta_suite",
    "CaseResult",
    "run_case",
    "run_suite",
    "comparison_table",
    "decode_cycles_table",
    "measured_decode_shares",
    "special_cases_table",
    "figure1_traces",
    "case_trace",
    "suite_report",
    "full_report",
]
