"""The allocation-axes experiment: which lever buys more, mapping or priority?

The paper tunes priorities on a fixed thread-to-core mapping; the
allocation-policy literature fixes priorities and tunes the mapping.
:func:`allocation_axes_table` runs both restrictions of the joint
(mapping × priority) search plus the joint optimum itself on one
workload, so the table answers the question the two communities argue
about — per axis, in seconds, against the same default configuration:

``default``
    Identity mapping, every context at MEDIUM — the ST reference.
``best mapping @ MEDIUM``
    The mapping axis alone: every symmetry-pruned canonical mapping
    (:func:`repro.core.candidate_mappings`), priorities untouched.
``best priority @ identity``
    The priority axis alone — the paper's procedure, automated
    (:func:`repro.core.exhaustive_priority_search` on the identity
    mapping).
``staged heuristic``
    :func:`repro.core.mapping_then_priority_search`: the decode-pressure
    pairing picks the mapping for free, then priorities are searched on
    it alone. How much of the joint optimum the cheap heuristic recovers.
``joint best``
    The full cross product (:func:`repro.core.joint_search`) — the upper
    bound both restrictions chase.

By construction ``joint best`` dominates both single-axis rows, so the
interesting numbers are the *gaps*: how far each restriction (and the
heuristic) lands from the joint optimum.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core import (
    exhaustive_priority_search,
    joint_search,
    mapping_then_priority_search,
)
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.scenarios import ScenarioSpec
from repro.util.tables import TextTable

__all__ = ["allocation_axes_table"]

#: The default experiment workload: the golden joint search's skewed
#: 4-rank MetBench profile (tests/golden/joint-search.search.json).
DEFAULT_WORKS = (8.0e8, 2.4e9, 1.2e9, 2.0e9)


def _row(label: str, assignment, total_time: float, base_time: float):
    mapping = ",".join(f"{r}>{c}" for r, c in assignment.mapping.rank_to_cpu)
    prios = ",".join(str(p) for _, p in assignment.priorities)
    gain = (base_time - total_time) / base_time * 100.0
    return [label, mapping, prios, f"{total_time:.4f}", f"{gain:+.2f}"]


def allocation_axes_table(
    works: Sequence[float] = DEFAULT_WORKS,
    iterations: int = 2,
    profile: str = "hpc",
    levels: Tuple[int, ...] = (4, 5, 6),
    max_gap: int = 2,
    seed: int = 0,
    system: Optional[System] = None,
) -> TextTable:
    """Best-mapping vs best-priority vs joint-best on one workload."""
    spec = ScenarioSpec(
        name="allocation-axes",
        kind="metbench",
        works=tuple(float(w) for w in works),
        iterations=iterations,
        profile=profile,
        seed=seed,
    )
    if system is None:
        system = System(SystemConfig(seed=seed))
    identity = ProcessMapping.identity(spec.n_ranks)

    baseline = system.run(
        list(spec.programs()), mapping=identity, label="allocation.default"
    )
    base_time = baseline.total_time

    # The mapping axis alone: joint search with the priority dimension
    # collapsed to the single MEDIUM level.
    mapping_only = joint_search(
        system, spec.programs, n_ranks=spec.n_ranks, levels=(4,), max_gap=0,
        keep_top=1,
    )
    priority_only = exhaustive_priority_search(
        system, spec.programs, identity, levels=levels, max_gap=max_gap,
        keep_top=1,
    )
    staged = mapping_then_priority_search(
        system, spec.programs, spec.works, profiles=profile,
        levels=levels, max_gap=max_gap, keep_top=1,
    )
    joint = joint_search(
        system, spec.programs, n_ranks=spec.n_ranks, levels=levels,
        max_gap=max_gap, keep_top=1,
    )

    table = TextTable(
        ["configuration", "mapping", "priorities", "time [s]", "vs default %"],
        title=(
            f"allocation axes: mapping vs priority vs joint "
            f"({spec.n_ranks} ranks, levels {'/'.join(map(str, levels))})"
        ),
    )
    table.add_row(
        ["default (identity, MEDIUM)",
         ",".join(f"{r}>{r}" for r in range(spec.n_ranks)),
         ",".join("4" for _ in range(spec.n_ranks)),
         f"{base_time:.4f}", "+0.00"]
    )
    table.add_row(_row("best mapping @ MEDIUM",
                       mapping_only.best, mapping_only.best_time, base_time))
    table.add_row(_row("best priority @ identity",
                       priority_only.best, priority_only.best_time, base_time))
    table.add_row(_row("staged heuristic",
                       staged.best, staged.best_time, base_time))
    table.add_row(_row("joint best",
                       joint.best, joint.best_time, base_time))
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(allocation_axes_table().render())
