"""Report generation: the EXPERIMENTS.md content, programmatically.

``python -m repro.experiments.report`` regenerates the full paper-vs-
measured report on stdout; the benchmarks print the same tables per
experiment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.allocation import allocation_axes_table
from repro.experiments.cases import Suite, btmz_suite, metbench_suite, siesta_suite
from repro.experiments.figures import figure1_traces
from repro.experiments.runner import CaseResult, comparison_table, run_suite
from repro.experiments.table2 import decode_cycles_table, measured_decode_shares
from repro.experiments.table3 import special_cases_table
from repro.machine.system import System, SystemConfig
from repro.util.tables import TextTable

__all__ = ["suite_report", "full_report"]


def suite_report(
    suite: Suite,
    system: Optional[System] = None,
    cases: Optional[Sequence[str]] = None,
) -> str:
    """Run a suite and render its comparison + per-case rank breakdowns."""
    results = run_suite(suite, system=system, cases=cases)
    parts: List[str] = [comparison_table(results).render()]
    for r in results:
        prios = r.case.priorities or {
            rank: 4 for rank in range(r.case.n_ranks)
        }
        cores = {
            rank: r.case.mapping.core_of(rank) + 1 for rank in range(r.case.n_ranks)
        }
        parts.append(
            r.run.stats.as_table(
                priorities=prios, cores=cores, label=f"case {r.case.name}"
            ).render()
        )
    return "\n\n".join(parts)


def _decode_share_table() -> TextTable:
    table = TextTable(
        ["diff", "expected A", "expected B", "measured A", "measured B"],
        title="Table II check: decode shares, law vs cycle simulator",
    )
    for diff, ea, eb, ma, mb in measured_decode_shares():
        table.add_row([diff, f"{ea:.4f}", f"{eb:.4f}", f"{ma:.4f}", f"{mb:.4f}"])
    return table


def full_report(fast: bool = False) -> str:
    """Everything: Tables II/III, Figure 1, and the three application suites.

    ``fast`` shrinks iteration counts for quick smoke runs.
    """
    system = System(SystemConfig())
    parts: List[str] = []
    parts.append(decode_cycles_table().render())
    parts.append(special_cases_table().render())
    parts.append(_decode_share_table().render())

    chart_a, chart_b, before, after = figure1_traces(system)
    parts.append(
        "Figure 1(a) — imbalanced "
        f"(exec {before.total_time:.2f}s, imb {before.imbalance_percent:.1f}%):\n"
        + chart_a
    )
    parts.append(
        "Figure 1(b) — rebalanced "
        f"(exec {after.total_time:.2f}s, imb {after.imbalance_percent:.1f}%):\n"
        + chart_b
    )

    parts.append(allocation_axes_table(system=system).render())

    mb = metbench_suite(iterations=3 if fast else 10)
    bt = btmz_suite(iterations=10 if fast else 50)
    si = siesta_suite(n_iterations=10 if fast else 40,
                      time_scale=0.1 if fast else 1.0)
    for suite in (mb, bt, si):
        parts.append(suite_report(suite, system=system))
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import sys

    print(full_report(fast="--fast" in sys.argv))
