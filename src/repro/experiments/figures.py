"""Figure reproductions: ASCII traces in place of PARAVER screenshots.

* Figure 1 — the synthetic expected-effect pair: an imbalanced 4-rank
  application before and after giving the bottleneck more resources.
* Figures 2-4 — per-case traces of MetBench / BT-MZ / SIESTA; use
  :func:`case_trace` with the corresponding suite and case name.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.cases import ExperimentCase, Suite
from repro.experiments.runner import run_case
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RunResult
from repro.trace.paraver import render_gantt, render_legend
from repro.workloads.generators import barrier_loop_programs, one_heavy_works

__all__ = ["figure1_traces", "case_trace"]


def figure1_traces(
    system: Optional[System] = None,
    width: int = 90,
    iterations: int = 3,
    heavy_factor: float = 3.0,
) -> Tuple[str, str, RunResult, RunResult]:
    """The paper's Figure 1: (a) imbalanced vs (b) rebalanced.

    Rank 0 (P1) carries ``heavy_factor`` times the work of the others; in
    (b) it is favoured by a priority gap of 1 over its core sibling P2 —
    enough to speed P1 up without making the penalised P2 the new
    bottleneck (a gap of 2 would overshoot at this work ratio, the
    paper's MetBench case-D lesson).
    Returns the two rendered charts plus the underlying results.
    """
    system = system or System(SystemConfig())
    works = one_heavy_works(4, base=2e9, heavy_factor=heavy_factor, heavy_rank=0)
    mapping = ProcessMapping.identity(4)

    before = system.run(
        barrier_loop_programs(works, iterations=iterations),
        mapping=mapping,
        label="figure1a: imbalanced",
    )
    after = system.run(
        barrier_loop_programs(works, iterations=iterations),
        mapping=mapping,
        priorities={0: 5, 1: 4, 2: 4, 3: 4},
        label="figure1b: P1 given more hardware resources",
    )
    chart_a = render_gantt(before.trace, width=width) + "\n" + render_legend()
    chart_b = render_gantt(after.trace, width=width) + "\n" + render_legend()
    return chart_a, chart_b, before, after


def case_trace(
    suite: Suite,
    case_name: str,
    system: Optional[System] = None,
    width: int = 90,
) -> Tuple[str, RunResult]:
    """One panel of Figures 2/3/4: the trace of a named case."""
    system = system or System(SystemConfig())
    case = suite.case(case_name)
    result = run_case(system, suite, case)
    chart = (
        render_gantt(result.run.trace, width=width)
        + "\n"
        + render_legend()
    )
    return chart, result.run
