"""Sensitivity analysis: do the conclusions survive the model knobs?

A simulation-based reproduction is only as good as its robustness: if the
paper's qualitative results (case C beats A, case D loses, the gap cliff)
held only at one magic value of a calibration constant, they would be an
artefact of tuning, not of the mechanism. This harness re-runs a suite's
key cases across a sweep of one :class:`~repro.smt.analytic.
AnalyticModelConfig` field and reports how the outcomes move.

Used by ``benchmarks/bench_ablation_sensitivity.py`` and directly::

    from repro.experiments.sensitivity import sweep_model_knob
    rows = sweep_model_knob("congestion_cycles", [75, 150, 300])
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.cases import Suite, metbench_suite
from repro.experiments.runner import run_suite
from repro.machine.system import System, SystemConfig
from repro.smt.analytic import AnalyticModelConfig
from repro.util.tables import TextTable

__all__ = ["KnobOutcome", "sweep_model_knob", "sensitivity_table", "conclusions_hold"]


@dataclass(frozen=True)
class KnobOutcome:
    """Suite outcomes at one knob value."""

    knob: str
    value: float
    exec_seconds: Tuple[Tuple[str, float], ...]  # (case name, time)

    @property
    def times(self) -> Dict[str, float]:
        return dict(self.exec_seconds)

    def improvement(self, case: str, reference: str = "A") -> float:
        """Percent improvement of ``case`` over ``reference`` (positive
        = faster)."""
        t = self.times
        return (t[reference] - t[case]) / t[reference] * 100.0


def sweep_model_knob(
    knob: str,
    values: Sequence[float],
    suite_factory: Optional[Callable[[], Suite]] = None,
    cases: Sequence[str] = ("A", "C", "D"),
) -> List[KnobOutcome]:
    """Run the suite's ``cases`` at each value of one analytic-model knob.

    The workload is **re-calibrated per knob value** (the suite factory
    sees the modified model through the default model construction), so
    the comparison isolates the knob's effect on the *predictions* for
    cases B-D, exactly as the calibration contract intends.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one knob value")
    if knob not in {f.name for f in dataclasses.fields(AnalyticModelConfig)}:
        raise ConfigurationError(
            f"unknown AnalyticModelConfig field {knob!r}"
        )
    outcomes: List[KnobOutcome] = []
    for value in values:
        analytic = dataclasses.replace(AnalyticModelConfig(), **{knob: value})
        system = System(SystemConfig(analytic=analytic))
        if suite_factory is None:
            suite = metbench_suite(iterations=4, model=system.model)
        else:
            suite = suite_factory()
        results = run_suite(suite, system, cases=list(cases))
        outcomes.append(
            KnobOutcome(
                knob=knob,
                value=float(value),
                exec_seconds=tuple(
                    (r.case.name, r.measured_exec) for r in results
                ),
            )
        )
    return outcomes


def sensitivity_table(outcomes: Sequence[KnobOutcome]) -> TextTable:
    """Render a sweep as a paper-style table."""
    if not outcomes:
        raise ConfigurationError("no outcomes to tabulate")
    case_names = [name for name, _ in outcomes[0].exec_seconds]
    headers = [outcomes[0].knob] + [f"{c} exec" for c in case_names]
    if "C" in case_names and "A" in case_names:
        headers.append("C vs A")
    if "D" in case_names and "A" in case_names:
        headers.append("D vs A")
    table = TextTable(headers, title=f"Sensitivity: {outcomes[0].knob}")
    for o in outcomes:
        row = [f"{o.value:g}"] + [f"{t:.2f}s" for _, t in o.exec_seconds]
        if "C" in o.times and "A" in o.times:
            row.append(f"{-o.improvement('C'):+.1f}%")
        if "D" in o.times and "A" in o.times:
            row.append(f"{-o.improvement('D'):+.1f}%")
        table.add_row(row)
    return table


def conclusions_hold(outcomes: Sequence[KnobOutcome]) -> bool:
    """The paper's qualitative claims at every knob value.

    * the balanced case C is at least as fast as the reference A, and
    * the over-boosted case D is slower than A.
    """
    for o in outcomes:
        t = o.times
        if "C" in t and "A" in t and t["C"] > t["A"] * 1.005:
            return False
        if "D" in t and "A" in t and t["D"] <= t["A"]:
            return False
    return True
