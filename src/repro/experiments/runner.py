"""Run experiment suites and build paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.cases import ExperimentCase, Suite
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RunResult
from repro.scenarios.registry import engine_for_model, get_engine
from repro.util.stats import percent_change
from repro.util.tables import TextTable

__all__ = ["CaseResult", "run_case", "run_suite", "comparison_table"]


@dataclass(frozen=True)
class CaseResult:
    """One case's measured outcome, paired with the paper's numbers."""

    suite: str
    case: ExperimentCase
    run: RunResult

    @property
    def measured_exec(self) -> float:
        return self.run.total_time

    @property
    def measured_imbalance(self) -> float:
        return self.run.imbalance_percent

    @property
    def measured_comp_percent(self) -> List[float]:
        return [r.compute_percent for r in self.run.stats.ranks]


def run_case(
    system: System,
    suite: Suite,
    case: ExperimentCase,
    check_invariants: bool = False,
) -> CaseResult:
    """Execute one case of a suite on ``system``.

    The case's :class:`~repro.scenarios.ScenarioSpec` is dispatched to
    the engine that realises ``system``'s model knob (analytic model ->
    "fluid", cycle model -> "cycle"), running on the caller's ``system``
    so warm model caches and loaded throughput tables are reused across
    a suite.

    ``check_invariants=True`` sweeps the oracle layer's run/trace
    invariants over the finished result (strict: the first violation
    raises) — the cheap post-hoc mode, independent of the runtime's own
    ``RuntimeConfig.check_invariants`` live hooks.
    """
    engine = get_engine(engine_for_model(system.config.model))
    result = engine.run(
        case.spec,
        label=f"{suite.name}.{case.name}",
        system=system,
    )
    if check_invariants:
        from repro.oracle.checker import verify_run

        verify_run(result.run)
    return CaseResult(suite.name, case, result.run)


def run_suite(
    suite: Suite,
    system: Optional[System] = None,
    cases: Optional[Sequence[str]] = None,
    check_invariants: bool = False,
) -> List[CaseResult]:
    """Execute all (or the named) cases of a suite, in definition order."""
    system = system or System(SystemConfig())
    wanted = set(cases) if cases is not None else None
    results: List[CaseResult] = []
    for case in suite.cases:
        if wanted is not None and case.name not in wanted:
            continue
        results.append(run_case(system, suite, case, check_invariants=check_invariants))
    if not results:
        raise ConfigurationError(f"no cases selected from suite {suite.name!r}")
    # Cycle-model systems with a configured table path persist whatever
    # new measurements this suite produced, so the next invocation
    # starts warm.
    system.save_throughput_table()
    return results


def comparison_table(results: Sequence[CaseResult], reference: str = "A") -> TextTable:
    """Paper-vs-measured table: exec time, imbalance, and the improvement
    over the reference case, for every case."""
    if not results:
        raise ConfigurationError("no results to tabulate")
    by_name: Dict[str, CaseResult] = {r.case.name: r for r in results}
    ref = by_name.get(reference)
    table = TextTable(
        [
            "Case",
            "Paper exec",
            "Sim exec",
            "Paper imb%",
            "Sim imb%",
            "Paper vs A",
            "Sim vs A",
        ],
        title=f"{results[0].suite}: paper vs simulated",
    )
    for r in results:
        if ref is not None and r.case.name != reference and ref.case.paper_exec_seconds:
            paper_delta = percent_change(
                r.case.paper_exec_seconds, ref.case.paper_exec_seconds
            )
            sim_delta = percent_change(r.measured_exec, ref.measured_exec)
            paper_delta_s = f"{paper_delta:+.2f}%"
            sim_delta_s = f"{sim_delta:+.2f}%"
        else:
            paper_delta_s = sim_delta_s = "--"
        table.add_row(
            [
                r.case.name,
                f"{r.case.paper_exec_seconds:.2f}s",
                f"{r.measured_exec:.2f}s",
                f"{r.case.paper_imbalance_percent:.2f}",
                f"{r.measured_imbalance:.2f}",
                paper_delta_s,
                sim_delta_s,
            ]
        )
    return table
