"""Table III reproduction: the special-case arbitration regimes."""

from __future__ import annotations

from typing import List, Tuple

from repro.smt.decode import ArbitrationMode, decode_allocation
from repro.util.tables import TextTable

__all__ = ["special_cases_table", "SPECIAL_CASES"]

#: (prio_a, prio_b) pairs covering every row of paper Table III, with the
#: expected qualitative regime.
SPECIAL_CASES: List[Tuple[int, int, ArbitrationMode, str]] = [
    (4, 4, ArbitrationMode.NORMAL,
     "decode cycles given per thread priorities (Table II)"),
    (1, 4, ArbitrationMode.LEFTOVER,
     "ThreadB gets all execution resources; ThreadA takes what is left over"),
    (1, 1, ArbitrationMode.POWER_SAVE,
     "power save mode; both threads receive 1 of 64 decode cycles"),
    (0, 4, ArbitrationMode.SINGLE_THREAD,
     "processor in ST mode; ThreadB receives all the resources"),
    (0, 1, ArbitrationMode.SINGLE_THREAD_SLOW,
     "1 of 32 cycles are given to ThreadB"),
    (0, 0, ArbitrationMode.STOPPED, "processor is stopped"),
]


def special_cases_table() -> TextTable:
    """Render Table III from the arbitration law (verified in tests)."""
    table = TextTable(
        ["Thr.A", "Thr.B", "Mode", "Share A", "Share B", "Action"],
        title="Table III: resource allocation when priorities are 0 or 1",
    )
    for pa, pb, expected_mode, action in SPECIAL_CASES:
        alloc = decode_allocation(pa, pb)
        assert alloc.mode is expected_mode, (pa, pb, alloc.mode)
        table.add_row(
            [
                pa,
                pb,
                alloc.mode.value,
                f"{alloc.share_a:.4f}",
                f"{alloc.share_b:.4f}",
                action,
            ]
        )
    return table
