"""Table II reproduction: decode-cycle allocation vs. priority difference.

Two outputs: the *architectural* table straight from the arbitration law
(what the paper prints), and the *measured* decode shares from the cycle
simulator, which must agree — that agreement is the evidence that the
pipeline model implements the mechanism it claims to.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.smt.decode import decode_allocation, slice_length
from repro.smt.instructions import BASE_PROFILES
from repro.smt.throughput import ThroughputTable
from repro.util.tables import TextTable

__all__ = ["decode_cycles_table", "measured_decode_shares", "PRIORITY_PAIRS"]

#: Priority pairs realising differences 0..4 with both priorities > 1
#: (the Table II regime); A is the favoured thread.
PRIORITY_PAIRS: Dict[int, Tuple[int, int]] = {
    0: (4, 4),
    1: (5, 4),
    2: (6, 4),
    3: (6, 3),
    4: (6, 2),
}


def decode_cycles_table() -> TextTable:
    """The architectural Table II (exact, from the arbitration law)."""
    table = TextTable(
        ["Priority difference (X-Y)", "R", "Decode cycles for A", "Decode cycles for B"],
        title="Table II: decode cycles allocation",
    )
    for diff, (pa, pb) in sorted(PRIORITY_PAIRS.items()):
        r = slice_length(pa, pb)
        alloc = decode_allocation(pa, pb)
        table.add_row([diff, r, alloc.cycles_a, alloc.cycles_b])
    return table


def measured_decode_shares(
    measure_cycles: int = 20_000, warmup_cycles: int = 2_000, seed: int = 0
) -> List[Tuple[int, float, float, float, float]]:
    """Decode shares measured by the cycle pipeline per priority diff.

    Returns ``(diff, expected_a, expected_b, measured_a, measured_b)``
    rows, where expected values come from the arbitration law. Measured
    shares match exactly when both threads always have work (they do:
    both contexts run a decode-hungry profile).
    """
    table = ThroughputTable(
        warmup_cycles=warmup_cycles, measure_cycles=measure_cycles, seed=seed
    )
    profile = BASE_PROFILES["hpc"]
    rows = []
    for diff, (pa, pb) in sorted(PRIORITY_PAIRS.items()):
        alloc = decode_allocation(pa, pb)
        res = table.measure(profile, profile, pa, pb)
        rows.append(
            (diff, alloc.share_a, alloc.share_b, res.decode_share_a, res.decode_share_b)
        )
    return rows
