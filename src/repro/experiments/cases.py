"""The paper's experiment cases, with their reported values.

Every suite (MetBench / BT-MZ / SIESTA) is built the same way:

* the workload's per-rank work is **calibrated from the paper's case-A
  compute percentages and total time** at the throughput the model
  predicts for the reference configuration — so case A reproduces the
  paper's compute-share *shape* by construction, and
* cases B-D rerun the *same* workload under the paper's mappings and
  priorities — those outcomes are genuine predictions of the simulator.

Each case is a :class:`~repro.scenarios.ScenarioSpec` — the canonical,
fingerprintable run description the engine registry executes — with the
paper-reported numbers riding along for the comparison tables in
EXPERIMENTS.md. The suite factories here are exactly the calibration
step: they turn paper percentages into concrete spec works/params.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping
from repro.mpi.process import RankProgram
from repro.scenarios.spec import ScenarioSpec
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.util.units import POWER5_FREQ_HZ
from repro.workloads.base import works_for_targets
from repro.workloads.siesta import SiestaConfig

__all__ = ["ExperimentCase", "Suite", "metbench_suite", "btmz_suite", "siesta_suite"]


def _prio_tuple(
    priorities: Optional[Mapping[int, int]],
) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(priorities.items())) if priorities else ()


@dataclass(frozen=True)
class ExperimentCase:
    """One row group of a paper table: a runnable spec plus paper values.

    The configuration itself (workload, mapping, priorities) lives in
    ``spec``; the legacy ``mapping``/``priorities``/``n_ranks`` accessors
    are views over it so report/benchmark code reads one source of truth.
    """

    name: str  # "A", "B", "C", "D", "ST"
    spec: ScenarioSpec
    paper_exec_seconds: float
    paper_imbalance_percent: float
    paper_comp_percent: Tuple[float, ...] = ()
    description: str = ""

    @property
    def mapping(self) -> ProcessMapping:
        return self.spec.mapping_obj()

    #: rank -> priority; None = defaults (all MEDIUM).
    @property
    def priorities(self) -> Optional[Dict[int, int]]:
        return self.spec.priority_dict()

    @property
    def n_ranks(self) -> int:
        return self.spec.n_ranks


@dataclass(frozen=True)
class Suite:
    """A full table's worth of cases sharing one calibrated workload."""

    name: str
    cases: Tuple[ExperimentCase, ...]
    reference_case: str = "A"

    def case(self, name: str) -> ExperimentCase:
        for c in self.cases:
            if c.name == name:
                return c
        raise ConfigurationError(f"suite {self.name!r} has no case {name!r}")

    def programs(self, case: ExperimentCase) -> List[RankProgram]:
        """Fresh (single-use) rank programs for one run of ``case``."""
        return case.spec.programs()

    def specs(self) -> Tuple[ScenarioSpec, ...]:
        return tuple(c.spec for c in self.cases)


def _pair_rate(profile_name: str, model: Optional[AnalyticThroughputModel]) -> float:
    """Instructions/second of one thread when its core runs two copies of
    the profile at default priorities — the reference-case operating point."""
    model = model or AnalyticThroughputModel()
    p = BASE_PROFILES[profile_name]
    ipc, _ = model.core_ipc(p, p, 4, 4)
    return ipc * POWER5_FREQ_HZ


def _spin_rate(profile_name: str, model: Optional[AnalyticThroughputModel]) -> float:
    """Instructions/second of a thread whose core sibling busy-waits."""
    model = model or AnalyticThroughputModel()
    p = BASE_PROFILES[profile_name]
    ipc, _ = model.core_ipc(p, BASE_PROFILES["spin"], 4, 4)
    return ipc * POWER5_FREQ_HZ


def _solo_rate(profile_name: str, model: Optional[AnalyticThroughputModel]) -> float:
    """Instructions/second of a thread alone on its core (ST mode)."""
    model = model or AnalyticThroughputModel()
    p = BASE_PROFILES[profile_name]
    ipc, _ = model.core_ipc(p, None, 7, 0)
    return ipc * POWER5_FREQ_HZ


def _corun_rates(
    profile_name: str,
    comp_fractions: Sequence[float],
    model: Optional[AnalyticThroughputModel],
) -> List[float]:
    """Per-rank reference-case rates under the identity mapping.

    Rank *r*'s core sibling computes a fraction ``c_sib`` of the run and
    busy-waits the rest, so rank *r*'s mean rate blends the work-work and
    work-spin operating points — the blend that makes the case-A
    calibration land on the paper's total time.
    """
    pair = _pair_rate(profile_name, model)
    spin = _spin_rate(profile_name, model)
    rates: List[float] = []
    n = len(comp_fractions)
    for r in range(n):
        sib = r + 1 if r % 2 == 0 else r - 1
        c_sib = comp_fractions[sib] if 0 <= sib < n else 1.0
        rates.append(c_sib * pair + (1.0 - c_sib) * spin)
    return rates


# --------------------------------------------------------------------------------
# MetBench — paper Table IV / Figure 2
# --------------------------------------------------------------------------------

#: Paper Table IV, case A: per-rank compute percentages and totals.
METBENCH_PAPER_COMP_A = (24.32, 98.99, 24.31, 99.99)
METBENCH_PAPER_EXEC_A = 81.64


def metbench_suite(
    iterations: int = 10,
    load: str = "hpc",
    model: Optional[AnalyticThroughputModel] = None,
) -> Suite:
    """MetBench cases A-D on the identity mapping.

    The paper introduces imbalance by giving the worker on one context of
    each core a ~4x larger load than its sibling; priorities per case:
    A (4,4,4,4), B (5,6,5,6), C (4,6,4,6), D (3,6,3,6).
    """
    comp = [c / 100.0 for c in METBENCH_PAPER_COMP_A]
    rates = _corun_rates(load, comp, model)
    totals = works_for_targets(comp, METBENCH_PAPER_EXEC_A, rates)
    works = tuple(w / iterations for w in totals)

    def spec(case: str, priorities: Optional[Dict[int, int]]) -> ScenarioSpec:
        return ScenarioSpec(
            name=f"metbench-{case}",
            kind="metbench",
            works=works,
            iterations=iterations,
            profile=load,
            priorities=_prio_tuple(priorities),
        )

    cases = (
        ExperimentCase(
            "A", spec("A", None), 81.64, 75.69, METBENCH_PAPER_COMP_A,
            "reference: default priorities",
        ),
        ExperimentCase(
            "B", spec("B", {0: 5, 1: 6, 2: 5, 3: 6}), 76.98, 48.82,
            (51.16, 99.82, 51.18, 99.98), "gap 1 toward the heavy workers",
        ),
        ExperimentCase(
            "C", spec("C", {0: 4, 1: 6, 2: 4, 3: 6}), 74.90, 1.96,
            (98.96, 98.56, 97.01, 98.37), "gap 2: the paper's best MetBench case",
        ),
        ExperimentCase(
            "D", spec("D", {0: 3, 1: 6, 2: 3, 3: 6}), 95.71, 26.62,
            (99.87, 73.25, 99.72, 73.25), "gap 3: imbalance reversed, slower than A",
        ),
    )
    return Suite("metbench", cases)


# --------------------------------------------------------------------------------
# BT-MZ — paper Table V / Figure 3
# --------------------------------------------------------------------------------

BTMZ_PAPER_COMP_A = (17.63, 28.91, 66.47, 99.72)
BTMZ_PAPER_EXEC_A = 81.64
BTMZ_PAPER_COMP_ST = (49.33, 99.46)
BTMZ_PAPER_EXEC_ST = 108.32


#: Share of the reference run spent in BT-MZ's initialisation phase (the
#: white leading bars of Figure 3).
BTMZ_INIT_SHARE = 0.03


def btmz_suite(
    iterations: int = 50,
    profile: str = "cfd",
    model: Optional[AnalyticThroughputModel] = None,
) -> Suite:
    """BT-MZ cases ST, A-D.

    Case A runs ranks in place (Pi on CPUi); cases B-D use the paper's
    re-pairing (P1 with P4, P2 with P3). The ST case runs the 2-rank
    decomposition with one rank per core (sibling contexts idle).
    """
    # Body work: the compute share net of the (balanced) init phase.
    comp4 = [max(0.01, c / 100.0 - BTMZ_INIT_SHARE) for c in BTMZ_PAPER_COMP_A]
    rates4 = _corun_rates(profile, comp4, model)
    totals4 = works_for_targets(comp4, BTMZ_PAPER_EXEC_A, rates4)
    works4 = tuple(w / iterations for w in totals4)
    init4 = BTMZ_INIT_SHARE * BTMZ_PAPER_EXEC_A * _pair_rate(profile, model)

    rate_st = _solo_rate(profile, model)
    comp2 = [max(0.01, c / 100.0 - BTMZ_INIT_SHARE) for c in BTMZ_PAPER_COMP_ST]
    totals2 = works_for_targets(comp2, BTMZ_PAPER_EXEC_ST, rate_st)
    works2 = tuple(w / iterations for w in totals2)
    init2 = BTMZ_INIT_SHARE * BTMZ_PAPER_EXEC_ST * rate_st

    def spec(
        case: str,
        mapping: str,
        priorities: Optional[Dict[int, int]],
        works: Tuple[float, ...],
        init_work: float,
    ) -> ScenarioSpec:
        return ScenarioSpec(
            name=f"btmz-{case}",
            kind="btmz",
            works=works,
            iterations=iterations,
            profile=profile,
            mapping=mapping,
            priorities=_prio_tuple(priorities),
            params={"init_factor": init_work / (sum(works) / len(works))},
        )

    def spec4(case, mapping, priorities):
        return spec(case, mapping, priorities, works4, init4)

    cases = (
        ExperimentCase(
            "ST", spec("ST", "st", None, works2, init2),
            BTMZ_PAPER_EXEC_ST, 50.27, BTMZ_PAPER_COMP_ST,
            "single-thread mode: 2 ranks, one per core",
        ),
        ExperimentCase(
            "A", spec4("A", "identity", None), 81.64, 82.23, BTMZ_PAPER_COMP_A,
            "reference: default priorities, Pi on CPUi",
        ),
        ExperimentCase(
            "B", spec4("B", "btmz", {0: 3, 1: 3, 2: 6, 3: 6}), 127.91, 70.93,
            (52.33, 99.64, 28.87, 46.26),
            "gap 3 on the P1/P4 core: overshoots, P2 becomes the bottleneck",
        ),
        ExperimentCase(
            "C", spec4("C", "btmz", {0: 4, 1: 4, 2: 6, 3: 6}), 75.62, 45.99,
            (65.32, 99.68, 53.78, 85.88), "gap 2 on both cores",
        ),
        ExperimentCase(
            "D", spec4("D", "btmz", {0: 4, 1: 4, 2: 5, 3: 6}), 66.88, 33.38,
            (82.73, 73.68, 66.40, 99.72),
            "the paper's best: gap 2 for P4/P1, gap 1 for P3/P2 (-18.08%)",
        ),
    )
    return Suite("btmz", cases)


# --------------------------------------------------------------------------------
# SIESTA — paper Table VI / Figure 4
# --------------------------------------------------------------------------------

SIESTA_PAPER_COMP_A = (75.94, 75.24, 82.08, 93.47)
SIESTA_PAPER_EXEC_A = 858.57
SIESTA_PAPER_COMP_ST = (81.79, 93.72)
SIESTA_PAPER_EXEC_ST = 1236.05
#: Phase shares of the reference run (paper section VII-C).
SIESTA_INIT_SHARE = 0.1199
SIESTA_FINAL_SHARE = 0.1341


def siesta_suite(
    n_iterations: int = 40,
    profile: str = "dft",
    seed: int = 2008,
    model: Optional[AnalyticThroughputModel] = None,
    time_scale: float = 1.0,
    jitter_sigma: float = 0.18,
    rotate_prob: float = 0.25,
) -> Suite:
    """SIESTA cases ST, A-D.

    Per-rank work is split into init/body/final phases matching the
    paper's 11.99 % / 74.6 % / 13.41 % shares; the body's bottleneck
    migrates across iterations (jitter + rotation), which is what defeats
    static balancing when over-applied (case D). ``time_scale`` shrinks
    the whole application proportionally for faster test runs.
    """
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be > 0, got {time_scale}")
    exec_a = SIESTA_PAPER_EXEC_A * time_scale
    comp = [c / 100.0 for c in SIESTA_PAPER_COMP_A]
    rates = _corun_rates(profile, comp, model)
    cmax = max(comp)
    body_share = 1.0 - SIESTA_INIT_SHARE - SIESTA_FINAL_SHARE

    # Within each phase, rank r computes (comp_r / comp_max) of the phase
    # span: the heaviest rank defines each phase's length.
    init_works = works_for_targets(
        [c / cmax for c in comp], SIESTA_INIT_SHARE * exec_a, rates
    )
    final_works = works_for_targets(
        [c / cmax for c in comp], SIESTA_FINAL_SHARE * exec_a, rates
    )
    body_totals = works_for_targets(
        [c / cmax for c in comp], body_share * exec_a, rates
    )
    mean_works = [w / n_iterations for w in body_totals]

    # Jitter/rotation make each iteration as slow as its *maximum* rank,
    # inflating the body beyond the mean-based calibration. The work
    # table is deterministic (seeded), so predict the inflation exactly
    # and scale the means down to keep the case-A total on target.
    trial = SiestaConfig(
        mean_works=mean_works, init_works=init_works, final_works=final_works,
        n_iterations=n_iterations, profile=profile, seed=seed,
        jitter_sigma=jitter_sigma, rotate_prob=rotate_prob,
    )
    table = trial.iteration_works()
    predicted = sum(max(w / r for w, r in zip(row, rates)) for row in table)
    target_body = max(w / r for w, r in zip(body_totals, rates))
    if predicted > 0:
        inflation = predicted / target_body
        mean_works = [w / inflation for w in mean_works]

    rate_st = _solo_rate(profile, model)
    exec_st = SIESTA_PAPER_EXEC_ST * time_scale
    comp_st = [c / 100.0 for c in SIESTA_PAPER_COMP_ST]
    cmax_st = max(comp_st)
    init2 = works_for_targets(
        [c / cmax_st for c in comp_st], SIESTA_INIT_SHARE * exec_st, rate_st
    )
    final2 = works_for_targets(
        [c / cmax_st for c in comp_st], SIESTA_FINAL_SHARE * exec_st, rate_st
    )
    body2 = works_for_targets(
        [c / cmax_st for c in comp_st], body_share * exec_st, rate_st
    )
    mean2 = [w / n_iterations for w in body2]

    def spec(case: str, mapping: str, priorities: Optional[Dict[int, int]]) -> ScenarioSpec:
        if mapping == "st":
            works, init_w, final_w = mean2, init2, final2
        else:
            works, init_w, final_w = mean_works, init_works, final_works
        return ScenarioSpec(
            name=f"siesta-{case}",
            kind="siesta",
            works=tuple(works),
            iterations=n_iterations,
            profile=profile,
            mapping=mapping,
            priorities=_prio_tuple(priorities),
            params={
                "init_works": tuple(init_w),
                "final_works": tuple(final_w),
                "jitter_sigma": jitter_sigma,
                "rotate_prob": rotate_prob,
                "workload_seed": seed,
            },
        )

    cases = (
        ExperimentCase(
            "ST", spec("ST", "st", None), SIESTA_PAPER_EXEC_ST * time_scale, 8.88,
            SIESTA_PAPER_COMP_ST, "single-thread mode: 2 ranks, one per core",
        ),
        ExperimentCase(
            "A", spec("A", "identity", None), SIESTA_PAPER_EXEC_A * time_scale,
            14.43, SIESTA_PAPER_COMP_A, "reference: default priorities",
        ),
        ExperimentCase(
            "B", spec("B", "siesta", {0: 4, 1: 4, 2: 5, 3: 5}),
            847.91 * time_scale, 5.99, (79.57, 87.06, 72.04, 77.73),
            "re-paired (P2+P3, P1+P4); P3 and P4 favoured by 1",
        ),
        ExperimentCase(
            "C", spec("C", "siesta", {0: 4, 1: 4, 2: 4, 3: 5}),
            789.20 * time_scale, 1.46, (83.04, 79.66, 80.78, 78.74),
            "the paper's best: equal P2/P3, P4 favoured by 1 (-8.1%)",
        ),
        ExperimentCase(
            "D", spec("D", "siesta", {0: 4, 1: 4, 2: 4, 3: 6}),
            976.35 * time_scale, 16.64, (90.76, 65.74, 68.08, 63.95),
            "gap 2 for P4: P1 starves, imbalance reversed (+13.7%)",
        ),
    )
    return Suite("siesta", cases)
