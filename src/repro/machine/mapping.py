"""Rank-to-CPU mappings, including the paper's layouts.

Which ranks share a core is half of the paper's tuning story (the other
half being the priorities): for BT-MZ the authors moved the heaviest rank
(P4) onto the same core as the lightest (P1) so P4 could be boosted at
P1's expense without creating a new bottleneck.

Logical CPU numbering follows the chip: CPUs (0, 1) are core 0's two
contexts, (2, 3) core 1's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import MappingError

__all__ = ["ProcessMapping", "paper_mapping", "paired_mapping"]


@dataclass(frozen=True)
class ProcessMapping:
    """Injective rank -> logical CPU assignment."""

    rank_to_cpu: Tuple[Tuple[int, int], ...]

    @classmethod
    def from_dict(cls, mapping: Mapping[int, int]) -> "ProcessMapping":
        return cls(tuple(sorted(mapping.items())))

    @classmethod
    def identity(cls, n_ranks: int) -> "ProcessMapping":
        """The paper's reference layout: ``Pi`` on ``CPUi``."""
        if n_ranks <= 0:
            raise MappingError(f"n_ranks must be > 0, got {n_ranks}")
        return cls(tuple((r, r) for r in range(n_ranks)))

    def __post_init__(self) -> None:
        ranks = [r for r, _ in self.rank_to_cpu]
        cpus = [c for _, c in self.rank_to_cpu]
        if ranks != list(range(len(ranks))):
            raise MappingError(f"ranks must be 0..n-1, got {ranks}")
        if len(set(cpus)) != len(cpus):
            raise MappingError(f"duplicate cpus in mapping: {cpus}")
        if any(c < 0 for c in cpus):
            raise MappingError(f"negative cpu in mapping: {cpus}")
        # The lookup dict is immutable once validated; cpu_of is called
        # per-rank inside the runtime's and the search layer's hot loops.
        object.__setattr__(self, "_lookup", dict(self.rank_to_cpu))

    @property
    def n_ranks(self) -> int:
        return len(self.rank_to_cpu)

    def as_dict(self) -> Dict[int, int]:
        return dict(self.rank_to_cpu)

    def cpu_of(self, rank: int) -> int:
        try:
            return self._lookup[rank]
        except KeyError:
            raise MappingError(f"no rank {rank} in mapping") from None

    def core_of(self, rank: int) -> int:
        """Core index (2 contexts per core)."""
        return self.cpu_of(rank) // 2

    def core_pairs(self) -> List[Tuple[int, ...]]:
        """Ranks grouped by the core they share, ordered by core id."""
        by_core: Dict[int, List[int]] = {}
        for rank, cpu in self.rank_to_cpu:
            by_core.setdefault(cpu // 2, []).append(rank)
        return [tuple(sorted(by_core[c])) for c in sorted(by_core)]

    def sibling_of(self, rank: int) -> int:
        """The rank sharing a core with ``rank`` (-1 if alone)."""
        core = self.core_of(rank)
        for other, cpu in self.rank_to_cpu:
            if other != rank and cpu // 2 == core:
                return other
        return -1

    def canonical(self) -> "ProcessMapping":
        """The symmetry-canonical representative of this mapping's class.

        Two mappings are *physics-equivalent* when they induce the same
        partition of ranks into core groups: the chip's two contexts per
        core are interchangeable (swapping siblings swaps nothing the
        decode law can see) and the cores themselves are identical
        (renumbering whole cores permutes nothing either). The canonical
        representative packs core groups onto the lowest cores ordered
        by each group's minimum rank, with each group's ranks on
        ascending contexts — so ``a.canonical() == b.canonical()`` iff
        ``a`` and ``b`` are physics-equivalent. See ``docs/mapping.md``
        for the proof sketch and the digest test that pins it.
        """
        groups = sorted(self.core_pairs(), key=lambda g: g[0])
        mapping: Dict[int, int] = {}
        for core, group in enumerate(groups):
            for context, rank in enumerate(group):
                mapping[rank] = 2 * core + context
        return ProcessMapping.from_dict(mapping)

    def is_canonical(self) -> bool:
        """True when this mapping is its class's canonical representative."""
        return self.rank_to_cpu == self.canonical().rank_to_cpu


def paper_mapping(case: str) -> ProcessMapping:
    """The 4-rank mappings used in the paper's experiments.

    ``"identity"``
        Pi on CPUi — reference cases (MetBench all cases; BT-MZ/SIESTA
        case A). Core 0 hosts P1, P2; core 1 hosts P3, P4.
    ``"btmz"``
        BT-MZ cases B-D: P1 with P4 on one core (lightest with heaviest),
        P2 with P3 on the other.
    ``"siesta"``
        SIESTA cases B-D: P2 with P3 on core 0, P1 with P4 on core 1.
    """
    if case == "identity":
        return ProcessMapping.identity(4)
    if case == "btmz":
        # P1 core0, P2 core1, P3 core1, P4 core0 (paper Table V, cases B-D).
        return ProcessMapping.from_dict({0: 0, 1: 2, 2: 3, 3: 1})
    if case == "siesta":
        # P1 core1, P2 core0, P3 core0, P4 core1 (paper Table VI, cases B-D).
        return ProcessMapping.from_dict({0: 2, 1: 0, 2: 1, 3: 3})
    raise MappingError(f"unknown paper mapping {case!r}")


def paired_mapping(pairs: Sequence[Tuple[int, int]]) -> ProcessMapping:
    """Build a mapping from explicit core-sharing pairs.

    ``pairs[i]`` gives the two ranks placed on core ``i`` (first rank on
    the even context).
    """
    mapping: Dict[int, int] = {}
    for core, (a, b) in enumerate(pairs):
        if a == b:
            raise MappingError(f"core {core} pairs rank {a} with itself")
        mapping[a] = 2 * core
        mapping[b] = 2 * core + 1
    return ProcessMapping.from_dict(mapping)
