"""System: the simulated IBM OpenPower 710 as one object.

Wires a :class:`~repro.smt.chip.Power5Chip`, a kernel model
(standard/patched), the privilege-checked priority controller, optional
kernel-event sources (ticks, interrupts, noise) and a throughput model
into a single entry point::

    system = System(SystemConfig(kernel="patched"))
    result = system.run(
        programs,                   # one generator function per rank
        mapping=ProcessMapping.identity(4),
        priorities={0: 4, 1: 6, 2: 4, 3: 6},   # set via /proc before launch
    )

Each :meth:`System.run` builds a fresh machine (chip state, scheduler,
runtime), so a ``System`` can run many experiments independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import heapq

from repro.errors import ConfigurationError
from repro.kernel.hmt import Actor, HmtController
from repro.kernel.interrupts import InterruptSource, KernelEvent, TimerTickSource
from repro.kernel.kernel import KernelModel, make_kernel
from repro.kernel.noise import NoiseConfig, make_noise_sources
from repro.kernel.scheduler import PinnedScheduler
from repro.machine.mapping import ProcessMapping
from repro.mpi.process import RankProgram
from repro.mpi.runtime import MpiRuntime, RunResult, RuntimeConfig
from repro.smt.analytic import AnalyticModelConfig, AnalyticThroughputModel
from repro.smt.chip import ChipConfig, Power5Chip
from repro.smt.instructions import LoadProfile
from repro.smt.throughput import ThroughputTable
from repro.util.rng import RngStreams

__all__ = ["SystemConfig", "System"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything configurable about the simulated machine."""

    chip: ChipConfig = field(default_factory=ChipConfig)
    kernel: str = "patched"  # "standard" | "patched"
    model: str = "analytic"  # "analytic" | "cycle"
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    analytic: AnalyticModelConfig = field(default_factory=AnalyticModelConfig)
    #: Timer tick frequency; 0 disables ticks (default for table repro
    #: runs, where the patched kernel makes them irrelevant and the cost
    #: is negligible).
    tick_hz: float = 0.0
    #: Poisson device-interrupt rate routed to CPU0 (the "interrupt
    #: annoyance" model); 0 disables.
    irq_rate_hz: float = 0.0
    #: Daemon noise sources.
    noise: tuple = ()
    seed: int = 0
    #: Where the cycle model's measured throughput table is persisted.
    #: When set (model="cycle" only), measurements found there are loaded
    #: at construction and :meth:`System.save_throughput_table` writes
    #: new ones back, so repeated cycle-model experiments skip the
    #: 50k-cycle pipeline measurements entirely.
    throughput_table_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel not in ("standard", "patched"):
            raise ConfigurationError(f"kernel must be standard|patched, got {self.kernel!r}")
        if self.model not in ("analytic", "cycle"):
            raise ConfigurationError(f"model must be analytic|cycle, got {self.model!r}")
        if self.throughput_table_path is not None and self.model != "cycle":
            raise ConfigurationError(
                "throughput_table_path only applies to model='cycle' "
                f"(got model={self.model!r})"
            )
        if self.tick_hz < 0 or self.irq_rate_hz < 0:
            raise ConfigurationError("tick_hz/irq_rate_hz must be >= 0")
        for cfg in self.noise:
            if not isinstance(cfg, NoiseConfig):
                raise ConfigurationError(f"noise entries must be NoiseConfig, got {cfg!r}")


class System:
    """Factory/runner for simulated machines."""

    #: Horizon for pre-generating kernel events; extended automatically
    #: would be better, but the runtime's time_limit bounds real use and
    #: generating a fixed horizon keeps sources simple and deterministic.
    KERNEL_EVENT_HORIZON = 4000.0

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self._streams = RngStreams(self.config.seed)
        # The model is shared across runs so its memo cache warms up.
        if self.config.model == "analytic":
            self.model = AnalyticThroughputModel(self.config.analytic)
        else:
            self.model = ThroughputTable(seed=self.config.seed)
            if self.config.throughput_table_path:
                self.model.load(self.config.throughput_table_path)

    def save_throughput_table(self) -> Optional[int]:
        """Persist the cycle model's measured table to the configured path.

        No-op (returns ``None``) for the analytic model or when no
        ``throughput_table_path`` is configured; otherwise returns the
        number of entries written.
        """
        path = self.config.throughput_table_path
        if path and isinstance(self.model, ThroughputTable):
            return self.model.save(path)
        return None

    # -- machine assembly -------------------------------------------------------

    def build_machine(self):
        """Fresh (chip, hmt, scheduler, kernel) for one run."""
        chip = Power5Chip(self.config.chip)
        hmt = HmtController(chip)
        scheduler = PinnedScheduler(chip.config.n_cpus)
        kernel = make_kernel(self.config.kernel, hmt, scheduler)
        return chip, hmt, scheduler, kernel

    def _kernel_event_stream(self, horizon: float) -> Optional[Iterator[KernelEvent]]:
        cfg = self.config
        sources: List[object] = []
        if cfg.tick_hz > 0:
            sources.append(
                TimerTickSource(list(range(cfg.chip.n_cpus)), hz=cfg.tick_hz)
            )
        if cfg.irq_rate_hz > 0:
            sources.append(
                InterruptSource(
                    self._streams.get("irq.cpu0"), rate_hz=cfg.irq_rate_hz, cpu=0
                )
            )
        if cfg.noise:
            sources.extend(make_noise_sources(list(cfg.noise), self._streams))
        if not sources:
            return None
        return iter(heapq.merge(*(src.events(horizon) for src in sources)))

    # -- running ------------------------------------------------------------------

    def run(
        self,
        programs: Sequence[RankProgram],
        mapping: Optional[ProcessMapping] = None,
        priorities: Optional[Mapping[int, int]] = None,
        profiles: Optional[Mapping[str, LoadProfile]] = None,
        label: str = "",
        event_horizon: Optional[float] = None,
        controllers: Optional[Sequence] = None,
    ) -> RunResult:
        """Run one experiment.

        Parameters
        ----------
        priorities:
            rank -> hardware priority, installed through the kernel's
            ``/proc/<pid>/hmt_priority`` interface *before* launch — the
            paper's static balancing. Requires the patched kernel for
            levels outside 2-4 (a standard kernel raises
            ``FileNotFoundError``, and would reset them at the first
            interrupt anyway).
        """
        mapping = mapping or ProcessMapping.identity(len(programs))
        if mapping.n_ranks != len(programs):
            raise ConfigurationError(
                f"mapping covers {mapping.n_ranks} ranks but {len(programs)} programs given"
            )
        chip, hmt, scheduler, kernel = self.build_machine()

        on_start = None
        if priorities:
            wanted = dict(priorities)

            def on_start(runtime: MpiRuntime) -> None:
                # Runs at t=0 after mpirun has started (and priority-reset)
                # every rank: the balancing script's `echo N > /proc/...`.
                self._apply_priorities(kernel, hmt, wanted)

        runtime = MpiRuntime(
            chip=chip,
            kernel=kernel,
            hmt=hmt,
            model=self.model,
            programs=programs,
            mapping=mapping.as_dict(),
            profiles=profiles,
            config=self.config.runtime,
            kernel_events=self._kernel_event_stream(
                event_horizon or self.KERNEL_EVENT_HORIZON
            ),
            label=label,
            on_start=on_start,
            controllers=controllers,
        )
        return runtime.run()

    @staticmethod
    def _apply_priorities(
        kernel: KernelModel,
        hmt: HmtController,
        priorities: Mapping[int, int],
    ) -> None:
        for pid, prio in sorted(priorities.items()):
            if kernel.has_hmt_procfs:
                # echo N > /proc/<pid>/hmt_priority, at OS privilege.
                kernel.procfs.set_priority_of_pid(pid, prio, time=0.0)
            else:
                # Standard kernel: userspace can only use the or-nop path
                # (2-4); anything else is silently impossible.
                cpu = kernel.scheduler.cpu_of(pid)
                hmt.try_set_priority(cpu, prio, time=0.0, via="or-nop", actor=Actor.USER)
