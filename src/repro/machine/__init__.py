"""Machine assembly: chip + kernel + runtime wired into one system."""

from repro.machine.mapping import ProcessMapping, paper_mapping, paired_mapping
from repro.machine.system import System, SystemConfig

__all__ = [
    "ProcessMapping",
    "paper_mapping",
    "paired_mapping",
    "System",
    "SystemConfig",
]
