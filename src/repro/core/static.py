"""Static priority balancing — the paper's mechanism, systematised.

The authors balanced each application by hand in four steps (sections
VII-A/B/C). This module encodes the procedure they converged on:

1. **Pairing**: place the rank with the *longest* compute time on the
   same core as the rank with the *shortest* (BT-MZ: "we ran process P1
   and P4 on the same core"), second-longest with second-shortest, etc.
2. **Priorities**: within each core pair, favour the heavier rank with a
   priority gap proportional to the imbalance — but *bounded*, because
   the penalty is exponential in the gap and overshooting reverses the
   imbalance (MetBench case D, SIESTA case D).
3. **Similar loads get equal priorities** (SIESTA case C insight: "since
   P2 and P3 work, more or less, on the same amount of data, using a
   different priority for these two processes may introduce even more
   imbalance").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.balancer import Balancer, PriorityAssignment
from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping, paired_mapping

__all__ = ["StaticPriorityBalancer", "plan_from_compute_shares"]


@dataclass(frozen=True)
class StaticPriorityBalancer(Balancer):
    """The heuristic static planner.

    Attributes
    ----------
    base_priority:
        Priority of the penalised rank of a pair (MEDIUM keeps user-level
        compatibility; the paper mostly penalises at 4 or 3).
    max_gap:
        Hard bound on the per-core priority difference. The paper's
        successful cases use gaps of 1-2; gap 3 reversed MetBench.
    balance_threshold:
        Compute-time ratio (lighter/heavier) above which a pair is
        considered balanced and gets equal priorities.
    gap_scale:
        Imbalance-to-gap conversion: the gap grows by one for every
        ``gap_scale``-fold compute-time ratio between the pair, i.e.
        ``gap = round(log(heavy/light) / log(gap_scale))``. The default
        of 2.2 maps the paper's MetBench ratio (~4.1x) to gap 2 and
        BT-MZ's inner pair (~2.3x) to gap 1 — the gaps the authors
        converged on by hand.
    repair_mapping:
        If True, re-pair ranks longest-with-shortest before assigning
        priorities (step 1); if False, keep the caller's mapping.
    """

    base_priority: int = 4
    max_gap: int = 2
    balance_threshold: float = 0.8
    gap_scale: float = 2.2
    repair_mapping: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.base_priority <= 6:
            raise ConfigurationError(
                f"base_priority must be an OS-settable level 1-6, got {self.base_priority}"
            )
        if self.max_gap < 0 or self.base_priority + self.max_gap > 6:
            raise ConfigurationError(
                f"base_priority({self.base_priority}) + max_gap({self.max_gap}) "
                "must stay within the OS range (<= 6)"
            )
        if not 0.0 < self.balance_threshold <= 1.0:
            raise ConfigurationError(
                f"balance_threshold must be in (0,1], got {self.balance_threshold}"
            )
        if self.gap_scale <= 1.0:
            raise ConfigurationError(f"gap_scale must be > 1, got {self.gap_scale}")

    # -- step 1: pairing ---------------------------------------------------------

    def pair_ranks(self, compute_seconds: Sequence[float]) -> List[Tuple[int, int]]:
        """Longest-with-shortest pairing over all ranks.

        Returns core pairs ``(heavy_rank, light_rank)`` ordered by core.
        Requires an even rank count (one rank per hardware context).
        """
        n = len(compute_seconds)
        if n == 0 or n % 2 != 0:
            raise ConfigurationError(
                f"pairing needs an even number of ranks, got {n}"
            )
        order = sorted(range(n), key=lambda r: -float(compute_seconds[r]))
        pairs = []
        for i in range(n // 2):
            pairs.append((order[i], order[n - 1 - i]))
        return pairs

    # -- step 2+3: priorities ------------------------------------------------------

    def gap_for_ratio(self, heavy: float, light: float) -> int:
        """Priority gap for a pair with the given compute times."""
        if heavy <= 0 and light <= 0:
            return 0
        if light <= 0:
            return self.max_gap
        ratio = heavy / light
        if ratio < 1.0:
            ratio = 1.0 / ratio
        if ratio >= 1.0 / self.balance_threshold:
            gap = int(round(math.log(ratio) / math.log(self.gap_scale)))
            return max(1, min(self.max_gap, gap))
        return 0

    def plan(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
    ) -> PriorityAssignment:
        """Assignment from observed per-rank compute times."""
        n = len(compute_seconds)
        if n != mapping.n_ranks:
            raise ConfigurationError(
                f"{n} observations for a {mapping.n_ranks}-rank mapping"
            )
        if self.repair_mapping and n % 2 == 0 and n >= 2:
            pairs = self.pair_ranks(compute_seconds)
            mapping = paired_mapping(pairs)
        priorities: Dict[int, int] = {r: self.base_priority for r in range(n)}
        for pair in mapping.core_pairs():
            if len(pair) != 2:
                continue
            a, b = pair
            heavy, light = (
                (a, b) if compute_seconds[a] >= compute_seconds[b] else (b, a)
            )
            gap = self.gap_for_ratio(
                float(compute_seconds[heavy]), float(compute_seconds[light])
            )
            priorities[heavy] = self.base_priority + gap
        return PriorityAssignment.build(mapping, priorities, label="static-balancer")


def plan_from_compute_shares(
    compute_fractions: Sequence[float],
    mapping: ProcessMapping,
    max_gap: int = 2,
) -> PriorityAssignment:
    """One-call convenience: plan from the paper's "Comp %" style numbers."""
    balancer = StaticPriorityBalancer(max_gap=max_gap)
    return balancer.plan(list(compute_fractions), mapping)
