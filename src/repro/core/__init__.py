"""The paper's contribution: priority-based load balancing.

* :mod:`repro.core.balancer` — assignment data model and balancer base.
* :mod:`repro.core.static` — the paper's mechanism: a static priority
  assignment derived from each rank's observed compute share.
* :mod:`repro.core.dynamic` — the paper's *future work*: an OS-level
  controller that re-assigns priorities during the run from observed
  waiting times.
* :mod:`repro.core.search` — exhaustive/greedy search over mappings and
  priorities (automating the paper's manual case A->B->C->D iteration).
* :mod:`repro.core.advisor` — profile -> plan -> verify pipeline.
* :mod:`repro.core.policy` — the :class:`Policy` protocol unifying both
  balancing families behind one fingerprintable interface (the zoo and
  the tournament live above, in :mod:`repro.policies`).

This package is the import surface: consumers outside ``core`` should
import these names from ``repro.core``, not from the submodules.
"""

from repro.core.balancer import PriorityAssignment, Balancer, DEFAULT_PRIORITIES
from repro.core.static import StaticPriorityBalancer, plan_from_compute_shares
from repro.core.dynamic import DynamicBalancer, DynamicBalancerConfig
from repro.core.policy import (
    POLICY_FAMILIES,
    PolicySpec,
    Policy,
    StaticPolicy,
    DynamicPolicy,
    AllocationPolicy,
    PlacementPolicy,
)
from repro.core.search import (
    SearchResult,
    SearchStats,
    exhaustive_priority_search,
    greedy_priority_search,
    joint_search,
    mapping_then_priority_search,
    candidate_assignments,
    candidate_mappings,
    candidate_placements,
    canonical_placement,
    placement_mapping,
    rank_pressures,
    paired_extremes_mapping,
    paired_adjacent_mapping,
    two_level_search,
)
from repro.core.advisor import Advisor, AdvisorReport, PolicyRecommendation

__all__ = [
    "PriorityAssignment",
    "Balancer",
    "DEFAULT_PRIORITIES",
    "StaticPriorityBalancer",
    "plan_from_compute_shares",
    "DynamicBalancer",
    "DynamicBalancerConfig",
    "POLICY_FAMILIES",
    "PolicySpec",
    "Policy",
    "StaticPolicy",
    "DynamicPolicy",
    "AllocationPolicy",
    "PlacementPolicy",
    "SearchResult",
    "SearchStats",
    "exhaustive_priority_search",
    "greedy_priority_search",
    "joint_search",
    "mapping_then_priority_search",
    "candidate_assignments",
    "candidate_mappings",
    "candidate_placements",
    "canonical_placement",
    "placement_mapping",
    "rank_pressures",
    "paired_extremes_mapping",
    "paired_adjacent_mapping",
    "two_level_search",
    "Advisor",
    "AdvisorReport",
    "PolicyRecommendation",
]
