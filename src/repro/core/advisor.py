"""Advisor: the full profile -> plan -> verify pipeline.

Reproduces, as one call, what the paper's authors did per application:

1. run the application once unbalanced and read the PARAVER trace
   (here: the simulated trace) for per-rank compute times;
2. derive a mapping + priority plan (the static balancer heuristic);
3. verify the plan with a balanced run and report both, plus the
   paper-style characterisation tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.balancer import PriorityAssignment
from repro.core.dynamic import DynamicBalancer, DynamicBalancerConfig
from repro.core.static import StaticPriorityBalancer
from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System
from repro.mpi.process import RankProgram
from repro.mpi.runtime import RunResult
from repro.trace.analysis import drift_score
from repro.util.tables import TextTable

__all__ = ["AdvisorReport", "Advisor", "PolicyRecommendation"]


@dataclass(frozen=True)
class AdvisorReport:
    """Outcome of one advisory cycle."""

    baseline: RunResult
    balanced: RunResult
    assignment: PriorityAssignment

    @property
    def improvement_percent(self) -> float:
        """Positive = the balanced run is faster (the paper's headline)."""
        return (
            (self.baseline.total_time - self.balanced.total_time)
            / self.baseline.total_time
            * 100.0
        )

    @property
    def imbalance_reduction(self) -> float:
        """Drop in the paper's imbalance metric, percentage points."""
        return self.baseline.imbalance_percent - self.balanced.imbalance_percent

    def summary_table(self) -> TextTable:
        table = TextTable(
            ["Run", "Exec. time", "Imbalance %"], title="Advisor summary"
        )
        table.add_row(
            ["baseline", f"{self.baseline.total_time:.2f}s",
             f"{self.baseline.imbalance_percent:.2f}"]
        )
        table.add_row(
            ["balanced", f"{self.balanced.total_time:.2f}s",
             f"{self.balanced.imbalance_percent:.2f}"]
        )
        table.add_row(["improvement", f"{self.improvement_percent:.2f}%", ""])
        return table


class Advisor:
    """Profile-then-balance driver."""

    def __init__(
        self,
        system: System,
        balancer: Optional[StaticPriorityBalancer] = None,
    ) -> None:
        self.system = system
        self.balancer = balancer or StaticPriorityBalancer()

    def advise(
        self,
        program_factory: Callable[[], Sequence[RankProgram]],
        mapping: Optional[ProcessMapping] = None,
        label: str = "advisor",
    ) -> AdvisorReport:
        """Run baseline, plan, run balanced, report.

        ``program_factory`` must yield fresh programs per call (each run
        consumes its generators).
        """
        programs = list(program_factory())
        if not programs:
            raise ConfigurationError("program_factory produced no programs")
        mapping = mapping or ProcessMapping.identity(len(programs))

        baseline = self.system.run(
            programs, mapping=mapping, label=f"{label}:baseline"
        )
        compute_seconds = [
            r.compute_fraction * baseline.total_time for r in baseline.stats.ranks
        ]
        assignment = self.balancer.plan(compute_seconds, mapping)
        balanced = self.system.run(
            list(program_factory()),
            mapping=assignment.mapping,
            priorities=assignment.priority_dict,
            label=f"{label}:balanced",
        )
        return AdvisorReport(baseline=baseline, balanced=balanced, assignment=assignment)

    def recommend(
        self,
        program_factory: Callable[[], Sequence[RankProgram]],
        mapping: Optional[ProcessMapping] = None,
        drift_threshold: float = 0.4,
        drift_windows: int = 8,
        label: str = "advisor",
    ) -> "PolicyRecommendation":
        """Choose between static and dynamic balancing from one profile run.

        The decisive property (paper section VII-C): does the bottleneck
        stay put? A profiling run's :func:`~repro.trace.analysis.drift_score`
        decides — stable bottlenecks get the static plan (the paper's
        mechanism), drifting ones get the dynamic controller (the paper's
        proposed future work). The recommendation carries verified runs
        for both the baseline and the chosen policy.
        """
        programs = list(program_factory())
        if not programs:
            raise ConfigurationError("program_factory produced no programs")
        mapping = mapping or ProcessMapping.identity(len(programs))

        baseline = self.system.run(programs, mapping=mapping, label=f"{label}:baseline")
        drift = drift_score(baseline.trace, drift_windows)
        compute_seconds = [
            r.compute_fraction * baseline.total_time for r in baseline.stats.ranks
        ]
        assignment = self.balancer.plan(compute_seconds, mapping)

        if drift <= drift_threshold:
            policy = "static"
            chosen = self.system.run(
                list(program_factory()),
                mapping=assignment.mapping,
                priorities=assignment.priority_dict,
                label=f"{label}:static",
            )
            controller = None
        else:
            policy = "dynamic"
            # Gap 1 is the safe authority for an online controller: it can
            # always back out within one interval.
            controller = DynamicBalancer(DynamicBalancerConfig(max_gap=1))
            chosen = self.system.run(
                list(program_factory()),
                mapping=mapping,
                controllers=[controller],
                label=f"{label}:dynamic",
            )
        return PolicyRecommendation(
            policy=policy,
            drift=drift,
            baseline=baseline,
            chosen=chosen,
            assignment=assignment,
            controller=controller,
        )


@dataclass(frozen=True)
class PolicyRecommendation:
    """Outcome of :meth:`Advisor.recommend`."""

    policy: str  # "static" | "dynamic"
    drift: float
    baseline: RunResult
    chosen: RunResult
    #: The static plan (computed either way, applied only when static).
    assignment: PriorityAssignment
    controller: Optional[DynamicBalancer]

    @property
    def improvement_percent(self) -> float:
        return (
            (self.baseline.total_time - self.chosen.total_time)
            / self.baseline.total_time
            * 100.0
        )
