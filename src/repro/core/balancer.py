"""Balancing data model: priority assignments and the balancer interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping
from repro.smt.priorities import validate_priority

__all__ = ["DEFAULT_PRIORITIES", "PriorityAssignment", "Balancer"]


def DEFAULT_PRIORITIES(n_ranks: int) -> Dict[int, int]:
    """The unbalanced reference: every rank at MEDIUM (4)."""
    if n_ranks <= 0:
        raise ConfigurationError(f"n_ranks must be > 0, got {n_ranks}")
    return {r: 4 for r in range(n_ranks)}


@dataclass(frozen=True)
class PriorityAssignment:
    """A complete balancing decision: who shares a core, at what priority.

    This is the object the paper's tables denote by their (mapping,
    priority) columns — e.g. BT-MZ case D is mapping P1+P4/P2+P3 with
    priorities (4, 4, 5, 6).
    """

    mapping: ProcessMapping
    priorities: Tuple[Tuple[int, int], ...]  # (rank, priority), sorted
    label: str = ""

    @classmethod
    def build(
        cls,
        mapping: ProcessMapping,
        priorities: Mapping[int, int],
        label: str = "",
    ) -> "PriorityAssignment":
        return cls(mapping, tuple(sorted(priorities.items())), label)

    def __post_init__(self) -> None:
        ranks = [r for r, _ in self.priorities]
        if sorted(ranks) != list(range(self.mapping.n_ranks)):
            raise ConfigurationError(
                f"priorities must cover ranks 0..{self.mapping.n_ranks - 1}, got {ranks}"
            )
        for rank, prio in self.priorities:
            validate_priority(prio)
            if prio in (0, 7):
                raise ConfigurationError(
                    f"rank {rank}: priorities 0 and 7 are hypervisor-only; "
                    "a balancer (OS level) may use 1-6"
                )

    @property
    def priority_dict(self) -> Dict[int, int]:
        return dict(self.priorities)

    def priority_of(self, rank: int) -> int:
        return self.priority_dict[rank]

    def core_gaps(self) -> Dict[int, int]:
        """Priority difference per core (favoured minus penalised)."""
        prios = self.priority_dict
        gaps: Dict[int, int] = {}
        for core, pair in enumerate(self.mapping.core_pairs()):
            if len(pair) == 2:
                gaps[core] = abs(prios[pair[0]] - prios[pair[1]])
            else:
                gaps[core] = 0
        return gaps

    @property
    def max_gap(self) -> int:
        gaps = self.core_gaps()
        return max(gaps.values()) if gaps else 0

    def describe(self) -> str:
        """Compact human-readable form."""
        parts = [
            f"P{r + 1}@cpu{self.mapping.cpu_of(r)}:prio{p}" for r, p in self.priorities
        ]
        head = f"[{self.label}] " if self.label else ""
        return head + " ".join(parts)


class Balancer(ABC):
    """A balancing policy: observations in, assignment out."""

    @abstractmethod
    def plan(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
    ) -> PriorityAssignment:
        """Produce an assignment from per-rank busy-time observations.

        ``compute_seconds[r]`` is how long rank *r* computes per unit of
        application progress (e.g. per iteration, or over a profiling
        run) under the default, unprioritised configuration.
        """
