"""Dynamic priority balancing — the paper's proposed future work.

Section VIII: *"We plan to extend our OS by introducing an algorithm that
will automatically detect if a process deserves an higher amount of
resources and which process should be deprived of those resources"* —
motivated by SIESTA, whose bottleneck migrates between iterations so any
static assignment is wrong part of the time.

:class:`DynamicBalancer` is a runtime *controller* (see
``MpiRuntime(controllers=...)``): every ``interval`` simulated seconds it
looks at each rank's waiting time over the last window and, per core
pair, shifts priority toward the rank that waited less (it is the
bottleneck), one step at a time, bounded to the OS range and a maximum
gap. Hysteresis avoids flapping on balanced pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ValidationError
from repro.kernel.hmt import Actor
from repro.trace.events import RankState

__all__ = ["DynamicBalancerConfig", "DynamicBalancer"]


@dataclass(frozen=True)
class DynamicBalancerConfig:
    """Controller parameters."""

    #: Seconds of simulated time between adjustments.
    interval: float = 2.0
    #: A pair is adjusted only if the window sync-fraction difference
    #: exceeds this (hysteresis).
    threshold: float = 0.08
    #: Bounds of the priorities the controller will set (OS range).
    min_priority: int = 3
    max_priority: int = 6
    #: Maximum per-core priority difference (the exponential-penalty guard).
    max_gap: int = 2

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {self.interval}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in [0,1], got {self.threshold}")
        if not 1 <= self.min_priority <= self.max_priority <= 6:
            raise ConfigurationError(
                f"need 1 <= min({self.min_priority}) <= max({self.max_priority}) <= 6"
            )
        if self.max_gap < 0 or self.max_gap > self.max_priority - self.min_priority:
            raise ConfigurationError(
                f"max_gap {self.max_gap} incompatible with priority bounds"
            )

    # -- serialisation (ScenarioSpec conventions: canonical doc, strict inverse) --

    _FLOAT_FIELDS = ("interval", "threshold")
    _INT_FIELDS = ("min_priority", "max_priority", "max_gap")

    def to_doc(self) -> dict:
        """Canonical document form — the fingerprint substrate for dynamic policies."""
        doc: dict = {name: float(getattr(self, name)) for name in self._FLOAT_FIELDS}
        doc.update({name: int(getattr(self, name)) for name in self._INT_FIELDS})
        return doc

    @classmethod
    def from_doc(cls, doc: object) -> "DynamicBalancerConfig":
        """Strict inverse of :meth:`to_doc`: unknown fields raise.

        All fields are optional (they carry defaults), but anything not
        in the schema is rejected so a typo'd knob cannot silently fall
        back to the default.
        """
        if not isinstance(doc, dict):
            raise ValidationError(
                f"dynamic-balancer config must be a JSON object, got {doc!r}"
            )
        known = cls._FLOAT_FIELDS + cls._INT_FIELDS
        unknown = set(doc) - set(known)
        if unknown:
            raise ValidationError(
                f"unknown dynamic-balancer config fields: {sorted(unknown)}"
            )
        kwargs: dict = {}
        try:
            for name in cls._FLOAT_FIELDS:
                if name in doc:
                    kwargs[name] = float(doc[name])
            for name in cls._INT_FIELDS:
                if name in doc:
                    kwargs[name] = int(doc[name])
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"malformed dynamic-balancer config: {exc}") from exc
        try:
            return cls(**kwargs)
        except ConfigurationError as exc:
            raise ValidationError(f"invalid dynamic-balancer config: {exc}") from exc


class DynamicBalancer:
    """Feedback controller over per-rank waiting time.

    Satisfies the runtime controller protocol (``interval`` attribute +
    ``on_tick(runtime, now)``). All priority writes go through the
    privilege-checked controller at OS level — this *is* the "extend our
    OS" of the paper's conclusion.
    """

    def __init__(self, config: Optional[DynamicBalancerConfig] = None) -> None:
        self.config = config or DynamicBalancerConfig()
        self._last_sync: Dict[int, float] = {}
        self._last_time = 0.0
        #: (time, rank, old, new) log of adjustments, for analysis.
        self.adjustments: List[Tuple[float, int, int, int]] = []

    @property
    def interval(self) -> float:
        return self.config.interval

    def reset(self) -> None:
        self._last_sync.clear()
        self._last_time = 0.0
        self.adjustments.clear()

    # -- observation -----------------------------------------------------------

    def _window_sync_fractions(self, runtime, now: float) -> Dict[int, float]:
        window = now - self._last_time
        fractions: Dict[int, float] = {}
        for tl in runtime.trace:
            total = tl.time_in_until(now, RankState.SYNC)
            prev = self._last_sync.get(tl.rank, 0.0)
            fractions[tl.rank] = (total - prev) / window if window > 0 else 0.0
            self._last_sync[tl.rank] = total
        self._last_time = now
        return fractions

    # -- decision ---------------------------------------------------------------

    def on_tick(self, runtime, now: float) -> None:
        """One control step: rebalance every core pair."""
        cfg = self.config
        sync = self._window_sync_fractions(runtime, now)
        # Group running ranks by core.
        by_core: Dict[int, List[int]] = {}
        for rank, cpu in runtime.mapping.items():
            by_core.setdefault(cpu // 2, []).append(rank)
        for core, ranks in sorted(by_core.items()):
            if len(ranks) != 2:
                continue
            a, b = ranks
            # The rank that waited more is over-resourced; the one that
            # waited less is the (local) bottleneck.
            waiter, busy = (a, b) if sync[a] >= sync[b] else (b, a)
            diff = sync[waiter] - sync[busy]
            prio_w = int(runtime.chip.priority(runtime.mapping[waiter]))
            prio_b = int(runtime.chip.priority(runtime.mapping[busy]))
            if diff > cfg.threshold:
                # Widen the gap in favour of the bottleneck, one step.
                if prio_b - prio_w < cfg.max_gap:
                    if prio_b < cfg.max_priority:
                        self._set(runtime, busy, prio_b + 1, now)
                    elif prio_w > cfg.min_priority:
                        self._set(runtime, waiter, prio_w - 1, now)
            else:
                # Balanced window: relax any existing gap by one step.
                if prio_b > prio_w:
                    self._set(runtime, busy, prio_b - 1, now)
                elif prio_w > prio_b:
                    self._set(runtime, waiter, prio_w - 1, now)

    def _set(self, runtime, rank: int, new_priority: int, now: float) -> None:
        cpu = runtime.mapping[rank]
        old = int(runtime.chip.priority(cpu))
        if old == new_priority:
            return
        runtime.hmt.set_priority(cpu, new_priority, Actor.OS, time=now, via="dynamic")
        self.adjustments.append((now, rank, old, new_priority))
