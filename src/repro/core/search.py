"""Search over mappings and priorities — automating the paper's case studies.

The paper finds good configurations by manually trying cases A-D per
application. These helpers enumerate (or greedily walk) the assignment
space and run each candidate through a :class:`~repro.machine.system.System`,
returning a ranking by total execution time. On the 4-rank machine the
exhaustive per-core space is small (priorities 3-6 per rank = 256
combinations, fewer after symmetry pruning), so exhaustive search is
practical with the analytic model.

The paper fixes the rank→context mapping and searches only priorities;
related work (ILP-aware scheduling, thread-to-core allocation families)
says the mapping is the bigger lever. :func:`candidate_mappings`
enumerates injective rank→CPU assignments — with **symmetry pruning**:
the chip's two contexts per core are interchangeable and its cores are
identical, so mappings inducing the same rank partition are physics
equivalent (digest-proven in ``tests/core/test_joint_search.py``; proof
sketch in ``docs/mapping.md``) and only each class's canonical
representative is evaluated. :func:`joint_search` crosses that axis
with the priority axis, and :func:`mapping_then_priority_search` is the
staged heuristic: pick the mapping from per-rank decode pressure
(:func:`rank_pressures` — work × ILP appetite from the profile's
miss/unit rates), then search priorities on it alone.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.balancer import PriorityAssignment
from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping, paired_mapping
from repro.machine.system import System
from repro.mpi.process import RankProgram
from repro.smt.cache import CacheHierarchy
from repro.smt.instructions import BASE_PROFILES, LoadProfile
from repro.telemetry import default_registry

__all__ = [
    "SearchStats",
    "SearchResult",
    "candidate_assignments",
    "candidate_mappings",
    "candidate_placements",
    "canonical_placement",
    "exhaustive_priority_search",
    "greedy_priority_search",
    "joint_search",
    "mapping_then_priority_search",
    "placement_mapping",
    "rank_pressures",
    "paired_extremes_mapping",
    "paired_adjacent_mapping",
    "two_level_search",
]


@dataclass(frozen=True)
class SearchStats:
    """Work accounting for one search invocation.

    ``evaluations`` counts every candidate actually simulated — it is
    the honest cost figure even when the result keeps only the top N
    entries. Cache hits/misses are the throughput model's memo deltas
    over the search (all zeros when the model keeps no stats, and for
    worker-process caches, which die with their pool).
    """

    evaluations: int
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass(frozen=True)
class SearchResult:
    """Ranking of evaluated assignments."""

    entries: Tuple[Tuple[PriorityAssignment, float, float], ...]
    """(assignment, total_time, imbalance_percent), best first."""

    stats: Optional[SearchStats] = None
    """Evaluation/cache accounting; ``None`` for hand-built results."""

    @property
    def best(self) -> PriorityAssignment:
        return self.entries[0][0]

    @property
    def best_time(self) -> float:
        return self.entries[0][1]

    @property
    def evaluated(self) -> int:
        """Candidates actually simulated.

        Historically this was ``len(entries)``, which under-reported
        whenever ``keep_top`` truncated the ranking; it now comes from
        :attr:`stats` when available.
        """
        if self.stats is not None:
            return self.stats.evaluations
        return len(self.entries)

    def improvement_over(self, reference_time: float) -> float:
        """Percent improvement of the best over a reference time."""
        if reference_time <= 0:
            raise ConfigurationError(f"reference_time must be > 0, got {reference_time}")
        return (reference_time - self.best_time) / reference_time * 100.0


def candidate_assignments(
    mapping: ProcessMapping,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
) -> List[PriorityAssignment]:
    """All per-core priority combinations within ``levels`` and ``max_gap``.

    Per-core symmetry is pruned by fixing the *lower-numbered rank of a
    pair* to never exceed its sibling unless the combination is distinct —
    i.e. plain product filtered by gap; combinations equal after swapping
    identical levels are naturally unique. Priority pairs that only shift
    both levels (e.g. (3,3) vs (4,4)) are kept: absolute level matters at
    the boundaries (1 and 6) and for later dynamic adjustment headroom.
    """
    for lv in levels:
        if not 1 <= lv <= 6:
            raise ConfigurationError(f"levels must be OS-settable (1-6), got {lv}")
    pairs = mapping.core_pairs()
    per_core_choices: List[List[Dict[int, int]]] = []
    for pair in pairs:
        choices: List[Dict[int, int]] = []
        if len(pair) == 1:
            for lv in levels:
                choices.append({pair[0]: lv})
        else:
            a, b = pair
            for la, lb in itertools.product(levels, repeat=2):
                if abs(la - lb) <= max_gap:
                    choices.append({a: la, b: lb})
        per_core_choices.append(choices)
    out: List[PriorityAssignment] = []
    for combo in itertools.product(*per_core_choices):
        prios: Dict[int, int] = {}
        for d in combo:
            prios.update(d)
        out.append(PriorityAssignment.build(mapping, prios, label="search"))
    return out


def _model_cache_stats(system: System):
    """The model's memo counters, or ``None`` if it keeps none."""
    getter = getattr(system.model, "cache_stats", None)
    return getter() if callable(getter) else None


def _record_search(kind: str, stats: SearchStats, elapsed_s: float) -> None:
    """Publish one search's accounting into the default registry.

    One event per whole search — far off any hot path — so these are
    always on. :class:`SearchStats` stays the returned public shape;
    the registry is the cross-surface aggregate.
    """
    reg = default_registry()
    reg.counter(
        "repro_search_evaluations_total",
        "Candidate assignments actually simulated, by search kind.",
        labelnames=("kind",),
    ).labels(kind).inc(stats.evaluations)
    reg.counter(
        "repro_search_cache_hits_total",
        "Throughput-model memo hits during searches.",
        labelnames=("kind",),
    ).labels(kind).inc(max(0, stats.cache_hits))
    reg.counter(
        "repro_search_cache_misses_total",
        "Throughput-model memo misses during searches.",
        labelnames=("kind",),
    ).labels(kind).inc(max(0, stats.cache_misses))
    reg.histogram(
        "repro_search_seconds",
        "Wall seconds per search invocation.",
        labelnames=("kind",),
    ).labels(kind).observe(elapsed_s)


def _evaluate_assignment(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    assignment: PriorityAssignment,
) -> Tuple[float, float]:
    result = system.run(
        list(program_factory()),
        mapping=assignment.mapping,
        priorities=assignment.priority_dict,
        label=assignment.describe(),
    )
    return result.total_time, result.imbalance_percent


def _evaluate_candidate(payload) -> Tuple[float, float]:
    """Worker entry point for parallel search (module-level so it is
    picklable by :mod:`concurrent.futures`)."""
    system, program_factory, assignment = payload
    return _evaluate_assignment(system, program_factory, assignment)


def _ranked_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    candidates: Sequence[PriorityAssignment],
    keep_top: int,
    workers: int,
    kind: str,
) -> SearchResult:
    """Evaluate ``candidates`` (pool or serial), rank them, record stats.

    The shared engine behind the exhaustive, joint and staged searches:
    ``executor.map`` preserves candidate order, and each run is
    deterministic given (programs, mapping, priorities), so the ranking
    is byte-identical to the serial one. The system and factory must be
    picklable for the pool path; when they are not (e.g. a lambda
    factory), the search transparently falls back to the serial path.
    Worker model caches are private to the pool, so cross-candidate
    cache reuse — and the hit/miss accounting — only happens in serial
    mode.
    """
    if not candidates:
        raise ConfigurationError("search evaluated no candidates")
    before = _model_cache_stats(system)
    t0 = time.perf_counter()

    outcomes: Optional[List[Tuple[float, float]]] = None
    used_workers = 1
    if workers > 1 and len(candidates) > 1:
        try:
            n = min(int(workers), len(candidates))
            with ProcessPoolExecutor(max_workers=n) as pool:
                outcomes = list(
                    pool.map(
                        _evaluate_candidate,
                        [(system, program_factory, a) for a in candidates],
                    )
                )
            used_workers = n
        except Exception:
            # Unpicklable system/factory or a broken pool: evaluate
            # serially instead (any genuine simulation error will
            # re-raise below, from the same candidate).
            outcomes = None
    if outcomes is None:
        outcomes = [
            _evaluate_assignment(system, program_factory, a) for a in candidates
        ]

    entries: List[Tuple[PriorityAssignment, float, float]] = [
        (a, t, imb) for a, (t, imb) in zip(candidates, outcomes)
    ]
    after = _model_cache_stats(system)
    hits = misses = 0
    if before is not None and after is not None:
        hits = after.hits - before.hits
        misses = after.misses - before.misses
    stats = SearchStats(
        evaluations=len(candidates),
        cache_hits=hits,
        cache_misses=misses,
        workers=used_workers,
    )
    _record_search(kind, stats, time.perf_counter() - t0)
    entries.sort(key=lambda e: e[1])
    if keep_top > 0:
        entries = entries[:keep_top]
    return SearchResult(tuple(entries), stats=stats)


def exhaustive_priority_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    mapping: ProcessMapping,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    keep_top: int = 0,
    workers: int = 1,
) -> SearchResult:
    """Evaluate every candidate assignment; return them ranked.

    ``program_factory`` must build *fresh* generator programs per run
    (generators are single-use). Parallelism, determinism and the
    serial fallback are :func:`_ranked_search`'s contract.
    """
    candidates = candidate_assignments(mapping, levels, max_gap)
    return _ranked_search(
        system, program_factory, candidates, keep_top, workers, "exhaustive"
    )


def greedy_priority_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    mapping: ProcessMapping,
    start: Optional[PriorityAssignment] = None,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    max_steps: int = 20,
) -> SearchResult:
    """Hill-climb: try single-rank priority moves until no improvement.

    Far fewer runs than exhaustive search (the paper's manual procedure
    is essentially this loop); may stop in a local optimum.
    """
    if start is None:
        start = PriorityAssignment.build(
            mapping, {r: 4 for r in range(mapping.n_ranks)}, label="start"
        )

    before = _model_cache_stats(system)
    t0 = time.perf_counter()

    def evaluate(assignment: PriorityAssignment) -> Tuple[float, float]:
        return _evaluate_assignment(system, program_factory, assignment)

    current = start
    current_time, current_imb = evaluate(current)
    history: List[Tuple[PriorityAssignment, float, float]] = [
        (current, current_time, current_imb)
    ]
    for _ in range(max_steps):
        best_move: Optional[Tuple[PriorityAssignment, float, float]] = None
        prios = current.priority_dict
        for rank in range(mapping.n_ranks):
            for lv in levels:
                if lv == prios[rank]:
                    continue
                trial_prios = dict(prios)
                trial_prios[rank] = lv
                trial = PriorityAssignment.build(mapping, trial_prios, label="greedy")
                if trial.max_gap > max_gap:
                    continue
                t, imb = evaluate(trial)
                history.append((trial, t, imb))
                if best_move is None or t < best_move[1]:
                    best_move = (trial, t, imb)
        if best_move is None or best_move[1] >= current_time:
            break
        current, current_time, current_imb = best_move
    after = _model_cache_stats(system)
    hits = misses = 0
    if before is not None and after is not None:
        hits = after.hits - before.hits
        misses = after.misses - before.misses
    evaluations = len(history)
    stats = SearchStats(
        evaluations=evaluations, cache_hits=hits, cache_misses=misses
    )
    _record_search("greedy", stats, time.perf_counter() - t0)
    history.sort(key=lambda e: e[1])
    return SearchResult(tuple(history), stats=stats)


# -- the mapping axis -----------------------------------------------------------


def candidate_mappings(
    n_ranks: int,
    n_cores: int = 2,
    prune_symmetry: bool = True,
) -> List[ProcessMapping]:
    """Injective rank→CPU assignments on an ``n_cores``-core SMT chip.

    Unpruned, this is every ordered choice of ``n_ranks`` CPUs out of
    ``2 * n_cores`` — P(2c, r) mappings. With ``prune_symmetry`` (the
    default) only each physics-equivalence class's canonical
    representative survives (:meth:`ProcessMapping.canonical`): the two
    contexts of a core are interchangeable and cores are identical, so
    the class is really *which ranks share a core*, and the pruned count
    is the number of rank partitions into at most ``n_cores`` groups of
    at most two. On the paper chip (4 ranks, 2 cores) that is 24 → 3 —
    an 8x cut before a single candidate is simulated.

    Enumeration order is deterministic: lexicographic in the per-rank
    CPU tuple. The canonical representative is the lexicographic minimum
    of its class, so for tied objective values a stable ranking picks
    the same physics with or without pruning.
    """
    if n_cores <= 0:
        raise ConfigurationError(f"n_cores must be > 0, got {n_cores}")
    n_cpus = 2 * n_cores
    if not 0 < n_ranks <= n_cpus:
        raise ConfigurationError(
            f"n_ranks must be in 1..{n_cpus} on a {n_cores}-core chip, "
            f"got {n_ranks}"
        )
    out: List[ProcessMapping] = []
    for cpus in itertools.permutations(range(n_cpus), n_ranks):
        mapping = ProcessMapping(tuple(enumerate(cpus)))
        if prune_symmetry and not mapping.is_canonical():
            continue
        out.append(mapping)
    return out


def joint_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    n_ranks: int,
    n_cores: Optional[int] = None,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    keep_top: int = 0,
    workers: int = 1,
    prune_symmetry: bool = True,
    mappings: Optional[Sequence[ProcessMapping]] = None,
) -> SearchResult:
    """Search the joint (mapping × priority) space, ranked best first.

    The cross product of :func:`candidate_mappings` (symmetry-pruned by
    default; pass ``mappings`` to search an explicit shortlist instead)
    with :func:`candidate_assignments` per mapping. Every entry's
    :class:`~repro.core.balancer.PriorityAssignment` carries its mapping,
    so the result shape, the process-pool parallelism and the
    :class:`SearchStats` accounting are exactly the priority-only
    search's. ``n_cores`` defaults to the system's chip.
    """
    if n_cores is None:
        n_cores = system.config.chip.n_cores
    if mappings is None:
        mappings = candidate_mappings(n_ranks, n_cores, prune_symmetry)
    candidates: List[PriorityAssignment] = []
    for mapping in mappings:
        if mapping.n_ranks != n_ranks:
            raise ConfigurationError(
                f"mapping {mapping.as_dict()} has {mapping.n_ranks} ranks, "
                f"expected {n_ranks}"
            )
        candidates.extend(candidate_assignments(mapping, levels, max_gap))
    return _ranked_search(
        system, program_factory, candidates, keep_top, workers, "joint"
    )


# -- the placement axis (clusters) ----------------------------------------------
#
# On a cluster the assignment problem grows a third dimension above
# mapping and priority: *which node* each rank lives on. A placement is
# the per-node rank grouping — ``placement[k]`` is the sorted tuple of
# ranks on node ``k`` — and, like the mapping axis, most of the raw
# space is symmetry: identical nodes (and, on a two-level tree,
# identical switches) can be permuted without changing any latency any
# message ever sees.

Placement = Tuple[Tuple[int, ...], ...]


def canonical_placement(
    placement: Sequence[Sequence[int]],
    nodes_per_switch: Optional[int] = None,
) -> Placement:
    """The node-symmetry-canonical representative of a placement.

    Uniform network: every node is interchangeable, so the class is the
    *multiset* of rank groups — the canonical form sorts the non-empty
    groups (lexicographically, which for disjoint sorted groups is
    min-rank order) onto the lowest node ids and parks empty nodes last.
    Two-level tree (``nodes_per_switch`` given): nodes are only
    interchangeable *within* a switch and full switches with each other,
    so groups are sorted within each switch block and the full blocks
    sorted among themselves (a trailing partial block stays last).

    The canonical form is also the lexicographic minimum of the class
    under the per-rank node-id tuple, so pruned enumeration keeps
    exactly the candidate the unpruned sweep would rank first on a tie.
    """
    groups = [tuple(sorted(int(r) for r in g)) for g in placement]

    def group_key(g: Tuple[int, ...]):
        return (not g, g)  # non-empty groups first, in min-rank order

    if nodes_per_switch is None:
        return tuple(sorted(groups, key=group_key))
    if nodes_per_switch < 1:
        raise ConfigurationError(
            f"nodes_per_switch must be >= 1, got {nodes_per_switch}"
        )
    blocks = [
        tuple(sorted(groups[i:i + nodes_per_switch], key=group_key))
        for i in range(0, len(groups), nodes_per_switch)
    ]
    # Only same-size blocks are physics-interchangeable; at most the
    # last block is partial, and the key keeps it last.
    blocks.sort(key=lambda b: (len(b) != nodes_per_switch, b))
    return tuple(g for block in blocks for g in block)


def candidate_placements(
    n_ranks: int,
    n_nodes: int,
    cpus_per_node: int = 4,
    nodes_per_switch: Optional[int] = None,
    prune_symmetry: bool = True,
) -> List[Placement]:
    """Every way to spread ``n_ranks`` over ``n_nodes`` capacity-bounded
    nodes, optionally keeping only canonical representatives.

    Unpruned this is the capacity-filtered ``n_nodes ** n_ranks``
    per-rank node choice; with ``prune_symmetry`` (the default) one
    placement per :func:`canonical_placement` class survives — on 4
    ranks × 4 nodes that is 256 → 15, a 17x cut before a single
    candidate is simulated. Enumeration order is deterministic:
    lexicographic in the per-rank node tuple.
    """
    if n_ranks <= 0:
        raise ConfigurationError(f"n_ranks must be > 0, got {n_ranks}")
    if n_nodes <= 0:
        raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
    if cpus_per_node <= 0:
        raise ConfigurationError(
            f"cpus_per_node must be > 0, got {cpus_per_node}"
        )
    if n_ranks > n_nodes * cpus_per_node:
        raise ConfigurationError(
            f"{n_ranks} ranks cannot fit {n_nodes} nodes x "
            f"{cpus_per_node} CPUs"
        )
    out: List[Placement] = []
    for assign in itertools.product(range(n_nodes), repeat=n_ranks):
        groups: List[List[int]] = [[] for _ in range(n_nodes)]
        for rank, node in enumerate(assign):
            groups[node].append(rank)
        if any(len(g) > cpus_per_node for g in groups):
            continue
        placement = tuple(tuple(g) for g in groups)
        if prune_symmetry and placement != canonical_placement(
            placement, nodes_per_switch
        ):
            continue
        out.append(placement)
    return out


def placement_mapping(
    placement: Sequence[Sequence[int]], cpus_per_node: int = 4
) -> ProcessMapping:
    """The packed mapping a placement induces: node ``k``'s ranks on
    ascending global CPUs ``k*cpus_per_node ...``.

    Packing fixes the within-node core pairing (adjacent ranks share a
    core); the placement axis deliberately searches only *which node*,
    leaving within-node refinement to the priority stage. Do **not**
    compare placements through :meth:`ProcessMapping.canonical` — that
    repacks onto the lowest cores and would move ranks across nodes.
    """
    mapping: Dict[int, int] = {}
    for node, group in enumerate(placement):
        if len(group) > cpus_per_node:
            raise ConfigurationError(
                f"node {node} holds {len(group)} ranks > {cpus_per_node} CPUs"
            )
        for i, rank in enumerate(sorted(group)):
            mapping[int(rank)] = node * cpus_per_node + i
    return ProcessMapping.from_dict(mapping)


def two_level_search(
    system,
    program_factory: Callable[[], Sequence[RankProgram]],
    n_ranks: int,
    n_nodes: int,
    cpus_per_node: int = 4,
    nodes_per_switch: Optional[int] = None,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    keep_top: int = 0,
    workers: int = 1,
    prune_symmetry: bool = True,
    placements: Optional[Sequence[Placement]] = None,
) -> SearchResult:
    """Placement sweep, then per-node priority refinement.

    Stage one evaluates every candidate placement (symmetry-pruned by
    default; pass ``placements`` for an explicit shortlist) under flat
    MEDIUM priorities — on a cluster the placement decides which
    messages cross the network, which dwarfs any priority effect, so it
    is fixed first. Stage two walks the winning placement node by node,
    exhausting that node's per-core priority combinations (``levels``,
    ``max_gap`` — the same grammar as :func:`candidate_assignments`)
    while the other nodes hold their current best; a node's winner is
    adopted only on strict improvement. ``system`` is typically a
    :class:`~repro.cluster.system.ClusterSystem`; anything with the
    ``System.run`` signature works. The result ranks everything both
    stages evaluated, best first.
    """
    if placements is None:
        placements = candidate_placements(
            n_ranks, n_nodes, cpus_per_node, nodes_per_switch, prune_symmetry
        )
    flat = {r: 4 for r in range(n_ranks)}
    stage1 = _ranked_search(
        system,
        program_factory,
        [
            PriorityAssignment.build(
                placement_mapping(p, cpus_per_node), flat, label="placement"
            )
            for p in placements
        ],
        0,
        workers,
        "placement",
    )
    best_entry = stage1.entries[0]
    mapping = best_entry[0].mapping

    entries: List[Tuple[PriorityAssignment, float, float]] = list(stage1.entries)
    evaluations = stage1.stats.evaluations
    hits, misses = stage1.stats.cache_hits, stage1.stats.cache_misses
    current = dict(flat)
    for node in range(n_nodes):
        by_core: Dict[int, List[int]] = {}
        for rank in range(n_ranks):
            cpu = mapping.cpu_of(rank)
            if cpu // cpus_per_node == node:
                by_core.setdefault(cpu // 2, []).append(rank)
        if not by_core:
            continue
        per_core_choices: List[List[Dict[int, int]]] = []
        for core in sorted(by_core):
            group = sorted(by_core[core])
            if len(group) == 1:
                per_core_choices.append([{group[0]: lv} for lv in levels])
            else:
                a, b = group
                per_core_choices.append([
                    {a: la, b: lb}
                    for la, lb in itertools.product(levels, repeat=2)
                    if abs(la - lb) <= max_gap
                ])
        candidates = []
        for combo in itertools.product(*per_core_choices):
            prios = dict(current)
            for d in combo:
                prios.update(d)
            candidates.append(
                PriorityAssignment.build(mapping, prios, label="two-level")
            )
        ranked = _ranked_search(
            system, program_factory, candidates, 0, workers, "two-level"
        )
        entries.extend(ranked.entries)
        evaluations += ranked.stats.evaluations
        hits += ranked.stats.cache_hits
        misses += ranked.stats.cache_misses
        if ranked.best_time < best_entry[1]:
            best_entry = ranked.entries[0]
            current = best_entry[0].priority_dict

    entries.sort(key=lambda e: e[1])
    if keep_top > 0:
        entries = entries[:keep_top]
    stats = SearchStats(
        evaluations=evaluations, cache_hits=hits, cache_misses=misses,
        workers=max(stage1.stats.workers, 1),
    )
    return SearchResult(tuple(entries), stats=stats)


# -- the staged heuristic -------------------------------------------------------

_CACHES = CacheHierarchy()


def _decode_appetite(profile: LoadProfile) -> float:
    """How many decode slots per cycle a profile can actually consume.

    Its ILP, discounted by the expected off-L1 stall cycles per memory
    instruction (the profile's miss chain priced at the hierarchy's
    latencies): a memory-bound thread is parked on misses most of the
    time and leaves its decode share to the sibling, which is exactly
    why ILP-aware allocation pairs it with a high-ILP neighbour.
    """
    levels = _CACHES.levels
    stall_cycles = profile.l1_miss_rate * (
        levels["l2"].latency
        + profile.l2_miss_rate
        * (levels["l3"].latency + profile.l3_miss_rate * _CACHES.memory.latency)
    )
    return profile.ilp / (1.0 + profile.memory_fraction * stall_cycles)


def rank_pressures(
    works: Sequence[float],
    profiles: Union[str, LoadProfile, Sequence[Union[str, LoadProfile]]] = "hpc",
) -> Tuple[float, ...]:
    """Per-rank decode pressure: work × the profile's decode appetite.

    The scalar the allocation heuristics sort by. With one profile for
    every rank (the common scenario shape) pressure orders exactly like
    work, so extreme-pairing degrades to the paper's BT-MZ move (heaviest
    with lightest); with per-rank profiles the miss/unit rates tilt the
    order toward pairing high-ILP with memory-bound ranks.
    """
    if isinstance(profiles, (str, LoadProfile)):
        profiles = [profiles] * len(works)
    if len(profiles) != len(works):
        raise ConfigurationError(
            f"{len(profiles)} profiles for {len(works)} works"
        )
    resolved = [
        BASE_PROFILES[p] if isinstance(p, str) else p for p in profiles
    ]
    return tuple(
        float(w) * _decode_appetite(p) for w, p in zip(works, resolved)
    )


def _pressure_order(pressures: Sequence[float]) -> List[int]:
    """Ranks sorted by (pressure, rank) — the deterministic tie-break."""
    return sorted(range(len(pressures)), key=lambda r: (pressures[r], r))


def paired_extremes_mapping(pressures: Sequence[float]) -> ProcessMapping:
    """Pair the highest-pressure rank with the lowest, and inward.

    The ILP-aware allocation move: each core gets one decode-hungry rank
    and one that leaves slots on the floor. Returns the canonical
    representative, so the choice is stable under input symmetries.
    """
    order = _pressure_order(pressures)
    pairs = []
    lo, hi = 0, len(order) - 1
    while lo < hi:
        pairs.append((order[lo], order[hi]))
        lo += 1
        hi -= 1
    mapping = {}
    for core, (a, b) in enumerate(pairs):
        mapping[a] = 2 * core
        mapping[b] = 2 * core + 1
    if lo == hi:  # odd rank count: the median rank gets a core to itself
        mapping[order[lo]] = 2 * len(pairs)
    return ProcessMapping.from_dict(mapping).canonical()


def paired_adjacent_mapping(pressures: Sequence[float]) -> ProcessMapping:
    """Pair like with like: adjacent ranks in pressure order share a core.

    The contrast case to :func:`paired_extremes_mapping` — two
    decode-hungry ranks fight for the same core's slots while an idle
    core's worth of bandwidth goes unused elsewhere.
    """
    order = _pressure_order(pressures)
    mapping = {}
    for i, rank in enumerate(order):
        mapping[rank] = i
    return ProcessMapping.from_dict(mapping).canonical()


def mapping_then_priority_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    works: Sequence[float],
    profiles: Union[str, LoadProfile, Sequence[Union[str, LoadProfile]]] = "hpc",
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    keep_top: int = 0,
    workers: int = 1,
) -> SearchResult:
    """The staged heuristic: choose the mapping, then search priorities.

    Stage one costs no simulation at all — the mapping comes from
    :func:`rank_pressures` over the per-workload profiles
    :mod:`repro.smt` already models (extreme pairing, the ILP-aware
    allocation rule). Stage two is the exhaustive priority search on
    that single mapping. Against :func:`joint_search` this trades the
    mapping dimension's whole candidate factor for one pressure sort;
    ``benchmarks/bench_joint_search.py`` records how much of the joint
    optimum it recovers.
    """
    mapping = paired_extremes_mapping(rank_pressures(works, profiles))
    candidates = candidate_assignments(mapping, levels, max_gap)
    return _ranked_search(
        system, program_factory, candidates, keep_top, workers, "staged"
    )
