"""Search over priority assignments — automating the paper's case studies.

The paper finds good configurations by manually trying cases A-D per
application. These helpers enumerate (or greedily walk) the assignment
space and run each candidate through a :class:`~repro.machine.system.System`,
returning a ranking by total execution time. On the 4-rank machine the
exhaustive per-core space is small (priorities 3-6 per rank = 256
combinations, fewer after symmetry pruning), so exhaustive search is
practical with the analytic model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.balancer import PriorityAssignment
from repro.errors import ConfigurationError
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System
from repro.mpi.process import RankProgram

__all__ = [
    "SearchResult",
    "candidate_assignments",
    "exhaustive_priority_search",
    "greedy_priority_search",
]


@dataclass(frozen=True)
class SearchResult:
    """Ranking of evaluated assignments."""

    entries: Tuple[Tuple[PriorityAssignment, float, float], ...]
    """(assignment, total_time, imbalance_percent), best first."""

    @property
    def best(self) -> PriorityAssignment:
        return self.entries[0][0]

    @property
    def best_time(self) -> float:
        return self.entries[0][1]

    @property
    def evaluated(self) -> int:
        return len(self.entries)

    def improvement_over(self, reference_time: float) -> float:
        """Percent improvement of the best over a reference time."""
        if reference_time <= 0:
            raise ConfigurationError(f"reference_time must be > 0, got {reference_time}")
        return (reference_time - self.best_time) / reference_time * 100.0


def candidate_assignments(
    mapping: ProcessMapping,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
) -> List[PriorityAssignment]:
    """All per-core priority combinations within ``levels`` and ``max_gap``.

    Per-core symmetry is pruned by fixing the *lower-numbered rank of a
    pair* to never exceed its sibling unless the combination is distinct —
    i.e. plain product filtered by gap; combinations equal after swapping
    identical levels are naturally unique. Priority pairs that only shift
    both levels (e.g. (3,3) vs (4,4)) are kept: absolute level matters at
    the boundaries (1 and 6) and for later dynamic adjustment headroom.
    """
    for lv in levels:
        if not 1 <= lv <= 6:
            raise ConfigurationError(f"levels must be OS-settable (1-6), got {lv}")
    pairs = mapping.core_pairs()
    per_core_choices: List[List[Dict[int, int]]] = []
    for pair in pairs:
        choices: List[Dict[int, int]] = []
        if len(pair) == 1:
            for lv in levels:
                choices.append({pair[0]: lv})
        else:
            a, b = pair
            for la, lb in itertools.product(levels, repeat=2):
                if abs(la - lb) <= max_gap:
                    choices.append({a: la, b: lb})
        per_core_choices.append(choices)
    out: List[PriorityAssignment] = []
    for combo in itertools.product(*per_core_choices):
        prios: Dict[int, int] = {}
        for d in combo:
            prios.update(d)
        out.append(PriorityAssignment.build(mapping, prios, label="search"))
    return out


def exhaustive_priority_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    mapping: ProcessMapping,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    keep_top: int = 0,
) -> SearchResult:
    """Evaluate every candidate assignment; return them ranked.

    ``program_factory`` must build *fresh* generator programs per run
    (generators are single-use).
    """
    entries: List[Tuple[PriorityAssignment, float, float]] = []
    for assignment in candidate_assignments(mapping, levels, max_gap):
        result = system.run(
            list(program_factory()),
            mapping=assignment.mapping,
            priorities=assignment.priority_dict,
            label=assignment.describe(),
        )
        entries.append((assignment, result.total_time, result.imbalance_percent))
    entries.sort(key=lambda e: e[1])
    if keep_top > 0:
        entries = entries[:keep_top]
    if not entries:
        raise ConfigurationError("search evaluated no candidates")
    return SearchResult(tuple(entries))


def greedy_priority_search(
    system: System,
    program_factory: Callable[[], Sequence[RankProgram]],
    mapping: ProcessMapping,
    start: Optional[PriorityAssignment] = None,
    levels: Sequence[int] = (3, 4, 5, 6),
    max_gap: int = 2,
    max_steps: int = 20,
) -> SearchResult:
    """Hill-climb: try single-rank priority moves until no improvement.

    Far fewer runs than exhaustive search (the paper's manual procedure
    is essentially this loop); may stop in a local optimum.
    """
    if start is None:
        start = PriorityAssignment.build(
            mapping, {r: 4 for r in range(mapping.n_ranks)}, label="start"
        )

    def evaluate(assignment: PriorityAssignment) -> Tuple[float, float]:
        result = system.run(
            list(program_factory()),
            mapping=assignment.mapping,
            priorities=assignment.priority_dict,
            label=assignment.describe(),
        )
        return result.total_time, result.imbalance_percent

    current = start
    current_time, current_imb = evaluate(current)
    history: List[Tuple[PriorityAssignment, float, float]] = [
        (current, current_time, current_imb)
    ]
    for _ in range(max_steps):
        best_move: Optional[Tuple[PriorityAssignment, float, float]] = None
        prios = current.priority_dict
        for rank in range(mapping.n_ranks):
            for lv in levels:
                if lv == prios[rank]:
                    continue
                trial_prios = dict(prios)
                trial_prios[rank] = lv
                trial = PriorityAssignment.build(mapping, trial_prios, label="greedy")
                if trial.max_gap > max_gap:
                    continue
                t, imb = evaluate(trial)
                history.append((trial, t, imb))
                if best_move is None or t < best_move[1]:
                    best_move = (trial, t, imb)
        if best_move is None or best_move[1] >= current_time:
            break
        current, current_time, current_imb = best_move
    history.sort(key=lambda e: e[1])
    return SearchResult(tuple(history))
