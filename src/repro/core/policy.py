"""The balancing-policy protocol: one typed interface over both families.

The paper's Section VIII names the missing piece — an OS algorithm that
*automatically* decides which rank deserves resources. This module is
the contract such algorithms implement so they can be judged head to
head (see :mod:`repro.policies` for the zoo and the tournament runner):

* a policy has a serialisable identity — :class:`PolicySpec`, name +
  canonical key-sorted params with a sha256 content address via
  :mod:`repro.util.fingerprint` — so tournament results can name the
  exact contender they scored;
* a **static** policy (:class:`StaticPolicy`) is a
  :class:`~repro.core.balancer.Balancer`: observations in, one
  up-front :class:`~repro.core.balancer.PriorityAssignment` out — the
  paper's mechanism (cases ST/A-D, the static planner);
* a **dynamic** policy (:class:`DynamicPolicy`) manufactures fresh
  runtime *controllers* (``interval`` attribute + ``on_tick(runtime,
  now)``, the ``MpiRuntime(controllers=...)`` hook) — the paper's
  future work, of which :class:`~repro.core.dynamic.DynamicBalancer`
  is the incumbent;
* an **allocation** policy (:class:`AllocationPolicy`) chooses the
  *mapping* instead of the priorities: observations in, one
  :class:`~repro.machine.mapping.ProcessMapping` out, priorities left
  at MEDIUM — the thread-to-core allocation family from the related
  work (ILP-aware scheduling), and the other half of the paper's
  manual tuning story the zoo can now score head-to-head against
  priority-only contenders;
* a **placement** policy (:class:`PlacementPolicy`) chooses the
  rank→*node* layout on a multi-node cluster (v3 scenarios carrying a
  :class:`~repro.cluster.TopologySpec`): observations plus the cluster
  shape in, one global-CPU mapping out, priorities left at MEDIUM —
  the paper's MareNostrum motivation made a scored axis, since on a
  cluster *which node* decides which messages cross the network.

This module lives in ``core`` (below ``scenarios``) on purpose: the
protocol speaks (works, mapping) like the rest of the core layer, and
the scenario-level plumbing — applying a policy to a
``ScenarioSpec``, running tournaments over seeded corpora — lives in
the upper :mod:`repro.policies` package.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple, Union

from repro.core.balancer import Balancer, PriorityAssignment
from repro.errors import ConfigurationError, ValidationError
from repro.machine.mapping import ProcessMapping
from repro.util.fingerprint import fingerprint_doc

__all__ = [
    "POLICY_FAMILIES",
    "PolicySpec",
    "Policy",
    "StaticPolicy",
    "DynamicPolicy",
    "AllocationPolicy",
    "PlacementPolicy",
]

#: The algorithm families the protocol distinguishes: ``static`` plans
#: priorities up front, ``dynamic`` adjusts them at runtime,
#: ``allocation`` plans the rank→core mapping (priorities untouched),
#: ``placement`` plans the rank→*node* layout on a cluster.
POLICY_FAMILIES = ("static", "dynamic", "allocation", "placement")

_ParamValue = Union[int, float, str, bool]


def _freeze_params(
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]],
) -> Tuple[Tuple[str, _ParamValue], ...]:
    """Canonical params form: key-sorted tuple of (name, scalar) pairs."""
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if not isinstance(value, (int, float, str, bool)):
            raise ConfigurationError(
                f"policy param {key!r} must be a scalar, got {value!r}"
            )
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class PolicySpec:
    """A policy's serialisable identity: name, family and parameters.

    The document form follows the ``ScenarioSpec`` conventions: a
    canonical key-sorted shape with ``params`` omitted when empty,
    strict :meth:`from_doc` (unknown fields raise), and a memoised
    sha256 :attr:`fingerprint` over the canonical JSON — the content
    address leaderboards pin so a scored policy can never be silently
    edited.
    """

    name: str
    family: str  # one of POLICY_FAMILIES
    params: Tuple[Tuple[str, _ParamValue], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))
        if not self.name:
            raise ConfigurationError("policy spec has no name")
        if self.family not in POLICY_FAMILIES:
            raise ConfigurationError(
                f"policy {self.name!r}: family must be one of "
                f"{POLICY_FAMILIES}, got {self.family!r}"
            )

    def params_dict(self) -> Dict[str, _ParamValue]:
        return dict(self.params)

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> dict:
        doc: dict = {"name": self.name, "family": self.family}
        if self.params:
            doc["params"] = dict(self.params)
        return doc

    _REQUIRED = ("name", "family")
    _OPTIONAL = ("params",)

    @classmethod
    def from_doc(cls, doc: object) -> "PolicySpec":
        """Strict deserialisation: the exact inverse of :meth:`to_doc`."""
        if not isinstance(doc, dict):
            raise ValidationError(
                f"policy document must be a JSON object, got {doc!r}"
            )
        unknown = set(doc) - set(cls._REQUIRED) - set(cls._OPTIONAL)
        if unknown:
            raise ValidationError(f"unknown policy fields: {sorted(unknown)}")
        missing = [k for k in cls._REQUIRED if k not in doc]
        if missing:
            raise ValidationError(f"missing policy fields: {missing}")
        params = doc.get("params", {})
        if not isinstance(params, (dict, list, tuple)):
            raise ValidationError(f"policy params must be an object, got {params!r}")
        try:
            return cls(
                name=str(doc["name"]),
                family=str(doc["family"]),
                params=_freeze_params(params),
            )
        except ConfigurationError as exc:
            raise ValidationError(f"malformed policy document: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form (memoised; the spec is frozen)."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_doc(self.to_doc())
            object.__setattr__(self, "_fingerprint", cached)
        return cached


class Policy:
    """A balancing policy: a fingerprintable contender in the tournament.

    Subclasses declare which family they belong to by deriving from
    :class:`StaticPolicy` or :class:`DynamicPolicy` and implement
    :meth:`spec` so every parameterisation has a canonical identity.
    """

    #: Zoo name; also the leaderboard row label.
    name: str = ""
    #: "static" or "dynamic" — set by the family base class.
    family: str = ""
    description: str = ""

    @abstractmethod
    def spec(self) -> PolicySpec:
        """The serialisable identity of this exact parameterisation."""

    @property
    def fingerprint(self) -> str:
        return self.spec().fingerprint

    def describe(self) -> str:
        return f"[{self.family}] {self.name}: {self.description}"


class StaticPolicy(Policy, Balancer):
    """The up-front family: observations in, one assignment out.

    A static policy *is* a :class:`~repro.core.balancer.Balancer` —
    ``plan(compute_seconds, mapping)`` returns the
    :class:`~repro.core.balancer.PriorityAssignment` installed before
    launch, exactly like the paper's ``echo N > /proc/<pid>/
    hmt_priority`` procedure.
    """

    family = "static"

    @abstractmethod
    def plan(self, compute_seconds, mapping) -> PriorityAssignment:
        """See :meth:`repro.core.balancer.Balancer.plan`."""


class DynamicPolicy(Policy):
    """The runtime family: a factory of fresh per-run controllers.

    :meth:`controller` must return a *new* controller object per call
    (controllers are stateful across a run); the returned object
    satisfies the ``MpiRuntime(controllers=...)`` protocol — an
    ``interval`` in simulated seconds plus ``on_tick(runtime, now)``.
    """

    family = "dynamic"

    @abstractmethod
    def controller(self):
        """A fresh runtime controller for one run."""


class AllocationPolicy(Policy):
    """The thread-to-core family: observations in, one mapping out.

    Where a static policy decides *how fast each context decodes*, an
    allocation policy decides *which ranks share a core* — the lever the
    paper fixed by hand (BT-MZ's heaviest-with-lightest re-pairing) and
    the related allocation-policy literature treats as primary. The
    planned mapping replaces the scenario's; priorities stay at MEDIUM,
    so a tournament row isolates exactly what smart placement buys
    without smart priorities.
    """

    family = "allocation"

    @abstractmethod
    def plan_mapping(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        profiles=None,
    ) -> ProcessMapping:
        """The mapping to install, from per-rank observed compute.

        ``mapping`` is the scenario's incumbent layout (for its rank
        count and as the fallback); the returned mapping must cover the
        same ranks. ``profiles`` optionally carries per-rank load
        profiles (:class:`~repro.smt.instructions.LoadProfile` or base
        profile names) so ILP-aware policies can weigh decode appetite,
        not just work.
        """


class PlacementPolicy(Policy):
    """The node-placement family: cluster shape in, global mapping out.

    Where an allocation policy decides *which ranks share a core* on one
    chip, a placement policy decides *which node each rank lives on* —
    the extrinsic-imbalance lever the paper's MareNostrum framing points
    at: co-located partners exchange over shared memory, separated ones
    over the network. The planned mapping is in global CPU ids (node
    ``k`` owns ``k*cpus_per_node ..``); priorities stay at MEDIUM so a
    tournament row isolates exactly what placement buys.

    Cluster placements must be compared by *exact* CPU assignment, not
    :meth:`~repro.machine.mapping.ProcessMapping.canonical` — canonical
    packs onto the lowest cores and would move ranks across nodes.
    """

    family = "placement"

    @abstractmethod
    def plan_placement(
        self,
        compute_seconds: Sequence[float],
        mapping: ProcessMapping,
        n_nodes: int,
        cpus_per_node: int = 4,
    ) -> ProcessMapping:
        """The global-CPU mapping to install on an ``n_nodes`` cluster.

        ``mapping`` is the scenario's incumbent layout (and the
        fallback when the policy's pattern does not apply — odd rank
        counts, insufficient capacity); the returned mapping must cover
        the same ranks within ``n_nodes * cpus_per_node`` global CPUs.
        """
