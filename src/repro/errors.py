"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from simulation-time faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation/system configuration is inconsistent or out of range."""


class PrivilegeError(ReproError):
    """An actor attempted to set a hardware priority above its privilege.

    Mirrors the POWER5 rules (paper Table I): user software may set
    priorities 2-4, the OS 1-6, and only the hypervisor may use 0 and 7.
    """

    def __init__(self, actor: str, priority: int, allowed: str) -> None:
        self.actor = actor
        self.priority = priority
        super().__init__(
            f"{actor} may not set hardware priority {priority}; allowed: {allowed}"
        )


class InvalidPriorityError(ReproError):
    """A hardware thread priority outside the architectural range 0-7."""

    def __init__(self, value: object) -> None:
        self.value = value
        super().__init__(f"hardware thread priority must be an integer in 0..7, got {value!r}")


class MpiError(ReproError):
    """Base class for errors raised by the simulated MPI runtime."""


class RankError(MpiError):
    """A rank index outside the communicator's size."""


class RequestError(MpiError):
    """Misuse of a nonblocking request (double wait, wait on freed, ...)."""


class DeadlockError(MpiError):
    """The discrete-event runtime detected that no process can make progress."""

    def __init__(self, detail: str) -> None:
        super().__init__(f"simulated MPI deadlock: {detail}")


class MappingError(ReproError):
    """A process-to-hardware-context mapping is invalid (overlap, bad cpu id)."""


class TraceError(ReproError):
    """A trace is malformed or queried inconsistently."""


class WorkloadError(ReproError):
    """A workload definition is invalid (negative work, bad rank count, ...)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class PersistenceError(ReproError):
    """A persisted artifact (throughput table, ...) is malformed or does
    not match the configuration that is trying to load it."""


class ValidationError(ReproError, ValueError):
    """A serialised document failed schema validation.

    Raised by the strict ``from_doc`` deserialisers (scenario specs and
    their envelopes) for unknown fields, missing required fields, or
    values that cannot be coerced to the declared shape. Derives from
    ``ValueError`` so generic callers that catch the builtin keep
    working, and from :class:`ReproError` so the HTTP layer maps it to a
    400 like every other library error."""


class ValidationTypeError(ReproError, TypeError):
    """A value has the wrong type.

    Derives from both :class:`ReproError` (so library-wide ``except
    ReproError`` handlers see it) and :class:`TypeError` (so callers that
    catch the builtin keep working)."""


class OracleError(ReproError):
    """Base class for the invariant/conformance oracle layer."""


class InvariantViolation(OracleError):
    """A machine-checked physics invariant does not hold.

    Carries the violated invariant's registry name and a human-readable
    detail so CI logs point straight at the broken law."""

    def __init__(self, invariant: str, detail: str) -> None:
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"invariant {invariant!r} violated: {detail}")


class GoldenMismatchError(OracleError):
    """A replayed run disagrees with its recorded golden-trace snapshot."""


class ServiceError(ReproError):
    """Base class for the scenario-serving service layer."""


class QueueFullError(ServiceError):
    """The job queue rejected an admission (backpressure).

    Carries ``retry_after`` — the server's estimate, in seconds, of when
    capacity will free up — which the HTTP layer surfaces as a 429 with
    a ``Retry-After`` header so well-behaved clients back off instead of
    hammering a saturated service.
    """

    def __init__(self, depth: int, max_depth: int, retry_after: float) -> None:
        self.depth = depth
        self.max_depth = max_depth
        self.retry_after = retry_after
        super().__init__(
            f"job queue full ({depth}/{max_depth}); retry after "
            f"{retry_after:.1f}s"
        )


class JobTimeoutError(ServiceError):
    """A job exceeded its per-attempt timeout or total deadline."""

    def __init__(self, job_id: str, limit: float, kind: str = "timeout") -> None:
        self.job_id = job_id
        self.limit = limit
        super().__init__(f"job {job_id} exceeded its {kind} of {limit:.1f}s")


class JobCancelledError(ServiceError):
    """A job was cancelled before (or while) running."""


class UnknownJobError(ServiceError):
    """A job id that the service has never issued (or has evicted)."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job id {job_id!r}")


class TransientWorkerError(ServiceError):
    """A worker failed in a way worth retrying (the retry-with-backoff
    class; deterministic configuration errors are *not* retried)."""
