"""Point-to-point message matching and transfer timing.

Implements MPI matching semantics — (source, tag) pairs with wildcards,
FIFO order per (source, dest, tag) — and an eager/rendezvous cost model
typical of a shared-memory MPI like the MPI-CH the paper used:

* *eager* (small messages): the sender's request completes as soon as the
  message is handed to the transport; the receiver completes after
  ``latency + nbytes/bandwidth`` once both sides have posted.
* *rendezvous* (large messages): the sender completes together with the
  receiver — it cannot release the buffer until the transfer drains.

Transfer completions are *scheduled*: the engine returns ``(time,
request, status)`` triples the runtime puts on its event heap; the
runtime calls ``request.complete(status)`` when simulated time reaches
them, so ``Request.done`` always reflects simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import MpiError
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request, RequestKind
from repro.mpi.status import Status
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CommCosts", "MessageEngine"]


@dataclass(frozen=True)
class CommCosts:
    """Transfer cost parameters (shared-memory MPI defaults)."""

    latency: float = 2.0e-6
    bandwidth: float = 1.5e9  # bytes/second
    eager_threshold: int = 65536
    #: CPU-side cost charged to a rank for posting any MPI call.
    call_overhead: float = 0.5e-6

    def __post_init__(self) -> None:
        check_non_negative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("eager_threshold", self.eager_threshold)
        check_non_negative("call_overhead", self.call_overhead)

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for ``nbytes``."""
        check_non_negative("nbytes", nbytes)
        return self.latency + nbytes / self.bandwidth


@dataclass
class _PostedSend:
    src: int
    dst: int
    tag: int
    nbytes: int
    time: float
    request: Request
    #: True once the sender's completion has been scheduled (eager path).
    sender_released: bool = False


@dataclass
class _PostedRecv:
    dst: int
    src: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    time: float
    request: Request


class MessageEngine:
    """Posted-send / posted-recv queues with MPI matching order.

    ``pair_costs`` (optional) resolves per-pair transfer parameters —
    multi-node machines route inter-node messages over the network model
    instead of shared memory. Defaults to uniform ``costs``.
    """

    def __init__(
        self,
        n_ranks: int,
        costs: Optional[CommCosts] = None,
        pair_costs=None,
    ) -> None:
        if n_ranks <= 0:
            raise MpiError(f"n_ranks must be > 0, got {n_ranks}")
        self.n_ranks = n_ranks
        self.costs = costs or CommCosts()
        self._pair_costs = pair_costs
        #: Unmatched sends, keyed by destination (FIFO per key preserves
        #: MPI's non-overtaking rule).
        self._sends: Dict[int, Deque[_PostedSend]] = {r: deque() for r in range(n_ranks)}
        #: Unmatched receives, keyed by destination rank.
        self._recvs: Dict[int, Deque[_PostedRecv]] = {r: deque() for r in range(n_ranks)}
        self.messages_matched = 0

    def _check_rank(self, name: str, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise MpiError(f"{name} {rank} out of range 0..{self.n_ranks - 1}")

    def costs_for(self, src: int, dst: int) -> CommCosts:
        """Transfer parameters for a rank pair."""
        if self._pair_costs is not None:
            return self._pair_costs(src, dst)
        return self.costs

    # -- posting ---------------------------------------------------------------

    def post_send(
        self, src: int, dst: int, tag: int, nbytes: int, time: float
    ) -> Tuple[Request, List[Tuple[float, Request, Optional[Status]]]]:
        """Post a send; returns (request, scheduled completions)."""
        self._check_rank("source", src)
        self._check_rank("destination", dst)
        if tag < 0:
            raise MpiError(f"send tag must be >= 0, got {tag}")
        check_non_negative("nbytes", nbytes)
        req = Request(RequestKind.SEND, src)
        posted = _PostedSend(src, dst, tag, nbytes, time, req)
        completions = self._try_match_send(posted)
        if completions is None:
            self._sends[dst].append(posted)
            completions = []
            if nbytes <= self.costs_for(src, dst).eager_threshold:
                # Eager: the sender is done as soon as the transport has
                # buffered the message; the transfer itself completes when
                # the receive is eventually posted and matched.
                completions.append(
                    (time + self.costs_for(src, dst).call_overhead, req, None)
                )
                posted.sender_released = True
        return req, completions

    def post_recv(
        self, dst: int, src: int, tag: int, time: float
    ) -> Tuple[Request, List[Tuple[float, Request, Optional[Status]]]]:
        """Post a receive; returns (request, scheduled completions)."""
        self._check_rank("destination", dst)
        if src != ANY_SOURCE:
            self._check_rank("source", src)
        if tag < 0 and tag != ANY_TAG:
            raise MpiError(f"recv tag must be >= 0 or ANY_TAG, got {tag}")
        req = Request(RequestKind.RECV, dst)
        posted = _PostedRecv(dst, src, tag, time, req)
        completions = self._try_match_recv(posted)
        if completions is None:
            self._recvs[dst].append(posted)
            completions = []
        return req, completions

    # -- matching ----------------------------------------------------------------

    @staticmethod
    def _matches(send: _PostedSend, recv: _PostedRecv) -> bool:
        return (recv.src in (ANY_SOURCE, send.src)) and (
            recv.tag in (ANY_TAG, send.tag)
        )

    def _schedule(
        self, send: _PostedSend, recv: _PostedRecv
    ) -> List[Tuple[float, Request, Optional[Status]]]:
        self.messages_matched += 1
        costs = self.costs_for(send.src, send.dst)
        start = max(send.time, recv.time)
        done = start + costs.transfer_time(send.nbytes)
        status = Status(source=send.src, tag=send.tag, nbytes=send.nbytes, time=done)
        out: List[Tuple[float, Request, Optional[Status]]] = [(done, recv.request, status)]
        if not send.sender_released:
            if send.nbytes > costs.eager_threshold:
                # Rendezvous: the sender drains with the receiver.
                out.append((done, send.request, None))
            else:
                out.append((send.time + costs.call_overhead, send.request, None))
        return out

    def _try_match_send(
        self, send: _PostedSend
    ) -> Optional[List[Tuple[float, Request, Optional[Status]]]]:
        queue = self._recvs[send.dst]
        for i, recv in enumerate(queue):
            if self._matches(send, recv):
                del queue[i]
                return self._schedule(send, recv)
        return None

    def _try_match_recv(
        self, recv: _PostedRecv
    ) -> Optional[List[Tuple[float, Request, Optional[Status]]]]:
        queue = self._sends[recv.dst]
        for i, send in enumerate(queue):
            if self._matches(send, recv):
                del queue[i]
                return self._schedule(send, recv)
        return None

    # -- diagnostics ---------------------------------------------------------------

    @property
    def unmatched_sends(self) -> int:
        return sum(len(q) for q in self._sends.values())

    @property
    def unmatched_recvs(self) -> int:
        return sum(len(q) for q in self._recvs.values())

    def pending_summary(self) -> str:
        """Human-readable dump for deadlock reports."""
        parts = []
        for dst, q in self._sends.items():
            for s in q:
                parts.append(f"send {s.src}->{dst} tag={s.tag} ({s.nbytes}B)")
        for dst, q in self._recvs.items():
            for r in q:
                src = "*" if r.src == ANY_SOURCE else r.src
                tag = "*" if r.tag == ANY_TAG else r.tag
                parts.append(f"recv {src}->{dst} tag={tag}")
        return "; ".join(parts) if parts else "none"
