"""Receive status objects, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status"]


@dataclass(frozen=True)
class Status:
    """What a completed receive learned about its message."""

    source: int
    tag: int
    nbytes: int
    #: Simulation time at which the message was fully received.
    time: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative message size: {self.nbytes}")
