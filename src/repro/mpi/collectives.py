"""Collective operations: barrier, bcast, reduce, allreduce, gather, ...

Collectives are modelled at the operation level, not decomposed into
point-to-point messages: each participating rank *arrives*, spins
(``SYNC``) until every member of the communicator has arrived, and is
released after the collective's completion cost. The cost model uses the
standard logarithmic-tree estimate ``ceil(log2(size)) * (latency +
bytes/bandwidth)`` — adequate for a 4-rank shared-memory machine, and
the paper's applications spend well under 1 % of their time inside the
transfers themselves (the *waiting* is what matters, and that is exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import MpiError
from repro.mpi.communicator import Communicator
from repro.mpi.p2p import CommCosts

__all__ = ["CollectiveKind", "CollectiveManager"]


#: Collectives that move per-rank payloads proportional to size.
_ALL_TO_ONE = ("reduce", "gather")
_ONE_TO_ALL = ("bcast", "scatter")
_ALL_TO_ALL = ("allreduce", "allgather", "alltoall")
CollectiveKind = str
_VALID_KINDS: Tuple[str, ...] = ("barrier",) + _ALL_TO_ONE + _ONE_TO_ALL + _ALL_TO_ALL


@dataclass
class _PendingCollective:
    comm: Communicator
    kind: str
    nbytes: int
    arrived: Dict[int, float] = field(default_factory=dict)  # world rank -> time


class CollectiveManager:
    """Tracks in-flight collectives per (communicator, sequence number).

    Each rank's n-th collective on a communicator pairs with everyone
    else's n-th — MPI's ordering rule. Mismatched kinds on the same slot
    are programming errors and raise.
    """

    def __init__(self, costs: Optional[CommCosts] = None, pair_costs=None) -> None:
        self.costs = costs or CommCosts()
        #: Optional per-rank-pair cost resolver (multi-node machines): a
        #: collective's steps run at the *worst* pair's parameters.
        self._pair_costs = pair_costs
        self._worst_cache: Dict[int, CommCosts] = {}
        self._seq: Dict[Tuple[int, int], int] = {}  # (comm id, world rank) -> count
        self._pending: Dict[Tuple[int, int], _PendingCollective] = {}
        self.completed = 0

    def _worst_costs(self, comm: Communicator) -> CommCosts:
        if self._pair_costs is None:
            return self.costs
        cached = self._worst_cache.get(comm.id)
        if cached is not None:
            return cached
        ranks = comm.world_ranks
        latency = self.costs.latency
        bandwidth = self.costs.bandwidth
        for i, a in enumerate(ranks):
            for b in ranks[i + 1 :]:
                c = self._pair_costs(a, b)
                latency = max(latency, c.latency)
                bandwidth = min(bandwidth, c.bandwidth)
        worst = CommCosts(
            latency=latency,
            bandwidth=bandwidth,
            eager_threshold=self.costs.eager_threshold,
            call_overhead=self.costs.call_overhead,
        )
        self._worst_cache[comm.id] = worst
        return worst

    def completion_cost(self, comm: Communicator, kind: str, nbytes: int) -> float:
        """Time from last arrival to release."""
        costs = self._worst_costs(comm)
        steps = max(1, math.ceil(math.log2(max(2, comm.size))))
        if kind == "barrier":
            return steps * costs.latency
        per_step = costs.latency + nbytes / costs.bandwidth
        if kind in _ALL_TO_ALL:
            return 2 * steps * per_step
        return steps * per_step

    def arrive(
        self,
        comm: Communicator,
        world_rank: int,
        kind: str,
        nbytes: int,
        time: float,
    ) -> Optional[Tuple[float, List[int]]]:
        """Rank ``world_rank`` enters its next collective on ``comm``.

        Returns ``None`` while the collective is incomplete; when the
        last rank arrives, returns ``(release_time, world_ranks)`` for
        the runtime to schedule.
        """
        if kind not in _VALID_KINDS:
            raise MpiError(f"unknown collective kind {kind!r}")
        if world_rank not in comm:
            raise MpiError(f"rank {world_rank} not in {comm.name}")
        seq_key = (comm.id, world_rank)
        seq = self._seq.get(seq_key, 0)
        self._seq[seq_key] = seq + 1

        slot = (comm.id, seq)
        pending = self._pending.get(slot)
        if pending is None:
            pending = _PendingCollective(comm, kind, nbytes)
            self._pending[slot] = pending
        else:
            if pending.kind != kind:
                raise MpiError(
                    f"collective mismatch on {comm.name} slot {seq}: "
                    f"{pending.kind} vs {kind}"
                )
        if world_rank in pending.arrived:
            raise MpiError(
                f"rank {world_rank} arrived twice at {comm.name} slot {seq}"
            )
        pending.arrived[world_rank] = time
        pending.nbytes = max(pending.nbytes, nbytes)
        if len(pending.arrived) < comm.size:
            return None
        del self._pending[slot]
        self.completed += 1
        release = max(pending.arrived.values()) + self.completion_cost(
            comm, kind, pending.nbytes
        )
        return release, comm.world_ranks

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def pending_summary(self) -> str:
        """Human-readable dump for deadlock reports."""
        parts = []
        for (comm_id, seq), p in self._pending.items():
            waiting = sorted(set(p.comm.world_ranks) - set(p.arrived))
            parts.append(
                f"{p.kind} on {p.comm.name} (slot {seq}): waiting for ranks {waiting}"
            )
        return "; ".join(parts) if parts else "none"
