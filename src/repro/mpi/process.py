"""Rank programs: the API a simulated MPI rank codes against.

A rank program is a Python generator function taking one argument, the
:class:`RankApi`, and yielding operation descriptors::

    def worker(mpi: RankApi):
        yield mpi.compute(2.0e9, profile="fpu")       # instructions
        req = yield mpi.irecv(source=0, tag=7)
        yield mpi.compute(1.0e9, profile="fpu")
        status = yield mpi.wait(req)
        yield mpi.barrier()

``yield`` returns the operation's result (a :class:`Request` for isend /
irecv, a :class:`Status` for recv/wait, ``None`` otherwise), exactly as
the blocking/nonblocking split works in real MPI. The runtime advances
the generator when the operation completes in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence, Tuple, Union

from repro.errors import MpiError, WorkloadError
from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request
from repro.trace.events import RankState

__all__ = [
    "ComputeOp",
    "BarrierOp",
    "SendOp",
    "RecvOp",
    "SendrecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "SetPriorityOp",
    "BcastOp",
    "AllreduceOp",
    "ReduceOp",
    "GatherOp",
    "ScatterOp",
    "AllgatherOp",
    "AlltoallOp",
    "Op",
    "RankApi",
    "RankProgram",
]


# -- operation descriptors -------------------------------------------------------


@dataclass(frozen=True)
class ComputeOp:
    """Execute ``instructions`` of work under load ``profile``."""

    instructions: float
    profile: str
    #: Trace state recorded while computing (COMPUTE, INIT or FINAL).
    state: RankState = RankState.COMPUTE

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise WorkloadError(f"negative compute amount: {self.instructions}")
        if self.state not in (RankState.COMPUTE, RankState.INIT, RankState.FINAL):
            raise WorkloadError(f"compute state must be a useful state, got {self.state}")


@dataclass(frozen=True)
class BarrierOp:
    comm: Optional[Communicator] = None  # None = MPI_COMM_WORLD


@dataclass(frozen=True)
class _CollectiveOp:
    comm: Optional[Communicator]
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise MpiError(f"negative collective payload: {self.nbytes}")


@dataclass(frozen=True)
class BcastOp(_CollectiveOp):
    root: int = 0


@dataclass(frozen=True)
class ReduceOp(_CollectiveOp):
    root: int = 0


@dataclass(frozen=True)
class AllreduceOp(_CollectiveOp):
    pass


@dataclass(frozen=True)
class GatherOp(_CollectiveOp):
    root: int = 0


@dataclass(frozen=True)
class ScatterOp(_CollectiveOp):
    root: int = 0


@dataclass(frozen=True)
class AllgatherOp(_CollectiveOp):
    pass


@dataclass(frozen=True)
class AlltoallOp(_CollectiveOp):
    pass


@dataclass(frozen=True)
class SendrecvOp:
    """Combined blocking send+receive (``MPI_Sendrecv``): post both, wait
    for both; deadlock-free pairwise exchange. Resumes with the receive's
    :class:`Status`."""

    dest: int
    send_tag: int
    nbytes: int
    source: int
    recv_tag: int


@dataclass(frozen=True)
class SendOp:
    dest: int
    tag: int
    nbytes: int


@dataclass(frozen=True)
class RecvOp:
    source: int
    tag: int


@dataclass(frozen=True)
class IsendOp:
    dest: int
    tag: int
    nbytes: int


@dataclass(frozen=True)
class IrecvOp:
    source: int
    tag: int


@dataclass(frozen=True)
class WaitOp:
    request: Request


@dataclass(frozen=True)
class WaitallOp:
    requests: Tuple[Request, ...]


@dataclass(frozen=True)
class SetPriorityOp:
    """Change this rank's hardware thread priority.

    ``via="or-nop"`` models in-program priority nops (user privilege:
    silently ignored outside 2-4, like the hardware). ``via="procfs"``
    models another agent writing ``/proc/<pid>/hmt_priority`` (requires
    the patched kernel; OS privilege, 1-6).
    """

    priority: int
    via: str = "or-nop"

    def __post_init__(self) -> None:
        if self.via not in ("or-nop", "procfs"):
            raise MpiError(f"SetPriorityOp.via must be 'or-nop' or 'procfs', got {self.via!r}")


Op = Union[
    ComputeOp,
    BarrierOp,
    BcastOp,
    ReduceOp,
    AllreduceOp,
    GatherOp,
    ScatterOp,
    AllgatherOp,
    AlltoallOp,
    SendOp,
    RecvOp,
    SendrecvOp,
    IsendOp,
    IrecvOp,
    WaitOp,
    WaitallOp,
    SetPriorityOp,
]

#: The generator type a rank program body produces.
RankProgram = Callable[["RankApi"], Generator[Op, object, None]]


# -- the per-rank API ---------------------------------------------------------------


class RankApi:
    """Operation factory handed to each rank program.

    Also carries the rank's identity (``rank``, ``size``) the way
    ``MPI_Comm_rank``/``MPI_Comm_size`` would provide it.
    """

    def __init__(self, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise MpiError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size

    # compute ----------------------------------------------------------------

    def compute(
        self,
        instructions: float,
        profile: str = "cfd",
        state: RankState = RankState.COMPUTE,
    ) -> ComputeOp:
        """``instructions`` of work under the named load profile."""
        return ComputeOp(instructions, profile, state)

    def init_phase(self, instructions: float, profile: str = "cfd") -> ComputeOp:
        """Initialisation work (traced as INIT)."""
        return ComputeOp(instructions, profile, RankState.INIT)

    def final_phase(self, instructions: float, profile: str = "cfd") -> ComputeOp:
        """Finalisation work (traced as FINAL)."""
        return ComputeOp(instructions, profile, RankState.FINAL)

    # collectives -------------------------------------------------------------

    def barrier(self, comm: Optional[Communicator] = None) -> BarrierOp:
        return BarrierOp(comm)

    def bcast(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> BcastOp:
        return BcastOp(comm, nbytes, root)

    def reduce(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> ReduceOp:
        return ReduceOp(comm, nbytes, root)

    def allreduce(self, nbytes: int, comm: Optional[Communicator] = None) -> AllreduceOp:
        return AllreduceOp(comm, nbytes)

    def gather(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> GatherOp:
        return GatherOp(comm, nbytes, root)

    def scatter(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> ScatterOp:
        return ScatterOp(comm, nbytes, root)

    def allgather(self, nbytes: int, comm: Optional[Communicator] = None) -> AllgatherOp:
        return AllgatherOp(comm, nbytes)

    def alltoall(self, nbytes: int, comm: Optional[Communicator] = None) -> AlltoallOp:
        return AlltoallOp(comm, nbytes)

    # point-to-point ---------------------------------------------------------------

    def send(self, dest: int, tag: int, nbytes: int) -> SendOp:
        return SendOp(dest, tag, nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvOp:
        return RecvOp(source, tag)

    def sendrecv(
        self,
        dest: int,
        send_tag: int,
        nbytes: int,
        source: int = ANY_SOURCE,
        recv_tag: int = ANY_TAG,
    ) -> SendrecvOp:
        return SendrecvOp(dest, send_tag, nbytes, source, recv_tag)

    def isend(self, dest: int, tag: int, nbytes: int) -> IsendOp:
        return IsendOp(dest, tag, nbytes)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> IrecvOp:
        return IrecvOp(source, tag)

    def wait(self, request: Request) -> WaitOp:
        return WaitOp(request)

    def waitall(self, requests: Sequence[Request]) -> WaitallOp:
        return WaitallOp(tuple(requests))

    # priority control -----------------------------------------------------------

    def set_priority(self, priority: int, via: str = "or-nop") -> SetPriorityOp:
        return SetPriorityOp(priority, via)
