"""MPI-like datatype tags and message sizing."""

from __future__ import annotations

import enum

from repro.errors import MpiError

__all__ = ["Datatype", "ANY_SOURCE", "ANY_TAG", "message_bytes"]

#: Wildcard source for receives (matches any sender).
ANY_SOURCE: int = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG: int = -1


class Datatype(enum.Enum):
    """Element types with their wire sizes in bytes."""

    BYTE = 1
    INT = 4
    FLOAT = 4
    DOUBLE = 8
    COMPLEX = 16

    @property
    def size(self) -> int:
        return self.value


def message_bytes(count: int, datatype: Datatype = Datatype.DOUBLE) -> int:
    """Wire size of ``count`` elements of ``datatype``."""
    if count < 0:
        raise MpiError(f"negative element count: {count}")
    if not isinstance(datatype, Datatype):
        raise MpiError(f"not a Datatype: {datatype!r}")
    return count * datatype.size
