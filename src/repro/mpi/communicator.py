"""Communicators: rank groups for point-to-point and collective ops."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import RankError

__all__ = ["Communicator"]


class Communicator:
    """A group of ranks with its own rank numbering.

    Ranks are identified by their *world* rank internally; a communicator
    maps its local ranks 0..size-1 onto world ranks, like a communicator
    produced by ``MPI_Comm_split``.
    """

    _ids = iter(range(1, 1 << 30))

    def __init__(self, world_ranks: Sequence[int], name: str = "comm") -> None:
        if not world_ranks:
            raise RankError("a communicator needs at least one rank")
        if len(set(world_ranks)) != len(world_ranks):
            raise RankError(f"duplicate ranks in communicator: {list(world_ranks)}")
        if any(r < 0 for r in world_ranks):
            raise RankError(f"negative world rank in {list(world_ranks)}")
        self.id = next(self._ids)
        self.name = name
        self._world_ranks: List[int] = list(world_ranks)
        self._local_of = {w: i for i, w in enumerate(self._world_ranks)}

    @classmethod
    def world(cls, n_ranks: int) -> "Communicator":
        """``MPI_COMM_WORLD`` over ranks 0..n_ranks-1."""
        return cls(list(range(n_ranks)), name="MPI_COMM_WORLD")

    @property
    def size(self) -> int:
        return len(self._world_ranks)

    @property
    def world_ranks(self) -> List[int]:
        return list(self._world_ranks)

    def world_rank(self, local_rank: int) -> int:
        """World rank of ``local_rank`` in this communicator."""
        try:
            return self._world_ranks[local_rank]
        except IndexError:
            raise RankError(
                f"local rank {local_rank} out of range 0..{self.size - 1} in {self.name}"
            ) from None

    def local_rank(self, world_rank: int) -> int:
        """This communicator's rank number for ``world_rank``."""
        try:
            return self._local_of[world_rank]
        except KeyError:
            raise RankError(f"world rank {world_rank} not in {self.name}") from None

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._local_of

    def split(self, colors: Sequence[int]) -> List["Communicator"]:
        """``MPI_Comm_split``: one communicator per distinct color.

        ``colors[i]`` is the color of this communicator's local rank i;
        negative colors (``MPI_UNDEFINED``) join no new communicator.
        """
        if len(colors) != self.size:
            raise RankError(
                f"need one color per rank: got {len(colors)} for size {self.size}"
            )
        groups: dict = {}
        for local, color in enumerate(colors):
            if color < 0:
                continue
            groups.setdefault(color, []).append(self._world_ranks[local])
        return [
            Communicator(ranks, name=f"{self.name}.split({color})")
            for color, ranks in sorted(groups.items())
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator({self.name!r}, size={self.size})"
