"""The fluid-rate discrete-event MPI runtime.

Each rank program advances through *work* (instructions) at a rate set by
the SMT throughput model for the current machine state — co-runner loads
and hardware priorities per core. Between state changes rates are
constant, so the next interesting instant is computed exactly:

* the earliest compute completion ``now + remaining/rate``, or
* the earliest scheduled event (message transfer completion, collective
  release, kernel interrupt/noise, noise end).

At each instant the runtime fires due events, advances the affected rank
generators (which may post new operations, change priorities, block or
finish), re-derives per-context rates from the chip state, and repeats.
Everything is deterministic: ties are broken by sequence numbers, and all
stochastic inputs (noise arrival times) come from named RNG streams.

Waiting semantics (``RuntimeConfig.wait_mode``):

``"spin"`` (default, MPI-CH behaviour)
    A blocked rank runs the spin-loop profile on its hardware context at
    its current priority — it *keeps consuming decode slots and shared
    resources*, slowing its core sibling. This is the effect the paper's
    balancing exploits.
``"block"``
    A blocked rank vacates its context (load ``None``), as a
    sleep-waiting MPI would. Provided for the ablation benchmark.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import (
    ConfigurationError,
    DeadlockError,
    MappingError,
    SimulationError,
)
from repro.kernel.hmt import HmtController
from repro.kernel.interrupts import KernelEvent
from repro.kernel.kernel import KernelModel
from repro.mpi.collectives import CollectiveManager
from repro.mpi.communicator import Communicator
from repro.mpi.p2p import CommCosts, MessageEngine
from repro.mpi.process import (
    AllgatherOp,
    AllreduceOp,
    AlltoallOp,
    BarrierOp,
    BcastOp,
    ComputeOp,
    GatherOp,
    IrecvOp,
    IsendOp,
    Op,
    RankApi,
    RankProgram,
    RecvOp,
    ReduceOp,
    ScatterOp,
    SendOp,
    SendrecvOp,
    SetPriorityOp,
    WaitOp,
    WaitallOp,
)
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.smt.chip import Power5Chip
from repro.smt.instructions import BASE_PROFILES, LoadProfile
from repro.telemetry import default_registry as _telemetry_registry
from repro.telemetry import enabled as _telemetry_enabled
from repro.trace.events import RankState
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.trace import Trace
from repro.util.units import POWER5_FREQ_HZ
from repro.util.validation import check_positive

__all__ = ["RuntimeConfig", "RunResult", "MpiRuntime"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Behavioural knobs of the runtime."""

    wait_mode: str = "spin"
    spin_profile: str = "spin"
    #: Load profile contexts run while executing kernel handlers/daemons.
    noise_profile: str = "int"
    comm_costs: CommCosts = field(default_factory=CommCosts)
    #: Hard wall on simulated seconds, to catch runaway programs.
    time_limit: float = 1e5
    #: Hard wall on processed events.
    max_events: int = 2_000_000
    #: Temporal tolerance for simultaneity.
    epsilon: float = 1e-9
    #: Per-core-group dirty tracking: a state change on one chip only
    #: re-solves that chip's IPC. Disable to force a full re-solve on
    #: every state change (equivalence testing / ablation — results are
    #: identical either way).
    incremental_rates: bool = True
    #: Attach the oracle layer's :class:`~repro.oracle.checker.RuntimeChecker`
    #: to this run: every rate re-solve and time advance is checked live
    #: (finite non-negative rates, monotone time) and the finished result
    #: is swept against the decode/trace/run invariants. Off by default;
    #: when off the event loop pays a single ``is None`` test per
    #: iteration.
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.wait_mode not in ("spin", "block"):
            raise ConfigurationError(
                f"wait_mode must be 'spin' or 'block', got {self.wait_mode!r}"
            )
        check_positive("time_limit", self.time_limit)
        check_positive("max_events", self.max_events)
        check_positive("epsilon", self.epsilon)


@dataclass
class RunResult:
    """Everything an experiment needs from one simulated run."""

    label: str
    trace: Trace
    stats: TraceStats
    total_time: float
    events_processed: int
    priority_history_len: int
    final_priorities: Tuple[int, ...]

    @property
    def imbalance_percent(self) -> float:
        return self.stats.imbalance_percent


class _PState:
    READY = "ready"
    COMPUTING = "computing"
    BLOCKED = "blocked"
    NOISE = "noise"
    DONE = "done"


class _Proc:
    """Runtime-internal per-rank state."""

    __slots__ = (
        "rank",
        "cpu",
        "core_idx",
        "thread",
        "gen",
        "state",
        "remaining",
        "rate",
        "profile_name",
        "trace_state",
        "timeline",
        "compute_trace_state",
        "resume_value",
        "awaiting",
        "single_wait",
        "blocked_trace_state",
        "noise_resume",
        "released",
    )

    def __init__(self, rank: int, cpu: int, gen: Generator[Op, object, None]) -> None:
        self.rank = rank
        self.cpu = cpu
        self.core_idx = cpu // 2
        self.thread = cpu % 2
        self.gen = gen
        self.state = _PState.READY
        self.remaining = 0.0
        self.rate = 0.0  # instructions/second while computing
        self.profile_name: Optional[str] = None
        self.trace_state: Optional[RankState] = None
        self.timeline = None  # bound to the rank's RankTimeline by the runtime
        #: Which useful state (COMPUTE/INIT/FINAL) the current compute is.
        self.compute_trace_state: RankState = RankState.COMPUTE
        self.resume_value: object = None
        #: Requests this rank is blocked on (empty + blocked = collective).
        self.awaiting: Set[int] = set()
        #: The single request whose status becomes the resume value.
        self.single_wait: Optional[Request] = None
        self.blocked_trace_state: RankState = RankState.SYNC
        #: What to restore after a noise preemption ends.
        self.noise_resume: Optional[str] = None
        #: Unblock arrived while this rank was preempted by noise.
        self.released: bool = False


class MpiRuntime:
    """Coordinator of rank programs over the simulated machine.

    Parameters
    ----------
    chip, kernel, hmt:
        The machine (see :mod:`repro.machine.system` for convenient
        wiring).
    model:
        A throughput model with ``chip_ipc(core_states)`` —
        :class:`~repro.smt.analytic.AnalyticThroughputModel` or
        :class:`~repro.smt.throughput.ThroughputTable`.
    programs:
        One generator function per rank.
    mapping:
        rank -> logical CPU. Must be injective.
    profiles:
        Name -> :class:`LoadProfile` registry; defaults to
        ``BASE_PROFILES`` and is augmented, not replaced, by the caller's
        entries.
    kernel_events:
        Optional time-ordered iterator of :class:`KernelEvent` (merged
        interrupt + noise streams).
    """

    def __init__(
        self,
        chip: Power5Chip,
        kernel: KernelModel,
        hmt: HmtController,
        model,
        programs: Sequence[RankProgram],
        mapping: Mapping[int, int],
        profiles: Optional[Mapping[str, LoadProfile]] = None,
        config: Optional[RuntimeConfig] = None,
        kernel_events: Optional[Iterator[KernelEvent]] = None,
        label: str = "",
        on_start=None,
        controllers: Optional[Sequence] = None,
        pair_costs=None,
    ) -> None:
        self.chip = chip
        self.kernel = kernel
        self.hmt = hmt
        self.model = model
        self.config = config or RuntimeConfig()
        self.label = label
        self.n_ranks = len(programs)
        if self.n_ranks == 0:
            raise ConfigurationError("need at least one rank program")
        if sorted(mapping) != list(range(self.n_ranks)):
            raise MappingError(
                f"mapping must cover ranks 0..{self.n_ranks - 1}, got {sorted(mapping)}"
            )
        cpus = list(mapping.values())
        if len(set(cpus)) != len(cpus):
            raise MappingError(f"mapping reuses a cpu: {mapping}")
        for cpu in cpus:
            if not 0 <= cpu < chip.config.n_cpus:
                raise MappingError(f"cpu {cpu} out of range for this chip")
        self.mapping = dict(mapping)

        self.profiles: Dict[str, LoadProfile] = dict(BASE_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        for key in (self.config.spin_profile, self.config.noise_profile):
            if key not in self.profiles:
                raise ConfigurationError(f"unknown runtime profile {key!r}")

        self.world = Communicator.world(self.n_ranks)
        self.engine = MessageEngine(
            self.n_ranks, self.config.comm_costs, pair_costs=pair_costs
        )
        self.collectives = CollectiveManager(
            self.config.comm_costs, pair_costs=pair_costs
        )
        self.trace = Trace(self.n_ranks, label=label)

        self._procs: List[_Proc] = []
        for rank, prog in enumerate(programs):
            api = RankApi(rank, self.n_ranks)
            proc = _Proc(rank, self.mapping[rank], prog(api))
            proc.timeline = self.trace[rank]
            self._procs.append(proc)
        self._by_request: Dict[int, _Proc] = {}

        self.now = 0.0
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, str, object]] = []
        self._kernel_events = kernel_events
        self._next_kernel: Optional[KernelEvent] = None
        # Multi-chip machines group their cores per chip so the model's
        # shared-L2 coupling stays within a chip; a plain Power5Chip is a
        # single group. Rate recomputation is tracked per group: a
        # priority write or load change on one chip only re-solves that
        # chip's IPC.
        self._cores = list(chip.cores)
        groups = getattr(chip, "core_groups", None)
        if groups is None:
            groups = [list(range(len(self._cores)))]
        self._core_groups: List[List[int]] = [list(g) for g in groups]
        self._group_of_core: Dict[int, int] = {
            core: gi for gi, group in enumerate(self._core_groups) for core in group
        }
        self._dirty_groups: Set[int] = set(range(len(self._core_groups)))
        self._incremental = bool(self.config.incremental_rates)
        self._ipc_by_core: Dict[int, Tuple[float, float]] = {}
        #: Per-run memo of group state -> chip_ipc result.  The model's own
        #: chip cache persists across runs; this dict just skips the
        #: name-key construction inside ``chip_ipc`` for repeat states.
        self._group_ipc_memo: Dict[tuple, tuple] = {}
        #: How often each group's IPC was re-solved (observability: the
        #: multi-chip tests assert a chip-0 event leaves chip 1 alone).
        self.group_recompute_counts: List[int] = [0] * len(self._core_groups)
        self.events_processed = 0
        self._finished = 0
        #: Called once at t=0 after all processes are pinned and started —
        #: the hook through which static priority assignments are applied
        #: (they must come *after* launch, which resets priorities to
        #: MEDIUM, exactly like `echo N > /proc/<pid>/hmt_priority` after
        #: mpirun).
        self._on_start = on_start
        #: Periodic controllers (e.g. the dynamic balancer): objects with
        #: an ``interval`` in seconds and an ``on_tick(runtime, now)``
        #: method, invoked at each multiple of their interval.
        self._controllers = list(controllers or ())
        #: Live invariant oracle (None unless ``config.check_invariants``).
        #: Imported lazily: the oracle package imports this module.
        self._oracle = None
        if self.config.check_invariants:
            from repro.oracle.checker import RuntimeChecker

            self._oracle = RuntimeChecker(self)
        #: Coarse phase-timing instruments, or None. Checked once, at
        #: construction — the ``check_invariants`` discipline: when
        #: telemetry is off the run loop pays a single ``is None`` test
        #: per *run* (not per event), and all observations happen after
        #: the loop ends, so traces are byte-identical either way.
        self._telemetry = None
        if _telemetry_enabled():
            reg = _telemetry_registry()
            self._telemetry = {
                "launch": reg.histogram(
                    "repro_runtime_launch_seconds",
                    "Wall seconds spent launching ranks (pin + start + "
                    "first advance), per run.",
                ),
                "loop": reg.histogram(
                    "repro_runtime_loop_seconds",
                    "Wall seconds spent in the event loop, per run.",
                ),
                "runs": reg.counter(
                    "repro_runtime_runs_total", "Completed runtime runs."
                ),
                "events": reg.counter(
                    "repro_runtime_events_total",
                    "Discrete events processed across runs.",
                ),
                "recomputes": reg.counter(
                    "repro_runtime_rate_recomputes_total",
                    "Per-group IPC re-solves across runs.",
                ),
                "simulated": reg.counter(
                    "repro_runtime_simulated_seconds_total",
                    "Simulated seconds across runs.",
                ),
            }

    # -- helpers ---------------------------------------------------------------

    def _push(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    @property
    def _rates_dirty(self) -> bool:
        """Whether any group needs a rate re-solve (compat view of the
        dirty set; assigning True marks every group)."""
        return bool(self._dirty_groups)

    @_rates_dirty.setter
    def _rates_dirty(self, value: bool) -> None:
        if value:
            self._mark_all_dirty()
        else:
            self._dirty_groups.clear()

    def _mark_all_dirty(self) -> None:
        self._dirty_groups.update(range(len(self._core_groups)))

    def _mark_dirty_cpu(self, cpu: int) -> None:
        if self.config.incremental_rates:
            self._dirty_groups.add(self._group_of_core[cpu // 2])
        else:
            self._mark_all_dirty()

    def _set_context_load(self, proc: _Proc, name: Optional[str]) -> None:
        profile = self.profiles[name] if name is not None else None
        core = self._cores[proc.core_idx]
        # Hot path: ``proc.thread`` is 0/1 by construction and ``profile``
        # comes from the validated profile table, so skip SmtCore's
        # per-call checks and write the context slot directly.
        if core._loads[proc.thread] is profile:
            return  # no state change (e.g. re-installing the spin posture)
        core._loads[proc.thread] = profile
        if self._incremental:
            self._dirty_groups.add(self._group_of_core[proc.core_idx])
        else:
            self._mark_all_dirty()

    def _set_trace(self, proc: _Proc, state: Optional[RankState]) -> None:
        if proc.trace_state is not state:
            proc.timeline.transition(self.now, state)
            proc.trace_state = state

    def _recompute_rates(self) -> None:
        cores = self._cores
        ipc_by_core = self._ipc_by_core
        dirty = self._dirty_groups
        memo = self._group_ipc_memo
        for gi in sorted(dirty) if len(dirty) > 1 else tuple(dirty):
            group = self._core_groups[gi]
            # Profiles are interned in ``self.profiles`` for the runtime's
            # lifetime, so identity is a sound (and cheap) memo key; the
            # full state tuple is only materialised on a memo miss.
            key_parts = [gi]
            for i in group:
                core = cores[i]
                loads = core._loads
                prios = core._priorities
                key_parts.append((id(loads[0]), id(loads[1]), prios[0], prios[1]))
            key = tuple(key_parts)
            ipcs = memo.get(key)
            if ipcs is None:
                ipcs = self.model.chip_ipc(tuple(cores[i].state() for i in group))
                memo[key] = ipcs
            for i, pair in zip(group, ipcs):
                ipc_by_core[i] = pair
            self.group_recompute_counts[gi] += 1
        dirty.clear()
        freq = self.chip.config.freq_hz
        computing = _PState.COMPUTING
        for proc in self._procs:
            if proc.state is computing:
                proc.rate = ipc_by_core[proc.core_idx][proc.thread] * freq

    # -- generator advancement -----------------------------------------------------

    def _advance(self, proc: _Proc) -> None:
        """Drive ``proc``'s generator until it blocks, computes or ends."""
        while True:
            try:
                op = proc.gen.send(proc.resume_value)
            except StopIteration:
                self._on_done(proc)
                return
            proc.resume_value = None
            # Exact-type fast paths for the two ops that dominate HPC
            # phase structure; isinstance keeps subclasses working below.
            op_type = type(op)
            if op_type is ComputeOp:
                self._start_compute(proc, op)
                return
            if op_type is BarrierOp:
                self._start_collective(proc, op)
                return
            if isinstance(op, ComputeOp):
                self._start_compute(proc, op)
                return
            if isinstance(
                op,
                (
                    BarrierOp,
                    BcastOp,
                    ReduceOp,
                    AllreduceOp,
                    GatherOp,
                    ScatterOp,
                    AllgatherOp,
                    AlltoallOp,
                ),
            ):
                self._start_collective(proc, op)
                return
            if isinstance(op, IsendOp):
                req, completions = self.engine.post_send(
                    proc.rank, op.dest, op.tag, op.nbytes, self.now
                )
                self._register(proc, req, completions)
                proc.resume_value = req
                continue
            if isinstance(op, IrecvOp):
                req, completions = self.engine.post_recv(
                    proc.rank, op.source, op.tag, self.now
                )
                self._register(proc, req, completions)
                proc.resume_value = req
                continue
            if isinstance(op, SendOp):
                req, completions = self.engine.post_send(
                    proc.rank, op.dest, op.tag, op.nbytes, self.now
                )
                self._register(proc, req, completions)
                if req.done:
                    proc.resume_value = None
                    continue
                self._block_on(proc, [req], single=None, state=RankState.COMM)
                return
            if isinstance(op, RecvOp):
                req, completions = self.engine.post_recv(
                    proc.rank, op.source, op.tag, self.now
                )
                self._register(proc, req, completions)
                if req.done:
                    proc.resume_value = req.status
                    continue
                self._block_on(proc, [req], single=req, state=RankState.COMM)
                return
            if isinstance(op, SendrecvOp):
                sreq, s_completions = self.engine.post_send(
                    proc.rank, op.dest, op.send_tag, op.nbytes, self.now
                )
                self._register(proc, sreq, s_completions)
                rreq, r_completions = self.engine.post_recv(
                    proc.rank, op.source, op.recv_tag, self.now
                )
                self._register(proc, rreq, r_completions)
                pending = [r for r in (sreq, rreq) if not r.done]
                if not pending:
                    proc.resume_value = rreq.status
                    continue
                self._block_on(proc, pending, single=rreq, state=RankState.COMM)
                return
            if isinstance(op, WaitOp):
                op.request.check_waitable()
                if op.request.done:
                    proc.resume_value = op.request.status
                    continue
                self._block_on(proc, [op.request], single=op.request, state=RankState.SYNC)
                return
            if isinstance(op, WaitallOp):
                for r in op.requests:
                    r.check_waitable()
                pending = [r for r in op.requests if not r.done]
                if not pending:
                    proc.resume_value = None
                    continue
                self._block_on(proc, pending, single=None, state=RankState.SYNC)
                return
            if isinstance(op, SetPriorityOp):
                self._apply_priority(proc, op)
                continue
            raise SimulationError(f"rank {proc.rank} yielded unknown op {op!r}")

    def _start_compute(self, proc: _Proc, op: ComputeOp) -> None:
        if op.profile not in self.profiles:
            raise ConfigurationError(
                f"rank {proc.rank}: unknown load profile {op.profile!r}"
            )
        if op.instructions <= 0:
            # Zero work: complete immediately without a state excursion.
            proc.state = _PState.READY
            self._advance(proc)
            return
        proc.state = _PState.COMPUTING
        proc.remaining = float(op.instructions)
        proc.profile_name = op.profile
        proc.compute_trace_state = op.state
        self._set_context_load(proc, op.profile)
        self._set_trace(proc, op.state)

    _COLLECTIVE_KINDS = {
        BcastOp: "bcast",
        ReduceOp: "reduce",
        AllreduceOp: "allreduce",
        GatherOp: "gather",
        ScatterOp: "scatter",
        AllgatherOp: "allgather",
        AlltoallOp: "alltoall",
    }

    def _start_collective(self, proc: _Proc, op) -> None:
        comm = op.comm or self.world
        if isinstance(op, BarrierOp):
            kind, nbytes = "barrier", 0
        else:
            kind, nbytes = self._COLLECTIVE_KINDS[type(op)], op.nbytes
        outcome = self.collectives.arrive(comm, proc.rank, kind, nbytes, self.now)
        proc.state = _PState.BLOCKED
        proc.awaiting = set()
        proc.single_wait = None
        proc.released = False
        proc.blocked_trace_state = RankState.SYNC
        self._wait_posture(proc, RankState.SYNC)
        if outcome is not None:
            release_time, ranks = outcome
            self._push(release_time, "coll", tuple(ranks))

    def _register(
        self,
        proc: _Proc,
        req: Request,
        completions: List[Tuple[float, Request, Optional[Status]]],
    ) -> None:
        self._by_request[req.id] = proc
        for time, r, status in completions:
            self._push(max(time, self.now), "req", (r, status))

    def _block_on(
        self,
        proc: _Proc,
        requests: Sequence[Request],
        single: Optional[Request],
        state: RankState,
    ) -> None:
        proc.state = _PState.BLOCKED
        proc.awaiting = {r.id for r in requests}
        proc.single_wait = single
        proc.released = False
        proc.blocked_trace_state = state
        for r in requests:
            self._by_request[r.id] = proc
        self._wait_posture(proc, state)

    def _wait_posture(self, proc: _Proc, state: RankState) -> None:
        """Install the waiting behaviour on the hardware context."""
        if self.config.wait_mode == "spin":
            self._set_context_load(proc, self.config.spin_profile)
        else:
            self._set_context_load(proc, None)
        self._set_trace(proc, state)

    def _apply_priority(self, proc: _Proc, op: SetPriorityOp) -> None:
        if op.via == "or-nop":
            # User-privilege nop: silently ignored outside 2..4.
            self.hmt.or_nop_priority(proc.cpu, op.priority, self.now)
        else:
            self.kernel.procfs.set_priority_of_pid(proc.rank, op.priority, self.now)
        self._mark_dirty_cpu(proc.cpu)

    def _on_done(self, proc: _Proc) -> None:
        proc.state = _PState.DONE
        self._finished += 1
        self._set_context_load(proc, None)
        self._set_trace(proc, RankState.IDLE)
        self.kernel.on_cpu_idle(proc.cpu, self.now)
        self._mark_dirty_cpu(proc.cpu)

    # -- event handling ---------------------------------------------------------

    def _handle_request(self, req: Request, status: Optional[Status]) -> None:
        if not req.done:
            req.complete(status)
        proc = self._by_request.get(req.id)
        if proc is None:
            return
        if req.id in proc.awaiting:
            proc.awaiting.discard(req.id)
            if not proc.awaiting:
                self._unblock_proc(proc)
        # Nonblocking requests not currently awaited just become done.

    def _unblock_proc(self, proc: _Proc) -> None:
        if proc.state == _PState.NOISE:
            proc.released = True
            return
        if proc.state != _PState.BLOCKED:
            raise SimulationError(
                f"rank {proc.rank} unblocked while {proc.state}"
            )
        self._resume_from_block(proc)

    def _resume_from_block(self, proc: _Proc) -> None:
        """Transition a blocked rank back to running its generator."""
        if proc.single_wait is not None:
            proc.resume_value = proc.single_wait.status
            proc.single_wait = None
        proc.state = _PState.READY
        proc.released = False
        self._advance(proc)

    def _handle_collective_release(self, ranks: Tuple[int, ...]) -> None:
        for rank in ranks:
            proc = self._procs[rank]
            if proc.state == _PState.NOISE:
                proc.released = True
            elif proc.state == _PState.BLOCKED and not proc.awaiting:
                proc.state = _PState.READY
                self._advance(proc)
            else:
                raise SimulationError(
                    f"collective released rank {rank} in state {proc.state}"
                )

    def _handle_kernel_event(self, event: KernelEvent) -> None:
        self.kernel.on_interrupt_entry(event.cpu, self.now)
        self._mark_dirty_cpu(event.cpu)
        if event.duration <= 0:
            return
        # Preempt whatever runs on that cpu.
        victim: Optional[_Proc] = None
        for proc in self._procs:
            if proc.cpu == event.cpu and proc.state in (
                _PState.COMPUTING,
                _PState.BLOCKED,
            ):
                victim = proc
                break
        if victim is None:
            return
        victim.noise_resume = victim.state
        victim.state = _PState.NOISE
        self._set_context_load(victim, self.config.noise_profile)
        self._set_trace(victim, RankState.NOISE)
        self._push(self.now + event.duration, "noise_end", victim.rank)

    def _handle_noise_end(self, rank: int) -> None:
        proc = self._procs[rank]
        if proc.state != _PState.NOISE:
            raise SimulationError(f"noise_end for rank {rank} in state {proc.state}")
        resume = proc.noise_resume
        proc.noise_resume = None
        if resume == _PState.COMPUTING:
            proc.state = _PState.COMPUTING
            self._set_context_load(proc, proc.profile_name)
            # Recover the trace state of the interrupted compute segment.
            self._set_trace(proc, proc.compute_trace_state)
        else:
            proc.state = _PState.BLOCKED
            if proc.released and not proc.awaiting:
                self._resume_from_block(proc)
                return
            self._wait_posture(proc, proc.blocked_trace_state)
        self._mark_dirty_cpu(proc.cpu)

    # -- kernel event feed ---------------------------------------------------------

    def _peek_kernel(self) -> Optional[KernelEvent]:
        if self._next_kernel is None and self._kernel_events is not None:
            self._next_kernel = next(self._kernel_events, None)
            if self._next_kernel is None:
                self._kernel_events = None
        return self._next_kernel

    # -- the main loop ----------------------------------------------------------------

    def run(self) -> RunResult:
        """Run all rank programs to completion and return the result."""
        cfg = self.config
        telemetry = self._telemetry
        t_run0 = _time.perf_counter() if telemetry is not None else 0.0
        # Process launch: pin + default priorities.
        for proc in self._procs:
            self.kernel.scheduler.pin(proc.rank, proc.cpu)
            self.kernel.on_process_start(proc.rank, proc.cpu, 0.0)
        if self._on_start is not None:
            self._on_start(self)
        for i, ctrl in enumerate(self._controllers):
            interval = float(getattr(ctrl, "interval"))
            check_positive("controller.interval", interval)
            self._push(interval, "ctrl", i)
        for proc in self._procs:
            self._advance(proc)
        t_launched = _time.perf_counter() if telemetry is not None else 0.0

        eps = cfg.epsilon
        max_events = cfg.max_events
        time_limit = cfg.time_limit
        procs = self._procs
        heap = self._heap
        computing_state = _PState.COMPUTING
        oracle = self._oracle
        while self._finished < self.n_ranks:
            if self.events_processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            if self._dirty_groups:
                self._recompute_rates()
                if oracle is not None:
                    oracle.on_rates()

            t_next = math.inf
            if heap:
                t_next = heap[0][0]
            if self._next_kernel is not None or self._kernel_events is not None:
                kernel_ev = self._peek_kernel()
                if kernel_ev is not None:
                    t_next = min(t_next, kernel_ev.time)
            computing = [p for p in procs if p.state is computing_state]
            for proc in computing:
                rate = proc.rate
                if rate > 0.0:
                    t_next = min(t_next, self.now + proc.remaining / rate)
            if math.isinf(t_next):
                raise DeadlockError(
                    f"t={self.now:.6f}s: no runnable rank and no pending event. "
                    f"p2p: {self.engine.pending_summary()}; "
                    f"collectives: {self.collectives.pending_summary()}"
                )
            t_next = max(t_next, self.now)
            if t_next > time_limit:
                raise SimulationError(
                    f"exceeded time_limit={time_limit}s "
                    f"(next event at t={t_next:.3f}s)"
                )

            # Advance fluid work.
            dt = t_next - self.now
            if dt > 0:
                for proc in computing:
                    remaining = proc.remaining - proc.rate * dt
                    proc.remaining = remaining if remaining > 0.0 else 0.0
            self.now = t_next
            if oracle is not None:
                oracle.on_advance()

            # Fire due heap events.
            while heap and heap[0][0] <= self.now + eps:
                _, _, kind, payload = heapq.heappop(heap)
                self.events_processed += 1
                if kind == "req":
                    req, status = payload  # type: ignore[misc]
                    self._handle_request(req, status)
                elif kind == "coll":
                    self._handle_collective_release(payload)  # type: ignore[arg-type]
                elif kind == "noise_end":
                    self._handle_noise_end(payload)  # type: ignore[arg-type]
                elif kind == "ctrl":
                    idx = payload  # type: ignore[assignment]
                    ctrl = self._controllers[idx]
                    ctrl.on_tick(self, self.now)
                    # Controllers may touch any CPU's priority/load.
                    self._mark_all_dirty()
                    if self._finished < self.n_ranks:
                        self._push(self.now + float(ctrl.interval), "ctrl", idx)
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind!r}")

            # Fire due kernel events.
            while self._next_kernel is not None or self._kernel_events is not None:
                kernel_ev = self._peek_kernel()
                if kernel_ev is None or kernel_ev.time > self.now + eps:
                    break
                self._next_kernel = None
                self.events_processed += 1
                self._handle_kernel_event(kernel_ev)

            # Complete computes that drained.
            for proc in procs:
                if proc.state is computing_state:
                    rate = proc.rate
                    if proc.remaining <= 0.0 or (
                        rate > 0.0 and proc.remaining / rate <= eps
                    ):
                        proc.remaining = 0.0
                        proc.state = _PState.READY
                        self.events_processed += 1
                        self._advance(proc)

        self.trace.finish_all(self.now)
        stats = compute_stats(self.trace)
        result = RunResult(
            label=self.label,
            trace=self.trace,
            stats=stats,
            total_time=self.now,
            events_processed=self.events_processed,
            priority_history_len=len(self.hmt.history),
            final_priorities=tuple(int(p) for p in self.hmt.priorities()),
        )
        if oracle is not None:
            oracle.on_finish(result)
        if telemetry is not None:
            t_end = _time.perf_counter()
            telemetry["launch"].observe(t_launched - t_run0)
            telemetry["loop"].observe(t_end - t_launched)
            telemetry["runs"].inc()
            telemetry["events"].inc(self.events_processed)
            telemetry["recomputes"].inc(sum(self.group_recompute_counts))
            telemetry["simulated"].inc(self.now)
        return result
