"""Nonblocking-operation requests (``MPI_Request`` equivalents)."""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.errors import RequestError
from repro.mpi.status import Status

__all__ = ["RequestKind", "Request"]

_request_ids = itertools.count(1)


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


class Request:
    """Handle for an in-flight nonblocking operation.

    Created by the runtime when a rank posts ``isend``/``irecv``;
    completed by the message engine when the (matched) transfer finishes.
    Rank programs hold these and pass them to ``wait``/``waitall``.
    """

    def __init__(self, kind: RequestKind, owner_rank: int) -> None:
        self.id: int = next(_request_ids)
        self.kind = kind
        self.owner_rank = owner_rank
        self._done = False
        self._status: Optional[Status] = None
        self._freed = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def status(self) -> Optional[Status]:
        """The receive status (None for sends or while pending)."""
        return self._status

    def complete(self, status: Optional[Status] = None) -> None:
        """Mark complete (runtime-internal)."""
        if self._freed:
            raise RequestError(f"request {self.id} completed after free")
        if self._done:
            raise RequestError(f"request {self.id} completed twice")
        self._done = True
        self._status = status

    def free(self) -> None:
        """Release the handle; waiting on it afterwards is an error."""
        self._freed = True

    def check_waitable(self) -> None:
        """Raise if this request may not be waited on."""
        if self._freed:
            raise RequestError(f"cannot wait on freed request {self.id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"Request(id={self.id}, {self.kind.value}, rank={self.owner_rank}, {state})"
