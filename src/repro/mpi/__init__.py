"""A deterministic simulated MPI runtime.

Rank programs are Python generators that ``yield`` operation descriptors
(compute, barrier, isend/irecv, waitall, ...) built through the
:class:`~repro.mpi.process.RankApi` handed to them — mirroring how an
MPI-CH rank alternates computation with MPI calls. The
:class:`~repro.mpi.runtime.MpiRuntime` advances all ranks through a
fluid-rate discrete-event simulation whose compute speeds come from the
SMT throughput models, so hardware-priority changes immediately reshape
rank progress — the paper's mechanism, end to end.

Key fidelity choice: blocked ranks *busy-wait* by default, exactly like
MPI-CH 1.0.4 — the spinning rank keeps consuming decode slots and shared
resources on its core. ``wait_mode="block"`` switches to an idle wait for
the ablation benchmark.
"""

from repro.mpi.datatypes import Datatype, ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status
from repro.mpi.request import Request, RequestKind
from repro.mpi.p2p import MessageEngine, CommCosts
from repro.mpi.collectives import CollectiveManager
from repro.mpi.communicator import Communicator
from repro.mpi.process import (
    RankApi,
    RankProgram,
    ComputeOp,
    BarrierOp,
    SendOp,
    RecvOp,
    SendrecvOp,
    IsendOp,
    IrecvOp,
    WaitOp,
    WaitallOp,
    SetPriorityOp,
    AllreduceOp,
    BcastOp,
    ReduceOp,
    GatherOp,
    ScatterOp,
    AllgatherOp,
    AlltoallOp,
)
from repro.mpi.runtime import MpiRuntime, RuntimeConfig, RunResult

__all__ = [
    "Datatype",
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "Request",
    "RequestKind",
    "MessageEngine",
    "CommCosts",
    "CollectiveManager",
    "Communicator",
    "RankApi",
    "RankProgram",
    "ComputeOp",
    "BarrierOp",
    "SendOp",
    "RecvOp",
    "SendrecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "SetPriorityOp",
    "AllreduceOp",
    "BcastOp",
    "ReduceOp",
    "GatherOp",
    "ScatterOp",
    "AllgatherOp",
    "AlltoallOp",
    "MpiRuntime",
    "RuntimeConfig",
    "RunResult",
]
