"""Process placement: a pinning scheduler mapping PIDs to logical CPUs.

The paper runs exactly one MPI rank per logical CPU ("process Pi is
assigned to CPUi") — HPC practice on SMT machines. The scheduler is
therefore a bijective pin table plus idle bookkeeping; there is no
time-sharing to model. It still earns its keep: the procfs interface
resolves PIDs through it, experiments express the paper's *mapping*
variations (which rank shares a core with which) through it, and the
kernel model consults it to lower the priority of idle CPUs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MappingError

__all__ = ["PinnedScheduler"]


class PinnedScheduler:
    """Bijective PID -> logical-CPU pin table."""

    def __init__(self, n_cpus: int) -> None:
        if n_cpus <= 0:
            raise MappingError(f"n_cpus must be > 0, got {n_cpus}")
        self.n_cpus = n_cpus
        self._pid_to_cpu: Dict[int, int] = {}
        self._cpu_to_pid: Dict[int, int] = {}

    def pin(self, pid: int, cpu: int) -> None:
        """Pin ``pid`` to ``cpu``; both must be free."""
        if not 0 <= cpu < self.n_cpus:
            raise MappingError(f"cpu {cpu} out of range 0..{self.n_cpus - 1}")
        if pid in self._pid_to_cpu:
            raise MappingError(f"pid {pid} already pinned to cpu {self._pid_to_cpu[pid]}")
        if cpu in self._cpu_to_pid:
            raise MappingError(f"cpu {cpu} already runs pid {self._cpu_to_pid[cpu]}")
        self._pid_to_cpu[pid] = cpu
        self._cpu_to_pid[cpu] = pid

    def unpin(self, pid: int) -> None:
        """Remove ``pid``'s pin (process exit)."""
        cpu = self._pid_to_cpu.pop(pid, None)
        if cpu is None:
            raise MappingError(f"pid {pid} is not pinned")
        del self._cpu_to_pid[cpu]

    def cpu_of(self, pid: int) -> int:
        """The CPU ``pid`` is pinned to."""
        try:
            return self._pid_to_cpu[pid]
        except KeyError:
            raise MappingError(f"pid {pid} is not pinned") from None

    def pid_on(self, cpu: int) -> Optional[int]:
        """The PID pinned to ``cpu``, or None if the CPU is idle."""
        if not 0 <= cpu < self.n_cpus:
            raise MappingError(f"cpu {cpu} out of range 0..{self.n_cpus - 1}")
        return self._cpu_to_pid.get(cpu)

    @property
    def idle_cpus(self) -> List[int]:
        return [c for c in range(self.n_cpus) if c not in self._cpu_to_pid]

    @property
    def pids(self) -> List[int]:
        return sorted(self._pid_to_cpu)

    def __contains__(self, pid: int) -> bool:
        return pid in self._pid_to_cpu
