"""Standard vs. patched Linux kernel behaviour (paper section VI).

The stock 2.6.19.2 kernel uses hardware priorities defensively: it
*lowers* the priority of spinning/idle CPUs and *resets* it to MEDIUM on
every interrupt, exception or syscall entry ("the kernel simply resets
the priority to MEDIUM every time ... so that it can be sure that those
critical operations will be performed with enough resources"). That
reset silently destroys any priority a balancer installs.

The paper's patch (a) removes the reset and (b) adds the
``/proc/<PID>/hmt_priority`` file. :class:`StandardLinux` and
:class:`PatchedLinux` encode exactly this difference; the MPI runtime
calls the hooks at the corresponding simulated moments.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.kernel.hmt import Actor, HmtController
from repro.kernel.procfs import ProcFs
from repro.kernel.scheduler import PinnedScheduler
from repro.smt.priorities import DEFAULT_PRIORITY, HardwarePriority

__all__ = ["KernelModel", "StandardLinux", "PatchedLinux"]


class KernelModel:
    """Common state/hooks of the simulated kernels.

    Subclasses override the event hooks; all state manipulation goes
    through the privilege-checked :class:`HmtController`.
    """

    #: Priority the standard kernel gives an idle CPU (it lowers the idle
    #: thread and can eventually put the core in ST mode; LOW is the
    #: conservative model of the first step).
    IDLE_PRIORITY = HardwarePriority.LOW

    def __init__(self, hmt: HmtController, scheduler: PinnedScheduler) -> None:
        self.hmt = hmt
        self.scheduler = scheduler

    # -- identification ---------------------------------------------------

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def has_hmt_procfs(self) -> bool:
        """Does this kernel provide ``/proc/<PID>/hmt_priority``?"""
        return False

    @property
    def procfs(self) -> ProcFs:
        raise FileNotFoundError("/proc/<pid>/hmt_priority (kernel not patched)")

    # -- event hooks (called by the runtime) --------------------------------

    def on_interrupt_entry(self, cpu: int, time: float) -> None:
        """An interrupt/exception/syscall handler starts on ``cpu``."""

    def on_process_start(self, pid: int, cpu: int, time: float) -> None:
        """A process begins running on ``cpu``."""

    def on_cpu_idle(self, cpu: int, time: float) -> None:
        """``cpu`` enters the kernel idle loop (its process exited)."""
        # Both kernels lower the idle thread's priority so the sibling
        # context receives more resources (standard behaviour case 3).
        self.hmt.set_priority(cpu, int(self.IDLE_PRIORITY), Actor.OS, time, via="kernel")


class StandardLinux(KernelModel):
    """Stock kernel: resets priorities to MEDIUM at every handler entry."""

    @property
    def name(self) -> str:
        return "linux-2.6.19.2"

    def on_interrupt_entry(self, cpu: int, time: float) -> None:
        # The kernel does not track the previous priority, so it cannot
        # restore it: it unconditionally resets to MEDIUM (section VI-A).
        if self.hmt.read_tsr(cpu) != DEFAULT_PRIORITY:
            self.hmt.set_priority(
                cpu, int(DEFAULT_PRIORITY), Actor.OS, time, via="kernel"
            )

    def on_process_start(self, pid: int, cpu: int, time: float) -> None:
        # Processes start at the default MEDIUM priority.
        self.hmt.set_priority(cpu, int(DEFAULT_PRIORITY), Actor.OS, time, via="kernel")


class PatchedLinux(KernelModel):
    """The paper's kernel: priorities persist; procfs control available."""

    def __init__(self, hmt: HmtController, scheduler: PinnedScheduler) -> None:
        super().__init__(hmt, scheduler)
        self._procfs = ProcFs(hmt, scheduler)

    @property
    def name(self) -> str:
        return "linux-2.6.19.2-hmt-patch"

    @property
    def has_hmt_procfs(self) -> bool:
        return True

    @property
    def procfs(self) -> ProcFs:
        return self._procfs

    def on_interrupt_entry(self, cpu: int, time: float) -> None:
        # Patch point 1: the handler no longer touches the priority.
        pass

    def on_process_start(self, pid: int, cpu: int, time: float) -> None:
        self.hmt.set_priority(cpu, int(DEFAULT_PRIORITY), Actor.OS, time, via="kernel")


def make_kernel(
    kind: str, hmt: HmtController, scheduler: PinnedScheduler
) -> KernelModel:
    """Factory: ``"standard"`` or ``"patched"``."""
    if kind == "standard":
        return StandardLinux(hmt, scheduler)
    if kind == "patched":
        return PatchedLinux(hmt, scheduler)
    raise ConfigurationError(f"unknown kernel kind {kind!r}; use 'standard' or 'patched'")
