"""OS-noise sources: daemons and services stealing CPU time.

The paper lists OS noise and user daemons among the *extrinsic* causes of
imbalance (section II-B): a profile collector or kernel daemon waking up
on one CPU delays only the rank pinned there. We model each noise source
as renewal process: sleeps ``~Exp(1/period)``, then runs for a bounded
random burst on its CPU.

These feed the same :class:`~repro.kernel.interrupts.KernelEvent` channel
as interrupts; the MPI runtime turns each event into a span of stolen
time (state ``NOISE`` in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.kernel.interrupts import KernelEvent
from repro.util.rng import RngStreams
from repro.util.validation import check_non_negative, check_positive

__all__ = ["NoiseConfig", "NoiseSource", "make_noise_sources"]


@dataclass(frozen=True)
class NoiseConfig:
    """Description of one noise daemon."""

    name: str
    cpu: int
    #: Mean seconds between wakeups.
    mean_period: float
    #: Mean burst length per wakeup (exponential, truncated at 10x).
    mean_burst: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("noise source needs a name")
        if self.cpu < 0:
            raise ConfigurationError(f"cpu must be >= 0, got {self.cpu}")
        check_positive("mean_period", self.mean_period)
        check_positive("mean_burst", self.mean_burst)

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of the CPU this daemon consumes."""
        return self.mean_burst / (self.mean_period + self.mean_burst)


class NoiseSource:
    """Renewal-process noise generator for one daemon."""

    def __init__(self, config: NoiseConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def events(self, t_end: float, t_start: float = 0.0) -> Iterator[KernelEvent]:
        """Wakeup events in ``[t_start, t_end)``, time-ordered."""
        check_non_negative("t_start", t_start)
        cfg = self.config
        events: List[KernelEvent] = []
        t = t_start
        while True:
            t += float(self.rng.exponential(cfg.mean_period))
            if t >= t_end:
                break
            burst = min(
                float(self.rng.exponential(cfg.mean_burst)), 10.0 * cfg.mean_burst
            )
            events.append(KernelEvent(t, cfg.cpu, burst, f"noise:{cfg.name}"))
            t += burst
        return iter(events)


def make_noise_sources(
    configs: Sequence[NoiseConfig], streams: RngStreams
) -> List[NoiseSource]:
    """Build sources with independent named RNG streams per daemon."""
    return [
        NoiseSource(cfg, streams.get(f"noise.{cfg.name}.cpu{cfg.cpu}"))
        for cfg in configs
    ]
