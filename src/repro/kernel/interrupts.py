"""Interrupt event sources.

Interrupts matter to the paper for one specific reason: the *standard*
Linux kernel resets the hardware thread priority to MEDIUM on every
interrupt/exception/syscall entry (section VI-A), so any priority a
balancer sets survives only until the next timer tick — at HZ=250 that
is at most 4 ms. The patched kernel removes the reset. Both behaviours
live in :mod:`repro.kernel.kernel`; this module only generates the event
streams.

Two sources are provided: the periodic timer tick, and a Poisson stream
of external/device interrupts which (like the Intel "interrupt
annoyance problem" the paper cites) can be routed entirely to CPU0.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

__all__ = ["KernelEvent", "InterruptSource", "TimerTickSource", "merge_sources"]


@dataclass(frozen=True, order=True)
class KernelEvent:
    """One kernel-level event hitting a CPU.

    ``duration`` is the handler's execution time, during which the
    application process on that CPU makes no progress.
    """

    time: float
    cpu: int
    duration: float
    kind: str = "interrupt"

    def __post_init__(self) -> None:
        check_non_negative("event.time", self.time)
        check_non_negative("event.duration", self.duration)


class TimerTickSource:
    """The periodic scheduler tick on every CPU.

    Parameters
    ----------
    hz:
        Tick frequency (Linux 2.6.19 defaults to 250 on ppc64).
    handler_seconds:
        Cost of one tick handler (a few microseconds).
    cpus:
        CPUs receiving ticks.
    """

    def __init__(
        self,
        cpus: Sequence[int],
        hz: float = 250.0,
        handler_seconds: float = 3e-6,
        phase_stagger: bool = True,
    ) -> None:
        check_positive("hz", hz)
        check_non_negative("handler_seconds", handler_seconds)
        if not cpus:
            raise ConfigurationError("TimerTickSource needs at least one cpu")
        self.cpus = list(cpus)
        self.hz = float(hz)
        self.handler_seconds = float(handler_seconds)
        self.phase_stagger = phase_stagger

    def events(self, t_end: float, t_start: float = 0.0) -> Iterator[KernelEvent]:
        """Ticks in ``[t_start, t_end)``, time-ordered."""
        period = 1.0 / self.hz
        events: List[KernelEvent] = []
        for i, cpu in enumerate(self.cpus):
            offset = (i / len(self.cpus)) * period if self.phase_stagger else 0.0
            k = max(0, int(np.ceil((t_start - offset) / period)))
            t = offset + k * period
            while t < t_end:
                events.append(KernelEvent(t, cpu, self.handler_seconds, "tick"))
                t += period
        events.sort()
        return iter(events)


class InterruptSource:
    """Poisson device-interrupt stream, optionally routed to one CPU.

    Models the paper's "interrupt annoyance problem": external interrupts
    all routed to CPU0 make the OS noise on CPU0 higher than elsewhere.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate_hz: float,
        handler_seconds: float = 20e-6,
        cpu: int = 0,
    ) -> None:
        check_non_negative("rate_hz", rate_hz)
        check_non_negative("handler_seconds", handler_seconds)
        if cpu < 0:
            raise ConfigurationError(f"cpu must be >= 0, got {cpu}")
        self.rng = rng
        self.rate_hz = float(rate_hz)
        self.handler_seconds = float(handler_seconds)
        self.cpu = cpu

    def events(self, t_end: float, t_start: float = 0.0) -> Iterator[KernelEvent]:
        """Arrivals in ``[t_start, t_end)``, time-ordered."""
        if self.rate_hz == 0.0:
            return iter(())
        events: List[KernelEvent] = []
        t = t_start
        while True:
            t += float(self.rng.exponential(1.0 / self.rate_hz))
            if t >= t_end:
                break
            events.append(KernelEvent(t, self.cpu, self.handler_seconds, "irq"))
        return iter(events)


def merge_sources(
    sources: Sequence[object], t_end: float, t_start: float = 0.0
) -> Iterator[KernelEvent]:
    """Time-ordered merge of several sources' event streams."""
    iterators = [src.events(t_end, t_start) for src in sources]
    return iter(heapq.merge(*iterators))
