"""Hardware-thread-priority control with POWER5 privilege enforcement.

The chip itself (:class:`repro.smt.chip.Power5Chip`) will store any
priority 0-7; *who* may request which value is a software contract
(paper Table I): user code 2-4, the OS additionally 1, 5, 6, the
hypervisor 0 and 7. :class:`HmtController` is the single gate through
which every priority write in the simulation flows, so experiments can
also audit the history of writes.

Both hardware interfaces are modelled: the ``or Rx,Rx,Rx`` nop encoding
and the ``mtspr`` write to the Thread Status Register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PrivilegeError
from repro.smt.chip import Power5Chip
from repro.smt.priorities import (
    HardwarePriority,
    PrivilegeLevel,
    can_set_priority,
    priority_for_or_nop,
    validate_priority,
)

__all__ = ["Actor", "PriorityWrite", "HmtController"]


class Actor(enum.Enum):
    """Software actors, each with a fixed privilege level."""

    USER = "user"
    OS = "os"
    HYPERVISOR = "hypervisor"

    @property
    def privilege(self) -> PrivilegeLevel:
        return {
            Actor.USER: PrivilegeLevel.USER,
            Actor.OS: PrivilegeLevel.SUPERVISOR,
            Actor.HYPERVISOR: PrivilegeLevel.HYPERVISOR,
        }[self]


@dataclass(frozen=True)
class PriorityWrite:
    """Audit record of one successful priority write."""

    time: float
    cpu: int
    priority: int
    actor: Actor
    via: str  # "or-nop" | "mtspr" | "kernel"


class HmtController:
    """Privilege-checked access to the chip's hardware thread priorities."""

    def __init__(self, chip: Power5Chip) -> None:
        self.chip = chip
        self.history: List[PriorityWrite] = []

    def set_priority(
        self,
        cpu: int,
        priority: int,
        actor: Actor,
        time: float = 0.0,
        via: str = "mtspr",
    ) -> None:
        """Set the priority of logical CPU ``cpu``, enforcing privilege.

        Raises
        ------
        PrivilegeError
            If ``actor`` lacks the privilege for ``priority``; the write
            does not happen (the real hardware treats the or-nop as a
            plain nop in that case — callers who want silent-nop
            semantics use :meth:`try_set_priority`).
        """
        prio = validate_priority(priority)
        if not can_set_priority(actor.privilege, int(prio)):
            raise PrivilegeError(actor.value, int(prio), _allowed_str(actor))
        self.chip.set_priority(cpu, int(prio))
        self.history.append(PriorityWrite(time, cpu, int(prio), actor, via))

    def try_set_priority(
        self,
        cpu: int,
        priority: int,
        actor: Actor,
        time: float = 0.0,
        via: str = "or-nop",
    ) -> bool:
        """Like :meth:`set_priority` but a privilege violation is a no-op
        (the hardware behaviour of an unprivileged priority nop)."""
        try:
            self.set_priority(cpu, priority, actor, time, via)
            return True
        except PrivilegeError:
            return False

    def or_nop(self, cpu: int, register: int, actor: Actor, time: float = 0.0) -> bool:
        """Execute ``or register,register,register`` on ``cpu``.

        Returns True if the priority changed (False for an unprivileged
        attempt, which the hardware executes as a plain nop).
        """
        prio = priority_for_or_nop(register)
        return self.try_set_priority(cpu, int(prio), actor, time, via="or-nop")

    def or_nop_priority(self, cpu: int, priority: int, time: float = 0.0) -> bool:
        """Set ``priority`` from *user* code via its nop encoding.

        The convenience entry point for in-program priority changes: user
        privilege, silent no-op when the level is supervisor/hypervisor
        only — the hardware's behaviour for an unprivileged priority nop.
        """
        return self.try_set_priority(cpu, priority, Actor.USER, time, via="or-nop")

    def read_tsr(self, cpu: int) -> HardwarePriority:
        """Read the thread's current priority (the ``mfspr`` TSR path)."""
        return self.chip.priority(cpu)

    def priorities(self) -> Tuple[HardwarePriority, ...]:
        """All logical CPUs' current priorities, by cpu id."""
        return tuple(self.chip.priority(cpu) for cpu in self.chip.cpus)

    def last_write(self, cpu: Optional[int] = None) -> Optional[PriorityWrite]:
        """Most recent write (optionally restricted to one cpu)."""
        for w in reversed(self.history):
            if cpu is None or w.cpu == cpu:
                return w
        return None


def _allowed_str(actor: Actor) -> str:
    return {
        Actor.USER: "2-4",
        Actor.OS: "1-6",
        Actor.HYPERVISOR: "0-7",
    }[actor]
