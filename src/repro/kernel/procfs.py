"""The paper's ``/proc/<PID>/hmt_priority`` interface (section VI-B).

The kernel patch exposes one pseudo-file per process; writing ``N`` to it
sets the hardware priority of the CPU running that process, at *kernel*
privilege — this is exactly how userspace gains access to priorities
1, 5 and 6 that the hardware would refuse from user code:

    echo N > /proc/<PID>/hmt_priority

:class:`ProcFs` implements path parsing, value validation and the
delegation to :class:`~repro.kernel.hmt.HmtController` at OS privilege.
Only a *patched* kernel installs it; asking a standard kernel for the
file raises ``FileNotFoundError`` like the real ``open()`` would.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import InvalidPriorityError, PrivilegeError
from repro.kernel.hmt import Actor, HmtController
from repro.kernel.scheduler import PinnedScheduler

__all__ = ["ProcFs"]

_PATH_RE = re.compile(r"^/proc/(\d+)/hmt_priority$")


class ProcFs:
    """Minimal procfs: just the ``hmt_priority`` files the patch adds."""

    def __init__(self, hmt: HmtController, scheduler: PinnedScheduler) -> None:
        self._hmt = hmt
        self._scheduler = scheduler

    @staticmethod
    def path_for(pid: int) -> str:
        """The pseudo-file path for ``pid``."""
        return f"/proc/{pid}/hmt_priority"

    def _resolve(self, path: str) -> int:
        m = _PATH_RE.match(path)
        if m is None:
            raise FileNotFoundError(path)
        pid = int(m.group(1))
        if pid not in self._scheduler:
            raise FileNotFoundError(path)
        return pid

    def write(self, path: str, value: str, time: float = 0.0) -> None:
        """``echo value > path``.

        Raises
        ------
        FileNotFoundError
            Unknown path or PID.
        InvalidPriorityError
            Value that does not parse to an integer 0..7.
        PrivilegeError
            Priorities 0 and 7 — the patch runs at OS privilege, which
            cannot span the hypervisor-only levels.
        """
        try:
            prio = int(value.strip())
        except ValueError:
            raise InvalidPriorityError(value) from None
        pid = self._resolve(path)
        cpu = self._scheduler.cpu_of(pid)
        self._hmt.set_priority(cpu, prio, Actor.OS, time=time, via="procfs")

    def read(self, path: str) -> str:
        """``cat path`` — the current priority, newline-terminated."""
        pid = self._resolve(path)
        cpu = self._scheduler.cpu_of(pid)
        return f"{int(self._hmt.read_tsr(cpu))}\n"

    def set_priority_of_pid(self, pid: int, priority: int, time: float = 0.0) -> None:
        """Convenience wrapper used by balancers: write via the pseudo-file."""
        self.write(self.path_for(pid), str(priority), time=time)
