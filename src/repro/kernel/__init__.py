"""Simulated Linux kernel layer for the POWER5 priority mechanism.

The paper modifies Linux 2.6.19.2 in two ways (section VI):

1. interrupt/exception/syscall handlers no longer reset the hardware
   thread priority to MEDIUM, and
2. a ``/proc/<PID>/hmt_priority`` file lets userspace set any OS-level
   priority (1-6) for a process.

This subpackage models both the *standard* kernel (whose resets defeat
any static priority assignment) and the *patched* kernel, plus the
privilege rules of the hardware interface, interrupt and OS-noise event
sources, and the pinning scheduler that places MPI ranks on logical CPUs.
"""

from repro.kernel.hmt import HmtController, Actor
from repro.kernel.procfs import ProcFs
from repro.kernel.scheduler import PinnedScheduler
from repro.kernel.interrupts import InterruptSource, TimerTickSource, KernelEvent
from repro.kernel.noise import NoiseSource, NoiseConfig, make_noise_sources
from repro.kernel.kernel import KernelModel, StandardLinux, PatchedLinux

__all__ = [
    "HmtController",
    "Actor",
    "ProcFs",
    "PinnedScheduler",
    "InterruptSource",
    "TimerTickSource",
    "KernelEvent",
    "NoiseSource",
    "NoiseConfig",
    "make_noise_sources",
    "KernelModel",
    "StandardLinux",
    "PatchedLinux",
]
