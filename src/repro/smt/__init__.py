"""POWER5-like SMT processor substrate.

This subpackage simulates the hardware the paper ran on: a dual-core,
2-way SMT chip whose cores split decode cycles between their two hardware
contexts according to *hardware thread priorities* (paper Tables I-III).

Layers, from definition to measurement:

* :mod:`repro.smt.priorities` — the architectural priority levels,
  privilege rules and ``or-nop`` encodings (Table I).
* :mod:`repro.smt.decode` — the decode-slot arbitration law
  ``R = 2**(|X-Y|+1)`` and its special cases (Tables II and III).
* :mod:`repro.smt.instructions`, :mod:`repro.smt.functional_units`,
  :mod:`repro.smt.resources`, :mod:`repro.smt.cache` — the synthetic
  instruction streams and the shared back-end they contend for.
* :mod:`repro.smt.pipeline`, :mod:`repro.smt.core`,
  :mod:`repro.smt.chip` — the cycle-level core and chip models.
* :mod:`repro.smt.throughput`, :mod:`repro.smt.analytic` — per-thread
  throughput as a function of (load pair, priority pair): measured from
  the cycle simulator (memoised) or from a closed-form model.
"""

from repro.smt.priorities import (
    HardwarePriority,
    PrivilegeLevel,
    PRIORITY_TABLE,
    PriorityLevelInfo,
    or_nop_for_priority,
    priority_for_or_nop,
    required_privilege,
    can_set_priority,
)
from repro.smt.decode import (
    ArbitrationMode,
    DecodeAllocation,
    slice_length,
    decode_allocation,
    decode_share,
    decode_pattern,
)
from repro.smt.instructions import InstrClass, LoadProfile, InstructionStream
from repro.smt.functional_units import FunctionalUnitSpec, FunctionalUnitPool, POWER5_FU_SPECS
from repro.smt.resources import SharedResourcePool, ResourceSpec, POWER5_RESOURCES
from repro.smt.cache import CacheLevel, CacheHierarchy, MemorySpec, POWER5_CACHES
from repro.smt.pipeline import CorePipeline, PipelineConfig, ThreadPerfCounters
from repro.smt.core import SmtCore, CoreSnapshot
from repro.smt.chip import Power5Chip, ChipConfig, HardwareContextId
from repro.smt.throughput import ThroughputTable, ThroughputResult
from repro.smt.analytic import AnalyticThroughputModel

__all__ = [
    "HardwarePriority",
    "PrivilegeLevel",
    "PRIORITY_TABLE",
    "PriorityLevelInfo",
    "or_nop_for_priority",
    "priority_for_or_nop",
    "required_privilege",
    "can_set_priority",
    "ArbitrationMode",
    "DecodeAllocation",
    "slice_length",
    "decode_allocation",
    "decode_share",
    "decode_pattern",
    "InstrClass",
    "LoadProfile",
    "InstructionStream",
    "FunctionalUnitSpec",
    "FunctionalUnitPool",
    "POWER5_FU_SPECS",
    "SharedResourcePool",
    "ResourceSpec",
    "POWER5_RESOURCES",
    "CacheLevel",
    "CacheHierarchy",
    "MemorySpec",
    "POWER5_CACHES",
    "CorePipeline",
    "PipelineConfig",
    "ThreadPerfCounters",
    "SmtCore",
    "CoreSnapshot",
    "Power5Chip",
    "ChipConfig",
    "HardwareContextId",
    "ThroughputTable",
    "ThroughputResult",
    "AnalyticThroughputModel",
]
