"""Machine presets: the paper's POWER5 plus related MT processors.

The paper notes the mechanism exists beyond the POWER5: *"multi-threaded
processors like the IBM POWER5 and POWER6 or the Cell processor provide
such a capability with their thread priority mechanisms"*. These presets
capture the coarse differences that matter at this model's abstraction
level; the priority/decode law (Tables I-III) is shared.

* **POWER5** — the paper's machine: 1.65 GHz, out-of-order, 5-wide.
* **POWER6** — ~4.7 GHz, *in-order* (lower exploitable ILP per thread,
  modelled as a lower effective decode width and harsher L1 sharing),
  7-wide dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smt.analytic import AnalyticModelConfig
from repro.smt.chip import ChipConfig

__all__ = ["MachineVariant", "POWER5", "POWER6", "VARIANTS"]


@dataclass(frozen=True)
class MachineVariant:
    """A named (chip config, analytic model config) preset."""

    name: str
    chip: ChipConfig
    analytic: AnalyticModelConfig
    description: str = ""


POWER5 = MachineVariant(
    name="POWER5",
    chip=ChipConfig(n_cores=2, freq_hz=1.65e9),
    analytic=AnalyticModelConfig(),
    description="IBM OpenPower 710 (the paper's machine): dual-core, "
    "2-way SMT, out-of-order, 1.65 GHz",
)

POWER6 = MachineVariant(
    name="POWER6",
    chip=ChipConfig(n_cores=2, freq_hz=4.7e9),
    # In-order core: dispatch is wider (7) but dependent chains stall the
    # whole pipe, so the per-thread exploitable width is lower and the
    # shared L1 is felt harder; the same decode-share law applies.
    analytic=AnalyticModelConfig(decode_width=4, l1_sharing_tax=0.7),
    description="POWER6-like: dual-core, 2-way SMT, in-order, 4.7 GHz; "
    "same priority mechanism, different sensitivity",
)

VARIANTS = {v.name: v for v in (POWER5, POWER6)}
