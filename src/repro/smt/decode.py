"""Decode-slot arbitration between the two SMT contexts (Tables II & III).

The POWER5 implements thread priorities in the decode stage: decode time
is divided into slices of ``R`` cycles where

.. math:: R = 2^{|X - Y| + 1}

for thread priorities ``X`` and ``Y``. The lower-priority thread receives
1 of those ``R`` cycles and the higher-priority thread the other ``R-1``
(paper Table II). When either priority is 0 or 1 the behaviour changes
qualitatively (paper Table III):

====== ====== =======================================================
 A      B      Action
====== ====== =======================================================
 >1     >1     normal slicing per priorities (Table II)
 1      >1     B gets all decode cycles; A only takes leftovers
 1      1      power-save: each thread gets 1 of 64 decode cycles
 0      >1     ST mode: B receives all resources
 0      1      B receives 1 of 32 cycles
 0      0      the core is stopped
====== ====== =======================================================

This module is pure arbitration law — it maps a priority pair to a
:class:`DecodeAllocation` (mode + per-thread decode-cycle shares) and to a
concrete cyclic decode *pattern* used by the cycle-level pipeline model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.smt.priorities import validate_priority

__all__ = [
    "ArbitrationMode",
    "DecodeAllocation",
    "slice_length",
    "decode_allocation",
    "decode_share",
    "decode_pattern",
    "enumerate_allocations",
    "POWER_SAVE_SLICE",
    "OFF_VERY_LOW_SLICE",
    "OS_PRIORITY_RANGE",
]

#: In power-save mode (both priorities 1) each thread decodes 1 of 64 cycles.
POWER_SAVE_SLICE: int = 64
#: With one thread off and the other at VERY LOW, the live thread decodes
#: 1 of 32 cycles.
OFF_VERY_LOW_SLICE: int = 32

#: Priorities an OS-level balancer may set (paper Table I: 0 and 7 are
#: hypervisor-only), the range the oracle's exhaustive sweeps cover.
OS_PRIORITY_RANGE: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)


class ArbitrationMode(enum.Enum):
    """Qualitative decode-arbitration regimes of paper Table III."""

    #: Both priorities > 1: Table II slicing applies.
    NORMAL = "normal"
    #: One thread at priority 1: the other gets every decode cycle, the
    #: VERY LOW thread only decodes on cycles its sibling cannot use.
    LEFTOVER = "leftover"
    #: Both threads at priority 1: 1-of-64 decode cycles each.
    POWER_SAVE = "power_save"
    #: One thread off: the core runs in single-thread mode.
    SINGLE_THREAD = "single_thread"
    #: One thread off, the other at priority 1: 1-of-32 decode cycles.
    SINGLE_THREAD_SLOW = "single_thread_slow"
    #: Both threads off: the core is stopped.
    STOPPED = "stopped"


@dataclass(frozen=True)
class DecodeAllocation:
    """Resolved arbitration for a priority pair ``(prio_a, prio_b)``.

    Attributes
    ----------
    mode:
        The qualitative regime (see :class:`ArbitrationMode`).
    slice_cycles:
        Length of the repeating decode slice in cycles (0 when stopped;
        1 in single-thread mode).
    cycles_a, cycles_b:
        Decode cycles granted to each thread within one slice. In
        :attr:`ArbitrationMode.LEFTOVER` the VERY LOW thread's grant is 0
        here — it may still *opportunistically* decode on cycles the
        favoured thread cannot use, which only the pipeline model can
        decide; :func:`decode_share` exposes a configurable estimate.
    """

    mode: ArbitrationMode
    slice_cycles: int
    cycles_a: int
    cycles_b: int

    @property
    def share_a(self) -> float:
        """Guaranteed fraction of decode cycles for thread A."""
        return self.cycles_a / self.slice_cycles if self.slice_cycles else 0.0

    @property
    def share_b(self) -> float:
        """Guaranteed fraction of decode cycles for thread B."""
        return self.cycles_b / self.slice_cycles if self.slice_cycles else 0.0


def slice_length(prio_a: int, prio_b: int) -> int:
    """Table II slice length ``R = 2**(|X-Y|+1)`` for two normal priorities.

    Only meaningful when both priorities are > 1; raises ``ValueError``
    otherwise (those pairs are governed by Table III, not Table II).
    """
    a = validate_priority(prio_a)
    b = validate_priority(prio_b)
    if a <= 1 or b <= 1:
        raise ValueError(
            f"slice_length is defined for priorities > 1 (Table II); got ({a}, {b})"
        )
    return 2 ** (abs(int(a) - int(b)) + 1)


def decode_allocation(prio_a: int, prio_b: int) -> DecodeAllocation:
    """Resolve the full Table II + Table III arbitration for a priority pair."""
    a = int(validate_priority(prio_a))
    b = int(validate_priority(prio_b))

    if a == 0 and b == 0:
        return DecodeAllocation(ArbitrationMode.STOPPED, 0, 0, 0)
    if a == 0 or b == 0:
        live = b if a == 0 else a
        if live == 1:
            # One thread off, survivor at VERY LOW: 1 of 32 cycles.
            ca, cb = (0, 1) if a == 0 else (1, 0)
            return DecodeAllocation(
                ArbitrationMode.SINGLE_THREAD_SLOW, OFF_VERY_LOW_SLICE, ca, cb
            )
        ca, cb = (0, 1) if a == 0 else (1, 0)
        return DecodeAllocation(ArbitrationMode.SINGLE_THREAD, 1, ca, cb)
    if a == 1 and b == 1:
        return DecodeAllocation(ArbitrationMode.POWER_SAVE, POWER_SAVE_SLICE, 1, 1)
    if a == 1 or b == 1:
        # Favoured thread receives every decode cycle; the VERY LOW thread
        # has no guaranteed cycles (leftover-only).
        ca, cb = (0, 1) if a == 1 else (1, 0)
        return DecodeAllocation(ArbitrationMode.LEFTOVER, 1, ca, cb)

    r = slice_length(a, b)
    if a == b:
        # R == 2: perfectly alternating, one cycle each.
        return DecodeAllocation(ArbitrationMode.NORMAL, r, 1, 1)
    if a > b:
        return DecodeAllocation(ArbitrationMode.NORMAL, r, r - 1, 1)
    return DecodeAllocation(ArbitrationMode.NORMAL, r, 1, r - 1)


def decode_share(
    prio_a: int, prio_b: int, leftover_fraction: float = 1.0 / 32.0
) -> Tuple[float, float]:
    """Fraction of decode cycles each thread receives, as a pair.

    For :attr:`ArbitrationMode.LEFTOVER` pairs, the VERY LOW thread's
    share depends on how often the favoured thread stalls; callers that
    have no pipeline model can pass ``leftover_fraction`` (default 1/32,
    consistent with the priority-0/1 floor of Table III) as an estimate.
    Shares do not necessarily sum to 1 (power-save mode idles the core
    62 of 64 cycles).
    """
    alloc = decode_allocation(prio_a, prio_b)
    if alloc.mode is ArbitrationMode.LEFTOVER:
        if alloc.cycles_a == 0:
            return (leftover_fraction, 1.0 - leftover_fraction)
        return (1.0 - leftover_fraction, leftover_fraction)
    return (alloc.share_a, alloc.share_b)


def enumerate_allocations(
    priorities: Optional[Tuple[int, ...]] = None,
) -> List[Tuple[Tuple[int, int], DecodeAllocation]]:
    """Every priority pair's resolved arbitration, for exhaustive sweeps.

    ``priorities`` defaults to the full architectural range 0..7; the
    oracle's Table II/III invariants pass :data:`OS_PRIORITY_RANGE` to
    restrict to OS-settable levels.
    """
    levels = tuple(priorities) if priorities is not None else tuple(range(8))
    return [
        ((a, b), decode_allocation(a, b)) for a in levels for b in levels
    ]


def decode_pattern(prio_a: int, prio_b: int) -> List[Optional[int]]:
    """The repeating per-cycle decode schedule for a priority pair.

    Returns one slice as a list whose entries are ``0`` (thread A decodes),
    ``1`` (thread B decodes) or ``None`` (no thread may decode this cycle,
    as in power-save mode). The favoured thread's burst comes first, which
    matches the "R-1 then 1" description. For ``LEFTOVER`` mode the
    pattern is all-favoured; the pipeline model grants the VERY LOW thread
    a cycle only when the favoured thread cannot decode. For ``STOPPED``
    the pattern is empty.
    """
    alloc = decode_allocation(prio_a, prio_b)
    pattern: List[Optional[int]] = []
    if alloc.mode is ArbitrationMode.STOPPED:
        return pattern
    if alloc.mode is ArbitrationMode.POWER_SAVE:
        pattern = [None] * POWER_SAVE_SLICE
        pattern[0] = 0
        pattern[POWER_SAVE_SLICE // 2] = 1
        return pattern
    if alloc.mode is ArbitrationMode.SINGLE_THREAD_SLOW:
        live = 1 if alloc.cycles_b else 0
        pattern = [None] * OFF_VERY_LOW_SLICE
        pattern[0] = live
        return pattern
    if alloc.mode is ArbitrationMode.SINGLE_THREAD:
        return [1 if alloc.cycles_b else 0]
    if alloc.mode is ArbitrationMode.LEFTOVER:
        return [1 if alloc.cycles_b else 0]
    # NORMAL: favoured thread first for R-1 cycles, then the other for 1.
    if alloc.cycles_a >= alloc.cycles_b:
        return [0] * alloc.cycles_a + [1] * alloc.cycles_b
    return [1] * alloc.cycles_b + [0] * alloc.cycles_a
