"""Functional units of a POWER5 core and their occupancy accounting.

Each core has two fixed-point units (FXU), two floating-point units
(FPU), two load/store units (LSU) and a branch unit (BXU), shared by both
SMT contexts. Latencies are representative POWER5 figures; they only need
to be *relatively* right for the reproduction (an FPU op costs several
cycles, an L1-hitting load two, an integer op one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.errors import ConfigurationError
from repro.smt.instructions import InstrClass
from repro.util.validation import check_positive

__all__ = ["FunctionalUnitSpec", "FunctionalUnitPool", "POWER5_FU_SPECS"]


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """Static description of one FU class: how many units, pipe latency."""

    name: str
    count: int
    latency: int
    #: Issue interval: cycles before the same unit accepts another op
    #: (1 = fully pipelined).
    initiation_interval: int = 1

    def __post_init__(self) -> None:
        check_positive(f"{self.name}.count", self.count)
        check_positive(f"{self.name}.latency", self.latency)
        check_positive(f"{self.name}.initiation_interval", self.initiation_interval)


#: Per-instruction-class FU specs for a POWER5 core.
POWER5_FU_SPECS: Mapping[InstrClass, FunctionalUnitSpec] = {
    InstrClass.FXU: FunctionalUnitSpec("FXU", count=2, latency=1),
    InstrClass.FPU: FunctionalUnitSpec("FPU", count=2, latency=6),
    InstrClass.LOAD: FunctionalUnitSpec("LSU", count=2, latency=2),
    InstrClass.STORE: FunctionalUnitSpec("LSU_ST", count=2, latency=1),
    InstrClass.BRANCH: FunctionalUnitSpec("BXU", count=1, latency=1),
}


class FunctionalUnitPool:
    """Occupancy tracker for the FUs of one core.

    The pipeline model asks, for an instruction of class ``c`` at cycle
    ``t``: *when is the earliest a unit of that class can start it?* The
    pool keeps a next-free-time per unit instance and assigns greedily —
    an adequate stand-in for issue-queue scheduling at this abstraction
    level.
    """

    def __init__(self, specs: Mapping[InstrClass, FunctionalUnitSpec] = POWER5_FU_SPECS) -> None:
        if not specs:
            raise ConfigurationError("FunctionalUnitPool needs at least one FU spec")
        self._specs = dict(specs)
        self._next_free: Dict[InstrClass, List[int]] = {
            cls: [0] * spec.count for cls, spec in self._specs.items()
        }
        self.issued: Dict[InstrClass, int] = {cls: 0 for cls in self._specs}

    @property
    def specs(self) -> Mapping[InstrClass, FunctionalUnitSpec]:
        return self._specs

    def latency(self, cls: InstrClass) -> int:
        """Base execute latency for an instruction class."""
        return self._specs[cls].latency

    def issue(self, cls: InstrClass, cycle: int) -> int:
        """Issue one op of class ``cls`` not earlier than ``cycle``.

        Returns the cycle at which execution *starts* (>= ``cycle``); the
        result completes at ``start + latency``. Occupies the least-loaded
        unit instance for the spec's initiation interval.
        """
        spec = self._specs[cls]
        frees = self._next_free[cls]
        best = min(range(len(frees)), key=frees.__getitem__)
        start = max(cycle, frees[best])
        frees[best] = start + spec.initiation_interval
        self.issued[cls] += 1
        return start

    def earliest_start(self, cls: InstrClass, cycle: int) -> int:
        """When could an op of ``cls`` start, without actually issuing it?"""
        frees = self._next_free[cls]
        return max(cycle, min(frees))

    def reset(self) -> None:
        """Clear all occupancy (between measurement windows)."""
        for cls, spec in self._specs.items():
            self._next_free[cls] = [0] * spec.count
            self.issued[cls] = 0
