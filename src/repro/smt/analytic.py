"""Closed-form throughput model for a priority pair of co-running loads.

The fluid-rate MPI runtime needs, many times per simulated second, the
answer to: *given loads A and B on the two contexts of a core at
priorities X and Y, how many instructions per cycle does each thread
complete?* Running the cycle simulator for every query is possible (see
:mod:`repro.smt.throughput`) but slow; this module provides the fast
closed-form alternative, built from the same ingredients:

1. **Decode supply** — ``share_i * decode_width`` from the Table II/III
   arbitration (:func:`repro.smt.decode.decode_share`). This is the lever
   the paper pulls: supply falls off exponentially with the priority
   difference.
2. **Solo demand** — a dependence-chain model:
   ``demand = ilp / (1 + (E[lat]-1)/ilp)`` with ``E[lat]`` the mix-weighted
   instruction latency including the expected memory-access latency and
   the branch-misprediction penalty.
3. **Shared back-end contention** — joint functional-unit capacity
   (FXU/FPU/LSU/BXU per class), memory-bandwidth (MSHR) limits, an
   L1-sharing tax when both contexts are active, and a congestion term in
   memory latency proportional to combined off-L1 traffic.

Throughputs are solved by a short damped fixed-point iteration; the model
is validated against the cycle simulator in
``tests/smt/test_model_agreement.py``.

Performance: the solver precomputes per-profile constants (latency terms
in mix order, functional-unit coefficients, miss rates) so the fixed
point runs on local floats — the arithmetic is kept term-for-term
identical to the definitional formulas, so results are bit-identical to
an unoptimised evaluation. Solves are memoised at two levels with
bounded LRU caches: per core state (``core_ipc``) and per whole
chip-group state (``chip_ipc``), the latter shared with the MPI
runtime's rate recomputation.

The memo keys are exact: the core-level key carries the external
traffic as the full float, so the model is a *pure function* of its
query — cached and uncached answers are byte-identical, and results
never depend on which queries happened to arrive first. (Earlier
revisions rounded the traffic component to 1e-4, which made converged
values sensitive to cache history; the batch execution path and the
cached-vs-uncached equivalence tests both rely on the exact keys.)

Batched evaluation: :meth:`AnalyticThroughputModel.chip_ipc_stack`
solves many chip states at once by stacking all their core queries into
the numpy solver in :mod:`repro.smt.vectorized` — bit-identical to
looping :meth:`chip_ipc` because both paths evaluate the same pure
solve and share the same memo caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.smt.cache import CacheHierarchy
from repro.smt.decode import decode_share
from repro.smt.functional_units import POWER5_FU_SPECS, FunctionalUnitSpec
from repro.smt.instructions import InstrClass, LoadProfile
from repro.util.memo import CacheStats, LruCache
from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["AnalyticModelConfig", "AnalyticThroughputModel"]


@dataclass(frozen=True)
class AnalyticModelConfig:
    """Tunables of the closed-form model."""

    decode_width: int = 5
    #: Decode share granted to a VERY-LOW (priority 1) thread, which only
    #: receives cycles its sibling cannot use (Table III "leftover").
    leftover_fraction: float = 1.0 / 32.0
    #: Branch redirect penalty in cycles (matches PipelineConfig).
    branch_flush_penalty: int = 7
    #: Relative L1 miss-rate inflation when the sibling context is active
    #: (the two contexts share the L1), scaled by the sibling's actual
    #: throughput. Loads with a real L1 footprint (cfd/dft) feel this
    #: strongly; L1-resident kernels (hpc/int) barely notice it.
    l1_sharing_tax: float = 0.5
    #: Extra memory-latency cycles per unit of combined off-L1 accesses
    #: per cycle (queueing at the shared L2/L3/memory). Calibrated so a
    #: pair of memory-bound (dft) threads mutually slow ~25 % while
    #: L1-resident pairs are barely coupled through this term.
    congestion_cycles: float = 150.0
    #: Cross-core coupling strength: fraction of the other core's off-L1
    #: traffic that contributes to this core's congestion.
    cross_core_factor: float = 0.5
    #: Fixed-point iterations (converges in ~4 for all tested pairs).
    iterations: int = 8
    #: Damping of the fixed-point update in (0, 1].
    damping: float = 0.7

    def __post_init__(self) -> None:
        check_positive("decode_width", self.decode_width)
        check_in_range("leftover_fraction", self.leftover_fraction, 0.0, 0.5)
        check_non_negative("branch_flush_penalty", self.branch_flush_penalty)
        check_non_negative("l1_sharing_tax", self.l1_sharing_tax)
        check_non_negative("congestion_cycles", self.congestion_cycles)
        check_in_range("cross_core_factor", self.cross_core_factor, 0.0, 1.0)
        check_positive("iterations", self.iterations)
        check_in_range("damping", self.damping, 0.05, 1.0)


class _ProfileConsts:
    """Precomputed per-profile solver inputs (mix order preserved)."""

    __slots__ = (
        "ilp",
        "l1_miss",
        "l2_miss",
        "l3_miss",
        "mem_frac",
        "lat_terms",
        "fu_terms",
        "solo_plain",
    )

    def __init__(self, ilp, l1_miss, l2_miss, l3_miss, mem_frac, lat_terms, fu_terms):
        self.ilp = ilp
        self.l1_miss = l1_miss
        self.l2_miss = l2_miss
        self.l3_miss = l3_miss
        self.mem_frac = mem_frac
        #: (is_memory_op, mix_fraction, fixed_latency) in mix order.
        self.lat_terms = lat_terms
        #: (fu_group, mix_fraction) in mix order, zero fractions dropped.
        self.fu_terms = fu_terms
        self.solo_plain = 0.0  # filled by the model (needs cache latencies)


class AnalyticThroughputModel:
    """Closed-form per-thread IPC for co-running loads at given priorities.

    The model instance is stateless apart from its memoisation caches; it
    is safe to share one instance across an experiment, and it can be
    pickled across a process-pool boundary (parallel search).

    Parameters
    ----------
    core_cache_size, chip_cache_size:
        Bounds of the LRU memo caches for :meth:`core_ipc` and
        :meth:`chip_ipc`; 0 disables the respective cache (used by the
        cached-vs-uncached equivalence tests).
    """

    def __init__(
        self,
        config: Optional[AnalyticModelConfig] = None,
        caches: Optional[CacheHierarchy] = None,
        fu_specs: Mapping[InstrClass, FunctionalUnitSpec] = POWER5_FU_SPECS,
        core_cache_size: int = 65536,
        chip_cache_size: int = 16384,
    ) -> None:
        self.config = config or AnalyticModelConfig()
        self.caches = caches or CacheHierarchy()
        self.fu_specs = dict(fu_specs)
        self._cache: LruCache[Tuple[float, float]] = LruCache(core_cache_size)
        self._chip_cache: LruCache[Tuple[Tuple[float, float], ...]] = LruCache(
            chip_cache_size
        )
        self._share_cache: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._consts: Dict[str, _ProfileConsts] = {}
        self._fu_caps = self._fu_capacity()
        # Cache-level latencies, hoisted for the inlined expected-latency.
        self._lat_l1 = self.caches.levels["l1"].latency
        self._lat_l2 = self.caches.levels["l2"].latency
        self._lat_l3 = self.caches.levels["l3"].latency
        self._lat_mem = self.caches.memory.latency

    # -- building blocks -------------------------------------------------------

    def _profile_consts(self, profile: LoadProfile) -> _ProfileConsts:
        consts = self._consts.get(profile.name)
        if consts is not None:
            return consts
        cfg = self.config
        lat_terms = []
        fu_terms = []
        for cls, frac in profile.mix.items():
            spec = self.fu_specs[cls]
            if cls in (InstrClass.LOAD, InstrClass.STORE):
                lat_terms.append((True, frac, float(spec.latency)))
                group = "LSU"
            else:
                if cls is InstrClass.BRANCH:
                    fixed = float(spec.latency) + (
                        profile.branch_mispredict_rate * cfg.branch_flush_penalty
                    )
                else:
                    fixed = float(spec.latency)
                lat_terms.append((False, frac, fixed))
                group = spec.name
            if frac != 0.0:
                fu_terms.append((group, frac))
        consts = _ProfileConsts(
            ilp=profile.ilp,
            l1_miss=profile.l1_miss_rate,
            l2_miss=profile.l2_miss_rate,
            l3_miss=profile.l3_miss_rate,
            mem_frac=profile.memory_fraction,
            lat_terms=tuple(lat_terms),
            fu_terms=tuple(fu_terms),
        )
        consts.solo_plain = self._demand(consts, 0.0, 0.0)
        self._consts[profile.name] = consts
        return consts

    def _expected_latency(
        self, l1_miss: float, l2_miss: float, l3_miss: float, congestion: float
    ) -> float:
        """`CacheHierarchy.expected_latency`, term-for-term, on hoisted
        latencies (the hierarchy's validation is redundant here: profile
        miss rates are validated at construction)."""
        hit1 = 1.0 - l1_miss
        hit2 = l1_miss * (1.0 - l2_miss)
        hit3 = l1_miss * l2_miss * (1.0 - l3_miss)
        miss = l1_miss * l2_miss * l3_miss
        return (
            hit1 * self._lat_l1
            + hit2 * (self._lat_l2 + congestion)
            + hit3 * (self._lat_l3 + 2 * congestion)
            + miss * (self._lat_mem + 3 * congestion)
        )

    def _demand(self, c: _ProfileConsts, congestion: float, l1_tax: float) -> float:
        """Back-end-unconstrained IPC from precomputed constants."""
        l1_miss = min(1.0, c.l1_miss * (1.0 + l1_tax))
        mem_lat = self._expected_latency(l1_miss, c.l2_miss, c.l3_miss, congestion)
        total = 0.0
        for is_mem, frac, fixed in c.lat_terms:
            if frac == 0.0:
                continue
            lat = max(fixed, mem_lat) if is_mem else fixed
            total += frac * lat
        return c.ilp / (1.0 + (total - 1.0) / c.ilp)

    def mean_instruction_latency(
        self, profile: LoadProfile, congestion: float = 0.0, l1_tax: float = 0.0
    ) -> float:
        """Mix-weighted expected latency of one instruction, in cycles."""
        c = self._profile_consts(profile)
        l1_miss = min(1.0, c.l1_miss * (1.0 + l1_tax))
        mem_lat = self._expected_latency(l1_miss, c.l2_miss, c.l3_miss, congestion)
        total = 0.0
        for is_mem, frac, fixed in c.lat_terms:
            if frac == 0.0:
                continue
            lat = max(fixed, mem_lat) if is_mem else fixed
            total += frac * lat
        return total

    def solo_demand(
        self, profile: LoadProfile, congestion: float = 0.0, l1_tax: float = 0.0
    ) -> float:
        """Back-end-unconstrained IPC demand of a thread.

        Dependence-chain argument: the thread sustains ``ilp`` independent
        chains; a fraction ``1/ilp`` of instructions must wait for their
        producer, adding ``E[lat]-1`` cycles each, so the per-instruction
        cost is ``1/ilp * (1 + (E[lat]-1)/ilp)`` chain-cycles... folded:
        ``demand = ilp / (1 + (E[lat]-1)/ilp)``.
        """
        return self._demand(self._profile_consts(profile), congestion, l1_tax)

    def _fu_capacity(self) -> Dict[str, float]:
        """Ops/cycle capacity per physical unit group (LSU shared by LD/ST)."""
        caps: Dict[str, float] = {}
        for cls, spec in self.fu_specs.items():
            group = "LSU" if cls in (InstrClass.LOAD, InstrClass.STORE) else spec.name
            caps[group] = float(spec.count) / float(spec.initiation_interval)
        return caps

    def _fu_group(self, cls: InstrClass) -> str:
        if cls in (InstrClass.LOAD, InstrClass.STORE):
            return "LSU"
        return self.fu_specs[cls].name

    def _off_l1_rate(self, profile: LoadProfile, ipc: float) -> float:
        """Off-L1 accesses per cycle generated by a thread at ``ipc``."""
        return ipc * profile.memory_fraction * profile.l1_miss_rate

    def _decode_share(self, prio_a: int, prio_b: int) -> Tuple[float, float]:
        hit = self._share_cache.get((prio_a, prio_b))
        if hit is None:
            hit = decode_share(prio_a, prio_b, self.config.leftover_fraction)
            self._share_cache[(prio_a, prio_b)] = hit
        return hit

    # -- the solver -------------------------------------------------------------

    def core_ipc(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
        external_traffic: float = 0.0,
    ) -> Tuple[float, float]:
        """Per-thread IPC for the pair; ``None`` profile = idle context.

        ``external_traffic`` is off-L1 accesses/cycle arriving from the
        *other* core (cross-core L2/L3 contention); see :meth:`chip_ipc`.
        """
        key = (
            profile_a.name if profile_a else None,
            profile_b.name if profile_b else None,
            int(prio_a),
            int(prio_b),
            float(external_traffic),
        )
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = self._solve(profile_a, profile_b, int(prio_a), int(prio_b), external_traffic)
        self._cache.put(key, result)
        return result

    def _solve(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
        external_traffic: float,
    ) -> Tuple[float, float]:
        cfg = self.config
        share_a, share_b = self._decode_share(prio_a, prio_b)
        shares = (share_a, share_b)
        consts = tuple(
            self._profile_consts(p) if p is not None else None
            for p in (profile_a, profile_b)
        )
        active = [c is not None and s > 0.0 for c, s in zip(consts, shares)]
        both_active = all(active)
        caps = self._fu_caps

        supply = [
            (s * cfg.decode_width if act else 0.0) for s, act in zip(shares, active)
        ]
        solo = [c.solo_plain if act else 0.0 for c, act in zip(consts, active)]
        x = [
            min(sup, so) if act else 0.0
            for sup, so, act in zip(supply, solo, active)
        ]

        congestion_cycles = cfg.congestion_cycles
        l1_sharing_tax = cfg.l1_sharing_tax
        base_traffic = external_traffic * cfg.cross_core_factor
        damping = cfg.damping

        for _ in range(cfg.iterations):
            # Congestion from combined off-L1 traffic (plus cross-core).
            traffic = base_traffic
            for c, xi, act in zip(consts, x, active):
                if act:
                    traffic += xi * c.mem_frac * c.l1_miss
            congestion = congestion_cycles * traffic

            new_x = []
            for i, (c, act) in enumerate(zip(consts, active)):
                if not act:
                    new_x.append(0.0)
                    continue
                # L1 pressure from the sibling scales with how fast the
                # sibling actually runs: a decode-starved (or idle)
                # co-runner evicts less.
                j = 1 - i
                if both_active and solo[j] > 0:
                    l1_tax = l1_sharing_tax * min(1.0, x[j] / solo[j])
                else:
                    l1_tax = 0.0
                demand = self._demand(c, congestion, l1_tax)
                new_x.append(min(supply[i], demand))

            # Joint FU capacity: proportional scaling by the worst group.
            scale = 1.0
            for group, cap in caps.items():
                util = 0.0
                for c, xi, act in zip(consts, new_x, active):
                    if act:
                        for g, frac in c.fu_terms:
                            if g == group:
                                util += xi * frac
                if util > cap:
                    scale = min(scale, cap / util)
            if scale < 1.0:
                new_x = [xi * scale for xi in new_x]

            # Memory bandwidth: outstanding misses bounded by MSHRs.
            off_l1 = 0
            for c, xi, act in zip(consts, new_x, active):
                if act:
                    off_l1 += xi * c.mem_frac * c.l1_miss
            if off_l1 > 0:
                # Average service latency of an off-L1 access across threads.
                lat_num = 0.0
                for c, xi, act in zip(consts, new_x, active):
                    if not act or c.mem_frac == 0.0:
                        continue
                    lat = self._expected_latency(1.0, c.l2_miss, c.l3_miss, congestion)
                    lat_num += xi * c.mem_frac * c.l1_miss * lat
                mean_lat = lat_num / off_l1 if off_l1 else 0.0
                if mean_lat > 0:
                    mem_cap = self.caches.memory.mshrs_per_core / mean_lat
                    if off_l1 > mem_cap:
                        mem_scale = mem_cap / off_l1
                        new_x = [xi * mem_scale for xi in new_x]

            x = [
                xi + damping * (nxi - xi) for xi, nxi in zip(x, new_x)
            ]

        return (max(0.0, x[0]), max(0.0, x[1]))

    def chip_ipc(
        self,
        core_states: Tuple[
            Tuple[Optional[LoadProfile], Optional[LoadProfile], int, int], ...
        ],
    ) -> Tuple[Tuple[float, float], ...]:
        """Coupled solve for all cores of a chip.

        ``core_states`` holds ``(profile_a, profile_b, prio_a, prio_b)``
        per core. Cores are coupled through shared-L2/L3 congestion: each
        core is solved with the other cores' off-L1 traffic as external.
        Two coupling sweeps suffice — traffic changes slowly in IPC.

        Whole-group results are memoised (bounded LRU) on the tuple of
        per-core ``(load_a, load_b, prio_a, prio_b)`` states: MPI phase
        structure revisits the same machine states constantly, so the
        runtime's rate recomputation usually resolves to one lookup.
        """
        if not core_states:
            raise ConfigurationError("chip_ipc needs at least one core state")
        key = tuple(
            (
                pa.name if pa else None,
                pb.name if pb else None,
                int(xa),
                int(xb),
            )
            for (pa, pb, xa, xb) in core_states
        )
        hit = self._chip_cache.get(key)
        if hit is not None:
            return hit
        results = [self.core_ipc(pa, pb, xa, xb) for (pa, pb, xa, xb) in core_states]
        for _ in range(2):
            traffics = []
            for (pa, pb, _xa, _xb), (ia, ib) in zip(core_states, results):
                t = 0.0
                if pa is not None:
                    t += self._off_l1_rate(pa, ia)
                if pb is not None:
                    t += self._off_l1_rate(pb, ib)
                traffics.append(t)
            total = sum(traffics)
            results = [
                self.core_ipc(pa, pb, xa, xb, external_traffic=total - t)
                for (pa, pb, xa, xb), t in zip(core_states, traffics)
            ]
        out = tuple(results)
        self._chip_cache.put(key, out)
        return out

    # -- batched evaluation -----------------------------------------------------

    def _core_ipc_batch(self, queries):
        """Resolve many ``(load_a, load_b, prio_a, prio_b, ext)`` core
        queries at once: memo lookups first, then one stacked solve for
        the distinct misses.

        Bit-identical to looping :meth:`core_ipc` — same keys, same pure
        solve — the only difference is that misses are solved as one
        numpy stack (or a scalar loop when numpy is unavailable).
        """
        out: list = [None] * len(queries)
        misses: Dict[tuple, list] = {}
        for qi, (pa, pb, prio_a, prio_b, ext) in enumerate(queries):
            key = (
                pa.name if pa else None,
                pb.name if pb else None,
                int(prio_a),
                int(prio_b),
                float(ext),
            )
            hit = self._cache.get(key)
            if hit is not None:
                out[qi] = hit
            else:
                misses.setdefault(key, []).append(qi)
        if misses:
            pending = [queries[indices[0]] for indices in misses.values()]
            try:
                from repro.smt.vectorized import solve_stack
            except ImportError:  # pragma: no cover - numpy-less fallback
                solved = [
                    self._solve(pa, pb, int(xa), int(xb), float(ext))
                    for (pa, pb, xa, xb, ext) in pending
                ]
            else:
                solved = solve_stack(self, pending)
            for key, value in zip(misses, solved):
                self._cache.put(key, value)
                for qi in misses[key]:
                    out[qi] = value
        return out

    def chip_ipc_stack(self, chip_states):
        """Batched :meth:`chip_ipc`: solve many whole-chip states at once.

        ``chip_states`` is a sequence of ``core_states`` tuples (each as
        :meth:`chip_ipc` takes). Returns one per-chip result tuple per
        state, bit-identical to looping :meth:`chip_ipc` — the coupling
        sweep runs stage-parallel across the independent chip states,
        which is sound because the core solve is a pure function of its
        query (exact memo keys), so the per-state traffic sequence never
        depends on what else is in the stack. Results land in the same
        memo caches scalar queries use.
        """
        chip_states = list(chip_states)
        out: list = [None] * len(chip_states)
        pending: list = []  # (output index, core_states, chip key)
        for si, core_states in enumerate(chip_states):
            if not core_states:
                raise ConfigurationError(
                    "chip_ipc needs at least one core state"
                )
            key = tuple(
                (
                    pa.name if pa else None,
                    pb.name if pb else None,
                    int(xa),
                    int(xb),
                )
                for (pa, pb, xa, xb) in core_states
            )
            hit = self._chip_cache.get(key)
            if hit is not None:
                out[si] = hit
            else:
                pending.append((si, core_states, key))
        if not pending:
            return out

        queries = [
            (pa, pb, xa, xb, 0.0)
            for (_si, core_states, _key) in pending
            for (pa, pb, xa, xb) in core_states
        ]
        results = self._core_ipc_batch(queries)
        for _ in range(2):
            queries = []
            cursor = 0
            for _si, core_states, _key in pending:
                span = results[cursor:cursor + len(core_states)]
                cursor += len(core_states)
                traffics = []
                for (pa, pb, _xa, _xb), (ia, ib) in zip(core_states, span):
                    t = 0.0
                    if pa is not None:
                        t += self._off_l1_rate(pa, ia)
                    if pb is not None:
                        t += self._off_l1_rate(pb, ib)
                    traffics.append(t)
                total = sum(traffics)
                queries.extend(
                    (pa, pb, xa, xb, total - t)
                    for (pa, pb, xa, xb), t in zip(core_states, traffics)
                )
            results = self._core_ipc_batch(queries)

        cursor = 0
        for si, core_states, key in pending:
            span = tuple(results[cursor:cursor + len(core_states)])
            cursor += len(core_states)
            self._chip_cache.put(key, span)
            out[si] = span
        return out

    # -- cache accounting -------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Combined accounting of the core- and chip-level memo caches."""
        return self._cache.stats() + self._chip_cache.stats()

    def clear_cache(self) -> None:
        """Drop memoised results (after mutating config, for tests)."""
        self._cache.clear()
        self._chip_cache.clear()
        self._consts.clear()
        self._share_cache.clear()
