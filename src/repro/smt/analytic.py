"""Closed-form throughput model for a priority pair of co-running loads.

The fluid-rate MPI runtime needs, many times per simulated second, the
answer to: *given loads A and B on the two contexts of a core at
priorities X and Y, how many instructions per cycle does each thread
complete?* Running the cycle simulator for every query is possible (see
:mod:`repro.smt.throughput`) but slow; this module provides the fast
closed-form alternative, built from the same ingredients:

1. **Decode supply** — ``share_i * decode_width`` from the Table II/III
   arbitration (:func:`repro.smt.decode.decode_share`). This is the lever
   the paper pulls: supply falls off exponentially with the priority
   difference.
2. **Solo demand** — a dependence-chain model:
   ``demand = ilp / (1 + (E[lat]-1)/ilp)`` with ``E[lat]`` the mix-weighted
   instruction latency including the expected memory-access latency and
   the branch-misprediction penalty.
3. **Shared back-end contention** — joint functional-unit capacity
   (FXU/FPU/LSU/BXU per class), memory-bandwidth (MSHR) limits, an
   L1-sharing tax when both contexts are active, and a congestion term in
   memory latency proportional to combined off-L1 traffic.

Throughputs are solved by a short damped fixed-point iteration; the model
is validated against the cycle simulator in
``tests/smt/test_model_agreement.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.smt.cache import CacheHierarchy
from repro.smt.decode import decode_share
from repro.smt.functional_units import POWER5_FU_SPECS, FunctionalUnitSpec
from repro.smt.instructions import InstrClass, LoadProfile
from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["AnalyticModelConfig", "AnalyticThroughputModel"]


@dataclass(frozen=True)
class AnalyticModelConfig:
    """Tunables of the closed-form model."""

    decode_width: int = 5
    #: Decode share granted to a VERY-LOW (priority 1) thread, which only
    #: receives cycles its sibling cannot use (Table III "leftover").
    leftover_fraction: float = 1.0 / 32.0
    #: Branch redirect penalty in cycles (matches PipelineConfig).
    branch_flush_penalty: int = 7
    #: Relative L1 miss-rate inflation when the sibling context is active
    #: (the two contexts share the L1), scaled by the sibling's actual
    #: throughput. Loads with a real L1 footprint (cfd/dft) feel this
    #: strongly; L1-resident kernels (hpc/int) barely notice it.
    l1_sharing_tax: float = 0.5
    #: Extra memory-latency cycles per unit of combined off-L1 accesses
    #: per cycle (queueing at the shared L2/L3/memory). Calibrated so a
    #: pair of memory-bound (dft) threads mutually slow ~25 % while
    #: L1-resident pairs are barely coupled through this term.
    congestion_cycles: float = 150.0
    #: Cross-core coupling strength: fraction of the other core's off-L1
    #: traffic that contributes to this core's congestion.
    cross_core_factor: float = 0.5
    #: Fixed-point iterations (converges in ~4 for all tested pairs).
    iterations: int = 8
    #: Damping of the fixed-point update in (0, 1].
    damping: float = 0.7

    def __post_init__(self) -> None:
        check_positive("decode_width", self.decode_width)
        check_in_range("leftover_fraction", self.leftover_fraction, 0.0, 0.5)
        check_non_negative("branch_flush_penalty", self.branch_flush_penalty)
        check_non_negative("l1_sharing_tax", self.l1_sharing_tax)
        check_non_negative("congestion_cycles", self.congestion_cycles)
        check_in_range("cross_core_factor", self.cross_core_factor, 0.0, 1.0)
        check_positive("iterations", self.iterations)
        check_in_range("damping", self.damping, 0.05, 1.0)


class AnalyticThroughputModel:
    """Closed-form per-thread IPC for co-running loads at given priorities.

    The model instance is stateless apart from a memoisation cache; it is
    safe to share one instance across an experiment.
    """

    def __init__(
        self,
        config: Optional[AnalyticModelConfig] = None,
        caches: Optional[CacheHierarchy] = None,
        fu_specs: Mapping[InstrClass, FunctionalUnitSpec] = POWER5_FU_SPECS,
    ) -> None:
        self.config = config or AnalyticModelConfig()
        self.caches = caches or CacheHierarchy()
        self.fu_specs = dict(fu_specs)
        self._cache: Dict[tuple, Tuple[float, float]] = {}

    # -- building blocks -------------------------------------------------------

    def mean_instruction_latency(
        self, profile: LoadProfile, congestion: float = 0.0, l1_tax: float = 0.0
    ) -> float:
        """Mix-weighted expected latency of one instruction, in cycles."""
        l1_miss = min(1.0, profile.l1_miss_rate * (1.0 + l1_tax))
        mem_lat = self.caches.expected_latency(
            l1_miss, profile.l2_miss_rate, profile.l3_miss_rate, congestion
        )
        total = 0.0
        for cls, frac in profile.mix.items():
            if frac == 0.0:
                continue
            if cls in (InstrClass.LOAD, InstrClass.STORE):
                lat = max(float(self.fu_specs[cls].latency), mem_lat)
            elif cls is InstrClass.BRANCH:
                lat = float(self.fu_specs[cls].latency) + (
                    profile.branch_mispredict_rate * self.config.branch_flush_penalty
                )
            else:
                lat = float(self.fu_specs[cls].latency)
            total += frac * lat
        return total

    def solo_demand(
        self, profile: LoadProfile, congestion: float = 0.0, l1_tax: float = 0.0
    ) -> float:
        """Back-end-unconstrained IPC demand of a thread.

        Dependence-chain argument: the thread sustains ``ilp`` independent
        chains; a fraction ``1/ilp`` of instructions must wait for their
        producer, adding ``E[lat]-1`` cycles each, so the per-instruction
        cost is ``1/ilp * (1 + (E[lat]-1)/ilp)`` chain-cycles... folded:
        ``demand = ilp / (1 + (E[lat]-1)/ilp)``.
        """
        e_lat = self.mean_instruction_latency(profile, congestion, l1_tax)
        return profile.ilp / (1.0 + (e_lat - 1.0) / profile.ilp)

    def _fu_capacity(self) -> Dict[str, float]:
        """Ops/cycle capacity per physical unit group (LSU shared by LD/ST)."""
        caps: Dict[str, float] = {}
        for cls, spec in self.fu_specs.items():
            group = "LSU" if cls in (InstrClass.LOAD, InstrClass.STORE) else spec.name
            caps[group] = float(spec.count) / float(spec.initiation_interval)
        return caps

    def _fu_group(self, cls: InstrClass) -> str:
        if cls in (InstrClass.LOAD, InstrClass.STORE):
            return "LSU"
        return self.fu_specs[cls].name

    def _off_l1_rate(self, profile: LoadProfile, ipc: float) -> float:
        """Off-L1 accesses per cycle generated by a thread at ``ipc``."""
        return ipc * profile.memory_fraction * profile.l1_miss_rate

    # -- the solver -------------------------------------------------------------

    def core_ipc(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
        external_traffic: float = 0.0,
    ) -> Tuple[float, float]:
        """Per-thread IPC for the pair; ``None`` profile = idle context.

        ``external_traffic`` is off-L1 accesses/cycle arriving from the
        *other* core (cross-core L2/L3 contention); see :meth:`chip_ipc`.
        """
        key = (
            profile_a.name if profile_a else None,
            profile_b.name if profile_b else None,
            int(prio_a),
            int(prio_b),
            round(float(external_traffic), 4),
        )
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = self._solve(profile_a, profile_b, int(prio_a), int(prio_b), external_traffic)
        self._cache[key] = result
        return result

    def _solve(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
        external_traffic: float,
    ) -> Tuple[float, float]:
        cfg = self.config
        share_a, share_b = decode_share(prio_a, prio_b, cfg.leftover_fraction)
        profiles = (profile_a, profile_b)
        shares = (share_a, share_b)
        active = [p is not None and s > 0.0 for p, s in zip(profiles, shares)]
        both_active = all(active)
        caps = self._fu_capacity()

        supply = [
            (s * cfg.decode_width if act else 0.0) for s, act in zip(shares, active)
        ]
        x = [
            min(sup, self.solo_demand(p)) if act else 0.0
            for sup, p, act in zip(supply, profiles, active)
        ]

        solo = [self.solo_demand(p) if act else 0.0 for p, act in zip(profiles, active)]

        for _ in range(cfg.iterations):
            # Congestion from combined off-L1 traffic (plus cross-core).
            traffic = external_traffic * cfg.cross_core_factor
            for p, xi, act in zip(profiles, x, active):
                if act:
                    traffic += self._off_l1_rate(p, xi)
            congestion = cfg.congestion_cycles * traffic

            new_x = []
            for i, (p, act) in enumerate(zip(profiles, active)):
                if not act:
                    new_x.append(0.0)
                    continue
                # L1 pressure from the sibling scales with how fast the
                # sibling actually runs: a decode-starved (or idle)
                # co-runner evicts less.
                j = 1 - i
                if both_active and solo[j] > 0:
                    l1_tax = cfg.l1_sharing_tax * min(1.0, x[j] / solo[j])
                else:
                    l1_tax = 0.0
                demand = self.solo_demand(p, congestion, l1_tax)
                new_x.append(min(supply[i], demand))

            # Joint FU capacity: proportional scaling by the worst group.
            scale = 1.0
            for group, cap in caps.items():
                util = 0.0
                for p, xi, act in zip(profiles, new_x, active):
                    if act:
                        for cls, frac in p.mix.items():
                            if self._fu_group(cls) == group:
                                util += xi * frac
                if util > cap:
                    scale = min(scale, cap / util)
            if scale < 1.0:
                new_x = [xi * scale for xi in new_x]

            # Memory bandwidth: outstanding misses bounded by MSHRs.
            off_l1 = sum(
                self._off_l1_rate(p, xi)
                for p, xi, act in zip(profiles, new_x, active)
                if act
            )
            if off_l1 > 0:
                # Average service latency of an off-L1 access across threads.
                lat_num = 0.0
                for p, xi, act in zip(profiles, new_x, active):
                    if not act or p.memory_fraction == 0.0:
                        continue
                    lat = self.caches.expected_latency(
                        1.0, p.l2_miss_rate, p.l3_miss_rate, congestion
                    )
                    lat_num += self._off_l1_rate(p, xi) * lat
                mean_lat = lat_num / off_l1 if off_l1 else 0.0
                if mean_lat > 0:
                    mem_cap = self.caches.memory.mshrs_per_core / mean_lat
                    if off_l1 > mem_cap:
                        mem_scale = mem_cap / off_l1
                        new_x = [xi * mem_scale for xi in new_x]

            x = [
                xi + cfg.damping * (nxi - xi) for xi, nxi in zip(x, new_x)
            ]

        return (max(0.0, x[0]), max(0.0, x[1]))

    def chip_ipc(
        self,
        core_states: Tuple[
            Tuple[Optional[LoadProfile], Optional[LoadProfile], int, int], ...
        ],
    ) -> Tuple[Tuple[float, float], ...]:
        """Coupled solve for all cores of a chip.

        ``core_states`` holds ``(profile_a, profile_b, prio_a, prio_b)``
        per core. Cores are coupled through shared-L2/L3 congestion: each
        core is solved with the other cores' off-L1 traffic as external.
        Two coupling sweeps suffice — traffic changes slowly in IPC.
        """
        if not core_states:
            raise ConfigurationError("chip_ipc needs at least one core state")
        results = [self.core_ipc(pa, pb, xa, xb) for (pa, pb, xa, xb) in core_states]
        for _ in range(2):
            traffics = []
            for (pa, pb, _xa, _xb), (ia, ib) in zip(core_states, results):
                t = 0.0
                if pa is not None:
                    t += self._off_l1_rate(pa, ia)
                if pb is not None:
                    t += self._off_l1_rate(pb, ib)
                traffics.append(t)
            total = sum(traffics)
            results = [
                self.core_ipc(pa, pb, xa, xb, external_traffic=total - t)
                for (pa, pb, xa, xb), t in zip(core_states, traffics)
            ]
        return tuple(results)

    def clear_cache(self) -> None:
        """Drop memoised results (after mutating config, for tests)."""
        self._cache.clear()
