"""Synthetic instruction streams and workload *load profiles*.

The paper's MetBench loads each stress one processor resource (the FPU,
the L2 cache, the branch predictor, ...). We model a running thread as a
stationary synthetic instruction stream drawn from a :class:`LoadProfile`:
an instruction-class mix plus cache-miss and branch-misprediction rates
and an instruction-level-parallelism (ILP) factor. The cycle-level
pipeline consumes these streams; the analytic model consumes the profile
directly.

Profiles are deliberately coarse — the reproduction needs *relative*
behaviour (an FPU-bound thread vs. a memory-bound thread under different
decode shares), not per-instruction architectural fidelity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_in_range, check_positive, check_probability

__all__ = [
    "InstrClass",
    "LoadProfile",
    "InstructionStream",
    "SPIN_LOAD",
    "BASE_PROFILES",
]


class InstrClass(enum.IntEnum):
    """Coarse instruction classes mapped to POWER5 functional units."""

    FXU = 0  # fixed-point ALU op
    FPU = 1  # floating-point op
    LOAD = 2  # memory read
    STORE = 3  # memory write
    BRANCH = 4  # conditional branch


@dataclass(frozen=True)
class LoadProfile:
    """Stationary statistical description of one thread's dynamic code.

    Attributes
    ----------
    name:
        Identifier used in throughput memoisation keys — two profiles with
        equal names are assumed interchangeable.
    mix:
        Fraction of dynamic instructions per :class:`InstrClass`; must sum
        to 1 within tolerance.
    l1_miss_rate / l2_miss_rate / l3_miss_rate:
        Per-*memory-access* probability that the access misses L1, and the
        conditional probabilities that an L1 miss also misses L2 / an L2
        miss also misses L3.
    branch_mpki_rate:
        Probability that a branch instruction is mispredicted.
    ilp:
        Mean number of independent instructions available per cycle in the
        thread's window — throttles how much decode bandwidth the thread
        can convert into completions (a chain of dependent FPU ops cannot
        use a 5-wide decode).
    """

    name: str
    mix: Mapping[InstrClass, float]
    l1_miss_rate: float = 0.02
    l2_miss_rate: float = 0.10
    l3_miss_rate: float = 0.10
    branch_mispredict_rate: float = 0.02
    ilp: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("LoadProfile.name must be non-empty")
        total = float(sum(self.mix.values()))
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"LoadProfile {self.name!r}: instruction mix sums to {total}, expected 1.0"
            )
        for cls, frac in self.mix.items():
            if not isinstance(cls, InstrClass):
                raise ConfigurationError(f"mix key {cls!r} is not an InstrClass")
            check_probability(f"mix[{cls.name}]", frac)
        check_probability("l1_miss_rate", self.l1_miss_rate)
        check_probability("l2_miss_rate", self.l2_miss_rate)
        check_probability("l3_miss_rate", self.l3_miss_rate)
        check_probability("branch_mispredict_rate", self.branch_mispredict_rate)
        check_positive("ilp", self.ilp)
        check_in_range("ilp", self.ilp, 0.1, 8.0)

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory (loads + stores)."""
        return float(
            self.mix.get(InstrClass.LOAD, 0.0) + self.mix.get(InstrClass.STORE, 0.0)
        )

    @property
    def fpu_fraction(self) -> float:
        return float(self.mix.get(InstrClass.FPU, 0.0))

    @property
    def branch_fraction(self) -> float:
        return float(self.mix.get(InstrClass.BRANCH, 0.0))

    def with_name(self, name: str) -> "LoadProfile":
        """Copy of this profile under a different memoisation name."""
        return replace(self, name=name)

    def mix_vector(self) -> np.ndarray:
        """The mix as a dense vector indexed by :class:`InstrClass`."""
        v = np.zeros(len(InstrClass), dtype=float)
        for cls, frac in self.mix.items():
            v[int(cls)] = frac
        return v


def _mix(
    fxu: float = 0.0,
    fpu: float = 0.0,
    load: float = 0.0,
    store: float = 0.0,
    branch: float = 0.0,
) -> Dict[InstrClass, float]:
    return {
        InstrClass.FXU: fxu,
        InstrClass.FPU: fpu,
        InstrClass.LOAD: load,
        InstrClass.STORE: store,
        InstrClass.BRANCH: branch,
    }


#: The spin-wait loop an MPI-CH rank executes while blocked in
#: ``mpi_barrier``/``mpi_waitall``: a tight flag-polling loop (load the
#: flag, test, branch back) that hits L1 every time. It consumes decode
#: slots without making application progress — the root cause of the SMT
#: imbalance penalty.
SPIN_LOAD = LoadProfile(
    name="spin",
    mix=_mix(fxu=0.55, load=0.25, branch=0.20),
    l1_miss_rate=0.001,
    l2_miss_rate=0.01,
    l3_miss_rate=0.01,
    branch_mispredict_rate=0.001,
    ilp=2.5,
)

#: Ready-made profiles for the MetBench loads and common application mixes.
BASE_PROFILES: Dict[str, LoadProfile] = {
    # MetBench 'cpu_fpu': dense floating-point kernel, high ILP, tiny footprint.
    "fpu": LoadProfile(
        name="fpu",
        mix=_mix(fxu=0.15, fpu=0.55, load=0.20, store=0.05, branch=0.05),
        l1_miss_rate=0.005,
        l2_miss_rate=0.02,
        l3_miss_rate=0.02,
        branch_mispredict_rate=0.005,
        ilp=3.0,
    ),
    # MetBench 'l2': working set larger than L1, resident in L2.
    "l2": LoadProfile(
        name="l2",
        mix=_mix(fxu=0.25, fpu=0.10, load=0.45, store=0.15, branch=0.05),
        l1_miss_rate=0.30,
        l2_miss_rate=0.02,
        l3_miss_rate=0.05,
        branch_mispredict_rate=0.01,
        ilp=2.0,
    ),
    # MetBench 'mem': streaming footprint blowing through L2/L3.
    "mem": LoadProfile(
        name="mem",
        mix=_mix(fxu=0.20, fpu=0.10, load=0.50, store=0.15, branch=0.05),
        l1_miss_rate=0.35,
        l2_miss_rate=0.50,
        l3_miss_rate=0.60,
        branch_mispredict_rate=0.01,
        ilp=1.5,
    ),
    # MetBench 'branch': branch-predictor stress.
    "branch": LoadProfile(
        name="branch",
        mix=_mix(fxu=0.40, load=0.20, store=0.05, branch=0.35),
        l1_miss_rate=0.01,
        l2_miss_rate=0.05,
        l3_miss_rate=0.05,
        branch_mispredict_rate=0.15,
        ilp=1.8,
    ),
    # MetBench 'int': integer ALU kernel.
    "int": LoadProfile(
        name="int",
        mix=_mix(fxu=0.60, load=0.25, store=0.05, branch=0.10),
        l1_miss_rate=0.01,
        l2_miss_rate=0.05,
        l3_miss_rate=0.05,
        branch_mispredict_rate=0.02,
        ilp=2.5,
    ),
    # Balanced HPC kernel mix (MetBench/BT-MZ default): decode-hungry,
    # moderately FXU-bound, L1-resident. Calibrated so that at equal
    # priorities a pair mutually slows ~10 % (shared FXU + L1), while a
    # priority-2 gap starves the victim to its decode share — the regime
    # the paper's MetBench and BT-MZ numbers exhibit.
    "hpc": LoadProfile(
        name="hpc",
        mix=_mix(fxu=0.45, fpu=0.10, load=0.28, store=0.05, branch=0.12),
        l1_miss_rate=0.04,
        l2_miss_rate=0.08,
        l3_miss_rate=0.10,
        branch_mispredict_rate=0.01,
        ilp=3.2,
    ),
    # BT-MZ-like CFD mix: FP heavy with a real cache footprint. The
    # footprint (L1 misses + shared-L2 traffic) makes a pair of these
    # mutually slow ~25 % at equal priorities, so the favoured thread of
    # a prioritised pair gains substantially — the regime the paper's
    # Table V shows (P4 sped up ~25 % in case C).
    "cfd": LoadProfile(
        name="cfd",
        mix=_mix(fxu=0.20, fpu=0.40, load=0.27, store=0.08, branch=0.05),
        l1_miss_rate=0.16,
        l2_miss_rate=0.10,
        l3_miss_rate=0.15,
        branch_mispredict_rate=0.01,
        ilp=3.4,
    ),
    # SIESTA-like DFT mix: dense linear algebra over a large working set.
    # Memory-bound: priority gaps of 1 barely bind (the victim's demand is
    # below even a 1/4 decode share) while the favoured thread gains from
    # reduced cache/memory contention — the mild, congestion-dominated
    # regime SIESTA shows in the paper's Table VI.
    "dft": LoadProfile(
        name="dft",
        mix=_mix(fxu=0.22, fpu=0.38, load=0.28, store=0.07, branch=0.05),
        l1_miss_rate=0.15,
        l2_miss_rate=0.25,
        l3_miss_rate=0.30,
        branch_mispredict_rate=0.015,
        ilp=3.6,
    ),
    "spin": SPIN_LOAD,
}


@dataclass
class InstructionStream:
    """Deterministic synthetic instruction generator for one thread.

    Yields ``(instr_class, l1_miss, l2_miss, l3_miss, mispredict)`` tuples
    drawn i.i.d. from the profile using the supplied RNG. Generation is in
    blocks for speed; the iterator protocol hides the blocking.
    """

    profile: LoadProfile
    rng: np.random.Generator
    block: int = 4096
    _classes: np.ndarray = field(init=False, repr=False)
    _miss1: np.ndarray = field(init=False, repr=False)
    _miss2: np.ndarray = field(init=False, repr=False)
    _miss3: np.ndarray = field(init=False, repr=False)
    _mpred: np.ndarray = field(init=False, repr=False)
    _pos: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive("block", self.block)
        self._refill()

    def _refill(self) -> None:
        p = self.profile
        mix = p.mix_vector()
        n = self.block
        self._classes = self.rng.choice(len(InstrClass), size=n, p=mix)
        u = self.rng.random((n, 4))
        self._miss1 = u[:, 0] < p.l1_miss_rate
        self._miss2 = u[:, 1] < p.l2_miss_rate
        self._miss3 = u[:, 2] < p.l3_miss_rate
        self._mpred = u[:, 3] < p.branch_mispredict_rate
        self._pos = 0

    def next_instruction(self) -> Tuple[InstrClass, bool, bool, bool, bool]:
        """Return the next synthetic instruction descriptor."""
        if self._pos >= self.block:
            self._refill()
        i = self._pos
        self._pos += 1
        return (
            InstrClass(int(self._classes[i])),
            bool(self._miss1[i]),
            bool(self._miss2[i]),
            bool(self._miss3[i]),
            bool(self._mpred[i]),
        )

    def __iter__(self) -> Iterator[Tuple[InstrClass, bool, bool, bool, bool]]:
        while True:
            yield self.next_instruction()


def get_profile(name: str, profiles: Optional[Mapping[str, LoadProfile]] = None) -> LoadProfile:
    """Look up a profile by name in ``profiles`` (default: BASE_PROFILES)."""
    table = BASE_PROFILES if profiles is None else profiles
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown load profile {name!r}; available: {sorted(table)}"
        ) from None
