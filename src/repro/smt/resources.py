"""Shared back-end resource pools of an SMT core.

The POWER5's two contexts share the Global Completion Table (20 groups of
up to 5 instructions), the rename registers and the issue queues. These
pools are what makes SMT interference *super-linear*: a thread stalled on
a long-latency miss keeps holding its GCT groups and rename registers,
starving the sibling even when the sibling owns most decode slots. The
paper leans on exactly this effect ("the performance of the penalized
process can be reduced much more than linearly").

We model each pool as a counted semaphore with per-thread accounting and
optional per-thread caps (the POWER5 throttles a thread that hoards the
GCT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.util.validation import check_positive

__all__ = ["ResourceSpec", "SharedResourcePool", "POWER5_RESOURCES"]


@dataclass(frozen=True)
class ResourceSpec:
    """Capacity description for one shared pool."""

    name: str
    capacity: int
    #: Maximum entries a single thread may hold (hoarding throttle);
    #: defaults to the full capacity.
    per_thread_cap: int = 0

    def __post_init__(self) -> None:
        check_positive(f"{self.name}.capacity", self.capacity)
        if self.per_thread_cap < 0:
            raise ConfigurationError(f"{self.name}.per_thread_cap must be >= 0")

    @property
    def effective_thread_cap(self) -> int:
        return self.per_thread_cap if self.per_thread_cap else self.capacity


#: Representative POWER5 shared-resource capacities.
#: GCT: 20 groups; rename GPR/FPR pools ~120 each of which ~88 are
#: renameable beyond the architected set. We fold rename into a single
#: "rename" pool; the reproduction needs the *existence* of a bounded
#: shared window, not its exact partitioning.
POWER5_RESOURCES: Mapping[str, ResourceSpec] = {
    "gct": ResourceSpec("gct", capacity=20, per_thread_cap=17),
    "rename": ResourceSpec("rename", capacity=96, per_thread_cap=80),
}


class SharedResourcePool:
    """Counted, per-thread-accounted shared pool.

    The pipeline acquires entries at decode and releases them at
    completion. ``try_acquire`` is all-or-nothing for a batch, matching
    group-based dispatch.
    """

    def __init__(self, spec: ResourceSpec, n_threads: int = 2) -> None:
        check_positive("n_threads", n_threads)
        self.spec = spec
        self._held: Dict[int, int] = {t: 0 for t in range(n_threads)}

    @property
    def in_use(self) -> int:
        return sum(self._held.values())

    @property
    def free(self) -> int:
        return self.spec.capacity - self.in_use

    def held_by(self, thread: int) -> int:
        """Entries currently held by ``thread``."""
        return self._held[thread]

    def can_acquire(self, thread: int, n: int = 1) -> bool:
        """Would ``try_acquire`` succeed, without side effects?"""
        if n <= 0:
            raise ConfigurationError(f"acquire count must be > 0, got {n}")
        if self.free < n:
            return False
        return self._held[thread] + n <= self.spec.effective_thread_cap

    def try_acquire(self, thread: int, n: int = 1) -> bool:
        """Acquire ``n`` entries for ``thread`` if capacity and cap allow."""
        if not self.can_acquire(thread, n):
            return False
        self._held[thread] += n
        return True

    def release(self, thread: int, n: int = 1) -> None:
        """Release ``n`` entries held by ``thread``."""
        if n <= 0:
            raise ConfigurationError(f"release count must be > 0, got {n}")
        if self._held[thread] < n:
            raise SimulationError(
                f"pool {self.spec.name!r}: thread {thread} releasing {n} "
                f"but holds {self._held[thread]}"
            )
        self._held[thread] -= n

    def reset(self) -> None:
        """Drop all holdings (between measurement windows)."""
        for t in self._held:
            self._held[t] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedResourcePool({self.spec.name!r}, in_use={self.in_use}/"
            f"{self.spec.capacity}, held={self._held})"
        )
