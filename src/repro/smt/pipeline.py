"""Cycle-level model of one POWER5-like SMT core pipeline.

This is the *detailed* end of the two-level simulation described in
DESIGN.md §5. It executes synthetic instruction streams for the core's
two hardware contexts cycle by cycle:

decode — one context per cycle is allowed to decode, chosen by the
    priority-driven pattern from :func:`repro.smt.decode.decode_pattern`
    (Tables II/III). A context decodes up to ``decode_width`` instructions
    provided it can acquire GCT/rename entries (shared pools).
issue/execute — each instruction starts when its operands are ready
    (a probabilistic dependence on its predecessor models the thread's
    ILP) and a functional unit is free; memory ops add cache latency from
    the hierarchy model, off-L1 misses additionally need an MSHR.
complete/retire — instructions retire in order, releasing their shared
    pool entries. A mispredicted branch blocks its thread's decode until
    it resolves.

The model is intentionally compact (hundreds of thousands of cycles per
second in CPython) yet reproduces the phenomena the paper builds on:
decode-share throttling, super-linear starvation through shared-pool
hoarding, and spin-waiting siblings stealing real throughput.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.smt.cache import CacheHierarchy
from repro.smt.decode import ArbitrationMode, decode_allocation, decode_pattern
from repro.smt.functional_units import FunctionalUnitPool, POWER5_FU_SPECS
from repro.smt.instructions import InstrClass, InstructionStream, LoadProfile
from repro.smt.resources import POWER5_RESOURCES, ResourceSpec, SharedResourcePool
from repro.util.validation import check_positive

__all__ = ["PipelineConfig", "ThreadPerfCounters", "CorePipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable parameters of the core model."""

    decode_width: int = 5
    retire_width: int = 5
    #: Redirect penalty after a mispredicted branch resolves.
    branch_flush_penalty: int = 7
    #: Probability that an instruction depends on its immediate
    #: predecessor is ``1/ilp`` of its thread's profile.
    gct_spec: ResourceSpec = POWER5_RESOURCES["gct"]
    rename_spec: ResourceSpec = POWER5_RESOURCES["rename"]
    #: Rename registers consumed per decoded instruction (coarse).
    rename_per_instr: int = 2

    def __post_init__(self) -> None:
        check_positive("decode_width", self.decode_width)
        check_positive("retire_width", self.retire_width)
        check_positive("rename_per_instr", self.rename_per_instr)
        if self.branch_flush_penalty < 0:
            raise ConfigurationError("branch_flush_penalty must be >= 0")


@dataclass
class ThreadPerfCounters:
    """Per-thread performance counters over one measurement window."""

    decoded: int = 0
    completed: int = 0
    decode_cycles_granted: int = 0
    decode_cycles_used: int = 0
    stall_gct: int = 0
    stall_rename: int = 0
    stall_branch: int = 0
    cycles: int = 0

    @property
    def ipc(self) -> float:
        """Completed instructions per core cycle."""
        return self.completed / self.cycles if self.cycles else 0.0

    @property
    def decode_share(self) -> float:
        """Fraction of cycles this thread was granted decode."""
        return self.decode_cycles_granted / self.cycles if self.cycles else 0.0


class _ThreadState:
    """Mutable per-context execution state."""

    __slots__ = (
        "stream",
        "profile",
        "dep_prob",
        "last_completion",
        "rob",
        "blocked_until",
        "counters",
        "rng",
    )

    def __init__(
        self,
        profile: Optional[LoadProfile],
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.stream = InstructionStream(profile, rng) if profile is not None else None
        self.dep_prob = 1.0 / profile.ilp if profile is not None else 0.0
        #: Completion cycle of the most recently decoded instruction — the
        #: producer a dependent successor waits on.
        self.last_completion = 0
        #: In-order window of (completion_cycle, rename_entries) pending retire.
        self.rob: Deque[Tuple[int, int]] = deque()
        self.blocked_until = 0
        self.counters = ThreadPerfCounters()


class CorePipeline:
    """Cycle simulator for one core running up to two contexts.

    Parameters
    ----------
    profiles:
        ``(profile_a, profile_b)``; ``None`` means the context has no work
        (idle or shut off) and never decodes.
    priorities:
        Hardware thread priorities ``(prio_a, prio_b)``.
    rng:
        Generator for all stochastic draws of this core (instruction
        classes, misses, dependences).
    config, fu_pool, caches:
        Model parameters and the shared structures; fresh defaults are
        created when omitted.
    """

    def __init__(
        self,
        profiles: Tuple[Optional[LoadProfile], Optional[LoadProfile]],
        priorities: Tuple[int, int],
        rng: np.random.Generator,
        config: Optional[PipelineConfig] = None,
        fu_pool: Optional[FunctionalUnitPool] = None,
        caches: Optional[CacheHierarchy] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.priorities = (int(priorities[0]), int(priorities[1]))
        self.allocation = decode_allocation(*self.priorities)
        self.pattern = decode_pattern(*self.priorities)
        self.fu_pool = fu_pool or FunctionalUnitPool(POWER5_FU_SPECS)
        self.caches = caches or CacheHierarchy()
        self.gct = SharedResourcePool(self.config.gct_spec)
        self.rename = SharedResourcePool(self.config.rename_spec)
        self._mshr_free: List[int] = [0] * self.caches.memory.mshrs_per_core
        self._threads = (
            _ThreadState(profiles[0], rng),
            _ThreadState(profiles[1], rng),
        )
        self._dep_draws = rng.random(8192)
        self._dep_pos = 0
        self.cycle = 0

    def _dep_draw(self) -> float:
        if self._dep_pos >= len(self._dep_draws):
            self._dep_pos = 0
        v = self._dep_draws[self._dep_pos]
        self._dep_pos += 1
        return float(v)

    # -- per-cycle stages ---------------------------------------------------

    def _retire(self, now: int) -> None:
        for tid in (0, 1):
            ts = self._threads[tid]
            retired = 0
            rob = ts.rob
            while rob and retired < self.config.retire_width and rob[0][0] <= now:
                _, rename_n = rob.popleft()
                self.gct.release(tid, 1)
                self.rename.release(tid, rename_n)
                ts.counters.completed += 1
                retired += 1

    def _decode_thread(self, tid: int, now: int) -> int:
        """Attempt decode for thread ``tid`` at cycle ``now``.

        Returns the number of instructions decoded (0 if blocked).
        """
        ts = self._threads[tid]
        cfg = self.config
        if ts.stream is None:
            return 0
        if now < ts.blocked_until:
            ts.counters.stall_branch += 1
            return 0
        decoded = 0
        while decoded < cfg.decode_width:
            if not self.gct.can_acquire(tid, 1):
                if decoded == 0:
                    ts.counters.stall_gct += 1
                break
            if not self.rename.can_acquire(tid, cfg.rename_per_instr):
                if decoded == 0:
                    ts.counters.stall_rename += 1
                break
            cls, m1, m2, m3, mpred = ts.stream.next_instruction()
            self.gct.try_acquire(tid, 1)
            self.rename.try_acquire(tid, cfg.rename_per_instr)

            ready = now
            if self._dep_draw() < ts.dep_prob:
                ready = max(ready, ts.last_completion)
            start = self.fu_pool.issue(cls, ready)
            latency = self.fu_pool.latency(cls)
            if cls in (InstrClass.LOAD, InstrClass.STORE):
                mem_lat = self.caches.access(now, m1, m2, m3)
                if m1:  # off-L1 miss needs an MSHR
                    slot = min(range(len(self._mshr_free)), key=self._mshr_free.__getitem__)
                    start = max(start, self._mshr_free[slot])
                    self._mshr_free[slot] = start + mem_lat
                latency = max(latency, mem_lat)
            completion = start + latency
            ts.last_completion = completion
            ts.rob.append((completion, cfg.rename_per_instr))
            ts.counters.decoded += 1
            decoded += 1
            if cls is InstrClass.BRANCH and mpred:
                # Redirect: no further decode until the branch resolves.
                ts.blocked_until = completion + cfg.branch_flush_penalty
                break
        if decoded:
            ts.counters.decode_cycles_used += 1
        return decoded

    def step(self) -> None:
        """Advance the core by one cycle."""
        now = self.cycle
        self._retire(now)
        if self.pattern:
            slot = self.pattern[now % len(self.pattern)]
            if slot is not None:
                self._threads[slot].counters.decode_cycles_granted += 1
                n = self._decode_thread(slot, now)
                if n == 0 and self.allocation.mode is ArbitrationMode.LEFTOVER:
                    other = 1 - slot
                    self._threads[other].counters.decode_cycles_granted += 1
                    self._decode_thread(other, now)
        self.cycle = now + 1

    def run(self, cycles: int) -> Tuple[ThreadPerfCounters, ThreadPerfCounters]:
        """Run ``cycles`` cycles and return both threads' counters.

        Counters accumulate across calls; ``cycles`` is the increment.
        """
        check_positive("cycles", cycles)
        target = self.cycle + int(cycles)
        step = self.step
        while self.cycle < target:
            step()
        # Drain retirement bookkeeping for instructions already complete.
        self._retire(self.cycle)
        for ts in self._threads:
            ts.counters.cycles = self.cycle
        return (self._threads[0].counters, self._threads[1].counters)

    @property
    def counters(self) -> Tuple[ThreadPerfCounters, ThreadPerfCounters]:
        return (self._threads[0].counters, self._threads[1].counters)
