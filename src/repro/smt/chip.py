"""The POWER5 chip: two SMT cores behind a shared L2/L3.

Hardware contexts are addressed two ways:

* ``(core, thread)`` pairs inside the SMT layer, and
* flat *logical CPU* ids 0..3, matching how Linux enumerates them and how
  the paper labels processes (``P1`` on ``CPU0`` = core 0 thread 0, ...).

:class:`Power5Chip` owns the cores and the translation between the two
addressings; the kernel scheduler and the MPI runtime talk logical CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.smt.core import CoreSnapshot, SmtCore
from repro.smt.instructions import LoadProfile
from repro.smt.priorities import HardwarePriority
from repro.util.units import POWER5_FREQ_HZ
from repro.util.validation import check_positive

__all__ = ["HardwareContextId", "ChipConfig", "Power5Chip"]


@dataclass(frozen=True, order=True)
class HardwareContextId:
    """Address of one hardware context: ``(core, thread)``."""

    core: int
    thread: int

    def __post_init__(self) -> None:
        if self.core < 0 or self.thread < 0:
            raise ConfigurationError(f"invalid hardware context {self}")

    @property
    def sibling(self) -> "HardwareContextId":
        """The other context on the same core."""
        return HardwareContextId(self.core, 1 - self.thread)

    def __str__(self) -> str:
        return f"core{self.core}.t{self.thread}"


@dataclass(frozen=True)
class ChipConfig:
    """Static chip parameters (the paper's machine is the default)."""

    n_cores: int = 2
    threads_per_core: int = 2
    freq_hz: float = POWER5_FREQ_HZ

    def __post_init__(self) -> None:
        check_positive("n_cores", self.n_cores)
        if self.threads_per_core != 2:
            raise ConfigurationError(
                "the POWER5 model supports exactly 2 threads per core"
            )
        check_positive("freq_hz", self.freq_hz)

    @property
    def n_cpus(self) -> int:
        """Number of logical CPUs the OS sees."""
        return self.n_cores * self.threads_per_core


class Power5Chip:
    """A chip of :class:`~repro.smt.core.SmtCore` instances.

    Examples
    --------
    >>> chip = Power5Chip()
    >>> chip.context_of_cpu(3)
    HardwareContextId(core=1, thread=1)
    >>> chip.cpu_of_context(HardwareContextId(1, 1))
    3
    """

    def __init__(self, config: Optional[ChipConfig] = None) -> None:
        self.config = config or ChipConfig()
        self.cores: List[SmtCore] = [SmtCore(i) for i in range(self.config.n_cores)]

    # -- addressing -----------------------------------------------------------

    def context_of_cpu(self, cpu: int) -> HardwareContextId:
        """Translate a logical CPU id to ``(core, thread)``."""
        if not 0 <= cpu < self.config.n_cpus:
            raise ConfigurationError(
                f"cpu must be in 0..{self.config.n_cpus - 1}, got {cpu}"
            )
        return HardwareContextId(cpu // 2, cpu % 2)

    def cpu_of_context(self, ctx: HardwareContextId) -> int:
        """Translate ``(core, thread)`` to a logical CPU id."""
        if not 0 <= ctx.core < self.config.n_cores or ctx.thread not in (0, 1):
            raise ConfigurationError(f"invalid context {ctx} for this chip")
        return ctx.core * 2 + ctx.thread

    def core_of_cpu(self, cpu: int) -> SmtCore:
        """The :class:`SmtCore` hosting logical CPU ``cpu``."""
        return self.cores[self.context_of_cpu(cpu).core]

    @property
    def cpus(self) -> List[int]:
        return list(range(self.config.n_cpus))

    # -- state access by logical CPU -------------------------------------------

    def priority(self, cpu: int) -> HardwarePriority:
        ctx = self.context_of_cpu(cpu)
        return self.cores[ctx.core].priority(ctx.thread)

    def set_priority(self, cpu: int, priority: int) -> None:
        ctx = self.context_of_cpu(cpu)
        self.cores[ctx.core].set_priority(ctx.thread, priority)

    def load(self, cpu: int) -> Optional[LoadProfile]:
        ctx = self.context_of_cpu(cpu)
        return self.cores[ctx.core].load(ctx.thread)

    def set_load(self, cpu: int, profile: Optional[LoadProfile]) -> None:
        ctx = self.context_of_cpu(cpu)
        self.cores[ctx.core].set_load(ctx.thread, profile)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> Tuple[CoreSnapshot, ...]:
        """Per-core snapshots, the machine-level throughput key."""
        return tuple(core.snapshot() for core in self.cores)

    def reset(self) -> None:
        """Back to power-on defaults: MEDIUM priorities, no loads."""
        for core in self.cores:
            for t in (0, 1):
                core.set_priority(t, 4)
                core.set_load(t, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Power5Chip(cores={self.cores!r})"
