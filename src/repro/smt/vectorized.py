"""Stacked (batched) evaluation of the analytic core solver.

:func:`solve_stack` answers many ``(load_a, load_b, prio_a, prio_b,
external_traffic)`` core queries in one set of numpy array operations:
the damped fixed point of :meth:`AnalyticThroughputModel._solve` is run
element-wise over the whole stack, with one array op per arithmetic
step of the scalar solver.

Bit-faithfulness is the design constraint, not an accident. The scalar
solver uses only IEEE-754 basic operations (+, -, *, /, min, max), each
of which numpy evaluates element-wise with the exact same correctly
rounded semantics as CPython floats. The stacked solver therefore
reproduces the scalar result *bit for bit* as long as it performs the
same operations in the same order per element, which is arranged by:

- keeping each profile's latency/FU terms in mix order and padding the
  stack to the longest term list with zero-fraction terms (adding
  ``0.0 * lat`` to a non-negative accumulator is a bitwise no-op);
- accumulating cross-thread sums in thread order (thread 0's term
  before thread 1's), matching the scalar loops;
- implementing every conditional (`if util > cap`, `if off_l1 > 0`,
  ...) as a mask + ``np.where`` select, so untaken branches compute
  masked-out garbage without ever perturbing taken lanes;
- hoisting only *loop-invariant values* out of the fixed point — never
  refactoring arithmetic (no distributing, no reassociating), so every
  hoisted array holds exactly the bits the scalar expression produces.

The loop-invariant setup (per-thread constant stacks, latency/FU term
arrays) depends only on the ``(profile, profile, prio, prio)`` pair
sequence, not on the external-traffic column, so it is built once as a
:class:`_StackProblem` and memoised on the model: the chip coupling
sweep re-solves the same pair structure three times per batch with only
the traffic changing, and repeated service batches reuse it outright.

``tests/smt/test_vectorized.py`` pins the equality exhaustively, and
the batch-vs-scalar engine suite (``tests/scenarios/
test_batch_equivalence.py``) pins it end-to-end through trace digests.

numpy is an optional accelerator: callers (the model's
``chip_ipc_stack``) fall back to the scalar solver when it is missing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smt.analytic import AnalyticThroughputModel
    from repro.smt.instructions import LoadProfile

__all__ = ["solve_stack"]

#: One core query: (load_a, load_b, prio_a, prio_b, external_traffic).
CoreQuery = Tuple[
    Optional["LoadProfile"], Optional["LoadProfile"], int, int, float
]

#: Cached _StackProblem structures per model (see solve_stack).
_PROBLEM_CACHE_MAX = 32


def _safe_div(num: np.ndarray, den: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``num / den`` where ``mask`` (den is nonzero there), 0 elsewhere.

    The substitute denominator keeps the masked lanes finite so no
    warning fires and no inf/nan can leak through a later ``where``.
    """
    return np.where(mask, num, 0.0) / np.where(mask, den, 1.0)


class _StackProblem:
    """Everything about a stack of core queries that does not depend on
    the external-traffic column: per-thread constant arrays, latency and
    FU term stacks, activity masks. Building this is the expensive part
    of a stacked solve; :meth:`solve` is just the fixed point."""

    def __init__(
        self,
        model: "AnalyticThroughputModel",
        pairs: Sequence[Tuple[object, object, int, int]],
    ) -> None:
        n = len(pairs)
        self.n = n
        cfg = model.config

        consts = []  # _ProfileConsts or None, row-major (query, thread)
        shares = np.empty((n, 2))
        for qi, (pa, pb, prio_a, prio_b) in enumerate(pairs):
            share_a, share_b = model._decode_share(int(prio_a), int(prio_b))
            shares[qi, 0] = share_a
            shares[qi, 1] = share_b
            consts.append(model._profile_consts(pa) if pa is not None else None)
            consts.append(model._profile_consts(pb) if pb is not None else None)

        active2 = np.array(
            [
                [
                    consts[2 * qi] is not None and shares[qi, 0] > 0.0,
                    consts[2 * qi + 1] is not None and shares[qi, 1] > 0.0,
                ]
                for qi in range(n)
            ]
        )
        self.active = [active2[:, 0].copy(), active2[:, 1].copy()]
        self.both_active = active2[:, 0] & active2[:, 1]

        def per_thread(attr: str, idle: float) -> List[np.ndarray]:
            cols = [np.full(n, idle), np.full(n, idle)]
            for qi in range(n):
                for ti in range(2):
                    c = consts[2 * qi + ti]
                    if c is not None and active2[qi, ti]:
                        cols[ti][qi] = getattr(c, attr)
            return cols

        # Idle/inactive slots get inert values (never selected: new_x is
        # masked to 0 there); ilp=2 keeps the masked demand denominator
        # 1 + (0 - 1)/ilp away from zero.
        self.ilp = per_thread("ilp", 2.0)
        self.l1_miss = per_thread("l1_miss", 0.0)
        self.l2_miss = per_thread("l2_miss", 0.0)
        self.l3_miss = per_thread("l3_miss", 0.0)
        self.mem_frac = per_thread("mem_frac", 0.0)
        self.solo = per_thread("solo_plain", 0.0)

        self.supply = [
            np.where(self.active[ti], shares[:, ti] * cfg.decode_width, 0.0)
            for ti in (0, 1)
        ]
        self.x0 = [
            np.where(
                self.active[ti],
                np.minimum(self.supply[ti], self.solo[ti]),
                0.0,
            )
            for ti in (0, 1)
        ]

        # Constant hit-chain factors. ``1.0 - l2m`` / ``(l1m*l2m)`` with
        # l1m == 1.0 are loop-invariant; hoisting them performs exactly
        # the ops the scalar _expected_latency performs on the same
        # constants (1.0 * a == a bitwise), never a reassociation.
        self.one_minus_l2 = [1.0 - self.l2_miss[ti] for ti in (0, 1)]
        self.one_minus_l3 = [1.0 - self.l3_miss[ti] for ti in (0, 1)]
        # expected_latency(1.0, l2m, l3m, ·): hit1 = 0, hit2 = 1-l2m,
        # hit3 = l2m*(1-l3m), miss = l2m*l3m — all constant.
        self.ehit2 = [self.one_minus_l2[ti] for ti in (0, 1)]
        self.ehit3 = [
            self.l2_miss[ti] * self.one_minus_l3[ti] for ti in (0, 1)
        ]
        self.emiss = [
            self.l2_miss[ti] * self.l3_miss[ti] for ti in (0, 1)
        ]

        # Sibling-pressure masks and safe denominators (solo is const).
        self.solo_pos = [self.solo[ti] > 0.0 for ti in (0, 1)]
        self.solo_safe = [
            np.where(self.solo_pos[ti], self.solo[ti], 1.0) for ti in (0, 1)
        ]
        self.tax_mask = [
            self.both_active & self.solo_pos[1 - ti] for ti in (0, 1)
        ]

        # Latency terms, padded to the longest mix with zero-fraction
        # terms (``+= 0.0 * lat`` is a bitwise no-op on the non-negative
        # total).
        n_lat = max(
            (len(c.lat_terms) for c in consts if c is not None), default=0
        )
        self.n_lat = n_lat
        self.lt_is_mem = [np.zeros((n, n_lat), dtype=bool) for _ in (0, 1)]
        self.lt_frac = [np.zeros((n, n_lat)) for _ in (0, 1)]
        self.lt_fixed = [np.zeros((n, n_lat)) for _ in (0, 1)]
        for qi in range(n):
            for ti in range(2):
                c = consts[2 * qi + ti]
                if c is None or not active2[qi, ti]:
                    continue
                for t, (is_mem, frac, fixed) in enumerate(c.lat_terms):
                    self.lt_is_mem[ti][qi, t] = is_mem
                    self.lt_frac[ti][qi, t] = frac
                    self.lt_fixed[ti][qi, t] = fixed

        # FU terms grouped per capacity group, thread-major in mix order
        # — the accumulation order of the scalar utilisation loop.
        self.caps = []  # (cap_scalar, cap_full, [frac_t0, frac_t1])
        for group, cap in model._fu_caps.items():
            per_ti = []
            for ti in range(2):
                rows = []
                for qi in range(n):
                    c = consts[2 * qi + ti]
                    fracs = (
                        [f for g, f in c.fu_terms if g == group]
                        if c is not None and active2[qi, ti]
                        else []
                    )
                    rows.append(fracs)
                width = max((len(r) for r in rows), default=0)
                arr = np.zeros((n, width))
                for qi, fracs in enumerate(rows):
                    arr[qi, : len(fracs)] = fracs
                per_ti.append(arr)
            self.caps.append((float(cap), np.full(n, float(cap)), per_ti))

        self.cross_core_factor = cfg.cross_core_factor
        self.congestion_cycles = cfg.congestion_cycles
        self.l1_sharing_tax = cfg.l1_sharing_tax
        self.damping = cfg.damping
        self.iterations = cfg.iterations
        self.lat_l1 = model._lat_l1
        self.lat_l2 = model._lat_l2
        self.lat_l3 = model._lat_l3
        self.lat_mem = model._lat_mem
        self.mshrs_full = np.full(
            n, float(model.caches.memory.mshrs_per_core)
        )

    def solve(self, exts: Sequence[float]) -> List[Tuple[float, float]]:
        """The damped fixed point over the stack for one traffic column,
        bit-identical to ``model._solve`` per element."""
        n = self.n
        active = self.active
        supply = self.supply
        solo = self.solo
        ilp = self.ilp
        l1_miss = self.l1_miss
        mem_frac = self.mem_frac
        lat_l1 = self.lat_l1
        lat_l2 = self.lat_l2
        lat_l3 = self.lat_l3
        lat_mem = self.lat_mem

        base_traffic = np.asarray(
            [float(e) for e in exts]
        ) * self.cross_core_factor
        x = [self.x0[0], self.x0[1]]

        for _ in range(self.iterations):
            traffic = base_traffic
            for ti in (0, 1):
                traffic = traffic + x[ti] * mem_frac[ti] * l1_miss[ti]
            congestion = self.congestion_cycles * traffic

            new_x = [None, None]
            for ti in (0, 1):
                tj = 1 - ti
                sibling_ratio = (
                    np.where(self.solo_pos[tj], x[tj], 0.0)
                    / self.solo_safe[tj]
                )
                l1_tax = np.where(
                    self.tax_mask[ti],
                    self.l1_sharing_tax * np.minimum(1.0, sibling_ratio),
                    0.0,
                )
                l1m = np.minimum(1.0, l1_miss[ti] * (1.0 + l1_tax))
                # expected_latency(l1m, l2m, l3m, congestion), with the
                # constant (1 - l2m)/(1 - l3m) factors prebuilt.
                hit1 = 1.0 - l1m
                hit2 = l1m * self.one_minus_l2[ti]
                hit3 = l1m * self.l2_miss[ti] * self.one_minus_l3[ti]
                miss = l1m * self.l2_miss[ti] * self.l3_miss[ti]
                mem_lat = (
                    hit1 * lat_l1
                    + hit2 * (lat_l2 + congestion)
                    + hit3 * (lat_l3 + 2 * congestion)
                    + miss * (lat_mem + 3 * congestion)
                )
                lat = np.where(
                    self.lt_is_mem[ti],
                    np.maximum(self.lt_fixed[ti], mem_lat[:, None]),
                    self.lt_fixed[ti],
                )
                contrib = self.lt_frac[ti] * lat
                total = np.zeros(n)
                for t in range(self.n_lat):
                    total = total + contrib[:, t]
                demand = ilp[ti] / (1.0 + (total - 1.0) / ilp[ti])
                new_x[ti] = np.where(
                    active[ti], np.minimum(supply[ti], demand), 0.0
                )

            scale = np.ones(n)
            for _cap, cap_full, per_ti in self.caps:
                util = np.zeros(n)
                for ti in (0, 1):
                    frac = per_ti[ti]
                    for t in range(frac.shape[1]):
                        util = util + new_x[ti] * frac[:, t]
                over = util > _cap
                scale = np.where(
                    over, np.minimum(scale, _safe_div(cap_full, util, over)),
                    scale,
                )
            shrink = scale < 1.0
            for ti in (0, 1):
                new_x[ti] = np.where(shrink, new_x[ti] * scale, new_x[ti])

            off_l1 = np.zeros(n)
            for ti in (0, 1):
                off_l1 = off_l1 + new_x[ti] * mem_frac[ti] * l1_miss[ti]
            bound = off_l1 > 0.0
            lat_num = np.zeros(n)
            for ti in (0, 1):
                # expected_latency(1.0, l2m, l3m, congestion): the hit
                # chain is constant, only congestion varies.
                lat = (
                    0.0 * lat_l1
                    + self.ehit2[ti] * (lat_l2 + congestion)
                    + self.ehit3[ti] * (lat_l3 + 2 * congestion)
                    + self.emiss[ti] * (lat_mem + 3 * congestion)
                )
                lat_num = lat_num + (
                    new_x[ti] * mem_frac[ti] * l1_miss[ti] * lat
                )
            mean_lat = _safe_div(lat_num, off_l1, bound)
            positive = bound & (mean_lat > 0.0)
            mem_cap = _safe_div(self.mshrs_full, mean_lat, positive)
            limited = positive & (off_l1 > mem_cap)
            mem_scale = _safe_div(mem_cap, off_l1, limited)
            for ti in (0, 1):
                new_x[ti] = np.where(
                    limited, new_x[ti] * mem_scale, new_x[ti]
                )

            x = [
                x[ti] + self.damping * (new_x[ti] - x[ti]) for ti in (0, 1)
            ]

        out0 = np.maximum(0.0, x[0])
        out1 = np.maximum(0.0, x[1])
        return [(float(out0[qi]), float(out1[qi])) for qi in range(n)]


def _problem_for(
    model: "AnalyticThroughputModel",
    pairs: List[Tuple[object, object, int, int]],
    key: tuple,
) -> _StackProblem:
    """The memoised problem structure for this pair sequence.

    Keyed on profile names + priorities in stack order; the chip
    coupling sweep hits this for its second and third stages (same
    pairs, new traffic) and repeated batches hit it outright.
    """
    cache = getattr(model, "_stack_problems", None)
    if cache is None:
        cache = {}
        model._stack_problems = cache
    problem = cache.get(key)
    if problem is None:
        problem = _StackProblem(model, pairs)
        if len(cache) >= _PROBLEM_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[key] = problem
    return problem


def solve_stack(
    model: "AnalyticThroughputModel", queries: Sequence[CoreQuery]
) -> List[Tuple[float, float]]:
    """Solve every core query in one vectorized fixed-point iteration.

    Returns one ``(ipc_a, ipc_b)`` pair per query, bit-identical to
    ``model._solve`` on the same query.
    """
    if not queries:
        return []
    pairs = [(pa, pb, int(xa), int(xb)) for (pa, pb, xa, xb, _e) in queries]
    key = tuple(
        (pa.name if pa else None, pb.name if pb else None, xa, xb)
        for (pa, pb, xa, xb) in pairs
    )
    problem = _problem_for(model, pairs, key)
    return problem.solve([q[4] for q in queries])
