"""Hardware thread priorities of the IBM POWER5 (paper Table I).

Each SMT context of a POWER5 core carries a *hardware thread priority*,
an integer 0..7, independent of the OS notion of scheduling priority:

====== ================= ================ ===============
 Prio   Level             Privilege        or-nop inst.
====== ================= ================ ===============
 0      Thread shut off   Hypervisor       --
 1      Very low          Supervisor       ``or 31,31,31``
 2      Low               User             ``or 1,1,1``
 3      Medium-low        User             ``or 6,6,6``
 4      Medium (default)  User             ``or 2,2,2``
 5      Medium-high       Supervisor       ``or 5,5,5``
 6      High              Supervisor       ``or 3,3,3``
 7      Very high         Hypervisor       ``or 7,7,7``
====== ================= ================ ===============

The priority is set either by executing one of the ``or Rx,Rx,Rx``
no-op-like instructions above, or by an ``mtspr`` write to the Thread
Status Register; both are modelled at the :mod:`repro.kernel.hmt` layer.
This module is the pure architectural definition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import InvalidPriorityError

__all__ = [
    "HardwarePriority",
    "PrivilegeLevel",
    "PriorityLevelInfo",
    "PRIORITY_TABLE",
    "DEFAULT_PRIORITY",
    "or_nop_for_priority",
    "priority_for_or_nop",
    "required_privilege",
    "can_set_priority",
    "validate_priority",
]


class HardwarePriority(enum.IntEnum):
    """The eight architectural hardware thread priority levels."""

    THREAD_OFF = 0
    VERY_LOW = 1
    LOW = 2
    MEDIUM_LOW = 3
    MEDIUM = 4
    MEDIUM_HIGH = 5
    HIGH = 6
    VERY_HIGH = 7

    @property
    def label(self) -> str:
        """Paper-style label (``Medium-low``, ``Thread shut off``, ...)."""
        return PRIORITY_TABLE[int(self)].label


class PrivilegeLevel(enum.IntEnum):
    """Who may *set* a given priority; higher value = more privileged."""

    USER = 0
    SUPERVISOR = 1  # the operating system
    HYPERVISOR = 2

    @property
    def label(self) -> str:
        return {0: "User", 1: "Supervisor", 2: "Hypervisor"}[int(self)]


@dataclass(frozen=True)
class PriorityLevelInfo:
    """One row of paper Table I."""

    priority: int
    label: str
    privilege: PrivilegeLevel
    #: Register number X of the ``or X,X,X`` encoding; ``None`` for priority 0,
    #: which has no instruction encoding (the thread is off).
    or_nop_register: Optional[int]

    @property
    def or_nop_mnemonic(self) -> Optional[str]:
        if self.or_nop_register is None:
            return None
        r = self.or_nop_register
        return f"or {r},{r},{r}"


#: Paper Table I, keyed by priority value.
PRIORITY_TABLE: Dict[int, PriorityLevelInfo] = {
    0: PriorityLevelInfo(0, "Thread shut off", PrivilegeLevel.HYPERVISOR, None),
    1: PriorityLevelInfo(1, "Very low", PrivilegeLevel.SUPERVISOR, 31),
    2: PriorityLevelInfo(2, "Low", PrivilegeLevel.USER, 1),
    3: PriorityLevelInfo(3, "Medium-low", PrivilegeLevel.USER, 6),
    4: PriorityLevelInfo(4, "Medium", PrivilegeLevel.USER, 2),
    5: PriorityLevelInfo(5, "Medium-high", PrivilegeLevel.SUPERVISOR, 5),
    6: PriorityLevelInfo(6, "High", PrivilegeLevel.SUPERVISOR, 3),
    7: PriorityLevelInfo(7, "Very high", PrivilegeLevel.HYPERVISOR, 7),
}

#: The default priority a context runs at (``MEDIUM``); the kernel resets
#: priorities to this value on interrupt/syscall entry (paper section VI-A).
DEFAULT_PRIORITY: HardwarePriority = HardwarePriority.MEDIUM


def validate_priority(value: int) -> HardwarePriority:
    """Coerce ``value`` to :class:`HardwarePriority` or raise.

    Raises
    ------
    InvalidPriorityError
        If ``value`` is not an integer in 0..7 (booleans rejected).
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidPriorityError(value)
    if not 0 <= value <= 7:
        raise InvalidPriorityError(value)
    return HardwarePriority(value)


def or_nop_for_priority(priority: int) -> str:
    """Return the ``or X,X,X`` mnemonic that sets ``priority``.

    Raises
    ------
    InvalidPriorityError
        For out-of-range values, or for priority 0 which has no encoding.
    """
    prio = validate_priority(priority)
    info = PRIORITY_TABLE[int(prio)]
    if info.or_nop_mnemonic is None:
        raise InvalidPriorityError(priority)
    return info.or_nop_mnemonic


def priority_for_or_nop(register: int) -> HardwarePriority:
    """Inverse mapping: which priority does ``or register,register,register`` set?

    Raises
    ------
    InvalidPriorityError
        If ``register`` is not one of the special nop registers.
    """
    for info in PRIORITY_TABLE.values():
        if info.or_nop_register == register:
            return HardwarePriority(info.priority)
    raise InvalidPriorityError(register)


def required_privilege(priority: int) -> PrivilegeLevel:
    """The minimum privilege level allowed to set ``priority``."""
    prio = validate_priority(priority)
    return PRIORITY_TABLE[int(prio)].privilege


def can_set_priority(privilege: PrivilegeLevel, priority: int) -> bool:
    """True if an actor at ``privilege`` may set ``priority``.

    Encodes the paper's rules: user software only 2-4; the OS additionally
    1, 5 and 6; the hypervisor everything including 0 and 7.
    """
    return privilege >= required_privilege(priority)
