"""SMT core state: two hardware contexts, their priorities and loads.

:class:`SmtCore` is the *state holder* the kernel layer manipulates
(priority writes, context on/off) and the throughput models read. The
cycle-by-cycle execution lives in :mod:`repro.smt.pipeline`; the
fluid-rate MPI runtime never steps a core directly — it asks a throughput
model for rates given a :class:`CoreSnapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.smt.decode import ArbitrationMode, decode_allocation
from repro.smt.instructions import LoadProfile
from repro.smt.priorities import DEFAULT_PRIORITY, HardwarePriority, validate_priority

__all__ = ["CoreSnapshot", "SmtCore"]


@dataclass(frozen=True)
class CoreSnapshot:
    """Immutable view of a core's configuration at an instant.

    Used as (part of) the memoisation key for throughput lookups, so it
    must be hashable and value-semantic.
    """

    priorities: Tuple[int, int]
    load_names: Tuple[Optional[str], Optional[str]]

    @property
    def mode(self) -> ArbitrationMode:
        return decode_allocation(*self.priorities).mode

    @property
    def active_threads(self) -> int:
        """Number of contexts that are on *and* have work."""
        return sum(
            1
            for prio, load in zip(self.priorities, self.load_names)
            if prio > 0 and load is not None
        )


class SmtCore:
    """One 2-way SMT core: per-context priority and current load profile.

    Parameters
    ----------
    core_id:
        Index of this core within its chip.
    """

    N_CONTEXTS = 2

    def __init__(self, core_id: int = 0) -> None:
        if core_id < 0:
            raise ConfigurationError(f"core_id must be >= 0, got {core_id}")
        self.core_id = core_id
        self._priorities: List[HardwarePriority] = [DEFAULT_PRIORITY, DEFAULT_PRIORITY]
        self._loads: List[Optional[LoadProfile]] = [None, None]

    def _check_context(self, context: int) -> int:
        if context not in (0, 1):
            raise ConfigurationError(
                f"core {self.core_id}: context must be 0 or 1, got {context}"
            )
        return context

    # -- priorities ---------------------------------------------------------

    def priority(self, context: int) -> HardwarePriority:
        """Current hardware priority of ``context``."""
        return self._priorities[self._check_context(context)]

    @property
    def priorities(self) -> Tuple[HardwarePriority, HardwarePriority]:
        return (self._priorities[0], self._priorities[1])

    def set_priority(self, context: int, priority: int) -> None:
        """Set ``context``'s hardware priority (no privilege check here;
        privilege is enforced by :mod:`repro.kernel.hmt`)."""
        self._priorities[self._check_context(context)] = validate_priority(priority)

    # -- loads ----------------------------------------------------------------

    def load(self, context: int) -> Optional[LoadProfile]:
        """The load profile currently executing on ``context`` (None = idle)."""
        return self._loads[self._check_context(context)]

    def set_load(self, context: int, profile: Optional[LoadProfile]) -> None:
        """Install (or clear, with ``None``) the running load on ``context``."""
        ctx = self._check_context(context)
        if profile is not None and not isinstance(profile, LoadProfile):
            raise TypeError(f"profile must be LoadProfile or None, got {type(profile).__name__}")
        self._loads[ctx] = profile

    # -- derived -------------------------------------------------------------

    @property
    def mode(self) -> ArbitrationMode:
        """Current decode arbitration regime."""
        return decode_allocation(int(self._priorities[0]), int(self._priorities[1])).mode

    @property
    def single_thread_mode(self) -> bool:
        """True if exactly one context is shut off (priority 0)."""
        return self.mode in (
            ArbitrationMode.SINGLE_THREAD,
            ArbitrationMode.SINGLE_THREAD_SLOW,
        )

    def state(self) -> Tuple[Optional[LoadProfile], Optional[LoadProfile], int, int]:
        """``(load_a, load_b, prio_a, prio_b)`` — the throughput-model
        query for this core, built without per-field accessor overhead
        (the MPI runtime's rate recomputation calls this per event)."""
        loads = self._loads
        prios = self._priorities
        return (loads[0], loads[1], int(prios[0]), int(prios[1]))

    def snapshot(self) -> CoreSnapshot:
        """Hashable view for throughput memoisation."""
        return CoreSnapshot(
            priorities=(int(self._priorities[0]), int(self._priorities[1])),
            load_names=tuple(
                load.name if load is not None else None for load in self._loads
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmtCore(id={self.core_id}, prios={tuple(int(p) for p in self._priorities)}, "
            f"loads={[getattr(l, 'name', None) for l in self._loads]})"
        )
