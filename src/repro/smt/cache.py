"""Cache hierarchy model: per-core L1s, shared L2/L3, memory.

The cycle-level pipeline does not simulate tags and sets; a memory
access's level of service is drawn from the accessing thread's
:class:`~repro.smt.instructions.LoadProfile` miss rates (deterministic,
named RNG streams). What the hierarchy contributes is *latency* and a
bounded number of outstanding misses (MSHRs) per core — the second shared
resource through which a memory-bound thread slows its sibling.

A light contention model adds queueing delay at the shared L2/L3/memory
when both cores (or both threads) miss concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CacheLevel", "MemorySpec", "CacheHierarchy", "POWER5_CACHES"]


@dataclass(frozen=True)
class CacheLevel:
    """Latency/occupancy description of one cache level."""

    name: str
    latency: int  # total load-to-use cycles on a hit at this level
    shared: bool  # shared between cores (L2/L3) or per-core (L1)
    bandwidth_per_cycle: float = 1.0  # accesses servable per cycle

    def __post_init__(self) -> None:
        check_positive(f"{self.name}.latency", self.latency)
        check_positive(f"{self.name}.bandwidth_per_cycle", self.bandwidth_per_cycle)


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory latency and MSHR limits."""

    latency: int = 230
    mshrs_per_core: int = 8

    def __post_init__(self) -> None:
        check_positive("memory.latency", self.latency)
        check_positive("memory.mshrs_per_core", self.mshrs_per_core)


#: Representative POWER5 hierarchy (1.9 MB shared L2, 36 MB off-chip L3).
POWER5_CACHES: Mapping[str, CacheLevel] = {
    "l1": CacheLevel("l1", latency=2, shared=False),
    "l2": CacheLevel("l2", latency=13, shared=True, bandwidth_per_cycle=0.5),
    "l3": CacheLevel("l3", latency=87, shared=True, bandwidth_per_cycle=0.25),
}


@dataclass
class CacheHierarchy:
    """Latency oracle plus MSHR accounting for one chip.

    ``access`` maps a drawn (miss1, miss2, miss3) triple to a service
    latency including a congestion-dependent queueing term at shared
    levels. Congestion is tracked as exponentially-decayed recent miss
    traffic, so a phase of dense misses raises everyone's latency — the
    cheap stand-in for bank conflicts and bus occupancy.
    """

    levels: Mapping[str, CacheLevel] = field(default_factory=lambda: dict(POWER5_CACHES))
    memory: MemorySpec = field(default_factory=MemorySpec)
    #: Queueing sensitivity: extra cycles per unit of recent shared-level traffic.
    congestion_factor: float = 4.0
    #: Decay constant (cycles) of the traffic estimator.
    congestion_window: float = 64.0

    _traffic: float = field(init=False, default=0.0)
    _last_cycle: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        for key in ("l1", "l2", "l3"):
            if key not in self.levels:
                raise ConfigurationError(f"cache hierarchy missing level {key!r}")
        check_non_negative("congestion_factor", self.congestion_factor)
        check_positive("congestion_window", self.congestion_window)

    def _decay_traffic(self, cycle: int) -> None:
        dt = cycle - self._last_cycle
        if dt > 0:
            self._traffic *= pow(2.0, -dt / self.congestion_window)
            self._last_cycle = cycle

    @property
    def recent_traffic(self) -> float:
        """Decayed count of recent shared-level accesses (diagnostic)."""
        return self._traffic

    def access(self, cycle: int, miss1: bool, miss2: bool, miss3: bool) -> int:
        """Latency in cycles of a memory access at ``cycle``.

        ``miss1``/``miss2``/``miss3`` are the pre-drawn per-level miss
        outcomes (conditional: ``miss2`` only applies if ``miss1``, etc.).
        """
        if not miss1:
            return self.levels["l1"].latency
        self._decay_traffic(cycle)
        queue = int(self.congestion_factor * self._traffic)
        self._traffic += 1.0
        if not miss2:
            return self.levels["l2"].latency + queue
        if not miss3:
            return self.levels["l3"].latency + queue * 2
        return self.memory.latency + queue * 3

    def expected_latency(
        self,
        l1_miss: float,
        l2_miss: float,
        l3_miss: float,
        congestion: float = 0.0,
    ) -> float:
        """Closed-form mean access latency for given miss rates.

        Used by the analytic throughput model; ``congestion`` is an extra
        cycles term applied to off-L1 accesses.
        """
        for name, p in (("l1_miss", l1_miss), ("l2_miss", l2_miss), ("l3_miss", l3_miss)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be a probability, got {p}")
        l1 = self.levels["l1"].latency
        l2 = self.levels["l2"].latency
        l3 = self.levels["l3"].latency
        mem = self.memory.latency
        hit1 = 1.0 - l1_miss
        hit2 = l1_miss * (1.0 - l2_miss)
        hit3 = l1_miss * l2_miss * (1.0 - l3_miss)
        miss = l1_miss * l2_miss * l3_miss
        return (
            hit1 * l1
            + hit2 * (l2 + congestion)
            + hit3 * (l3 + 2 * congestion)
            + miss * (mem + 3 * congestion)
        )

    def reset(self) -> None:
        """Clear congestion state (between measurement windows)."""
        self._traffic = 0.0
        self._last_cycle = 0


def default_hierarchy() -> CacheHierarchy:
    """A fresh POWER5-like hierarchy instance."""
    return CacheHierarchy()
