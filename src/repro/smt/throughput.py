"""Measured throughput tables: the cycle simulator behind a memo cache.

:class:`ThroughputTable` answers the same query as
:class:`~repro.smt.analytic.AnalyticThroughputModel` — per-thread IPC for
``(load_a, load_b, prio_a, prio_b)`` — but by *running* the cycle-level
pipeline for a measurement window and caching the result. It is the
ground truth the analytic model is validated against, and can be plugged
into the MPI runtime for higher-fidelity (slower) experiments.

Both models satisfy the informal ``ThroughputModel`` protocol used by
:mod:`repro.mpi.runtime`: a ``core_ipc(profile_a, profile_b, prio_a,
prio_b) -> (ipc_a, ipc_b)`` method.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import PersistenceError
from repro.smt.cache import CacheHierarchy
from repro.smt.instructions import LoadProfile
from repro.smt.pipeline import CorePipeline, PipelineConfig
from repro.util.fingerprint import fingerprint_doc
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

__all__ = ["ThroughputResult", "ThroughputTable"]


@dataclass(frozen=True)
class ThroughputResult:
    """One measured operating point of a core."""

    ipc_a: float
    ipc_b: float
    decode_share_a: float
    decode_share_b: float
    cycles: int

    @property
    def pair(self) -> Tuple[float, float]:
        return (self.ipc_a, self.ipc_b)


class ThroughputTable:
    """Memoised cycle-simulator measurements.

    Parameters
    ----------
    warmup_cycles:
        Cycles run (and discarded) before the measurement window, so the
        pipeline reaches steady state (pools populated, caches warm).
    measure_cycles:
        Length of the measurement window. 40k cycles gives IPC stable to
        ~2 % for the bundled profiles.
    seed:
        Root seed of the measurement RNG streams; measurements are
        deterministic per (key, seed).
    """

    def __init__(
        self,
        warmup_cycles: int = 10_000,
        measure_cycles: int = 40_000,
        seed: int = 0,
        pipeline_config: Optional[PipelineConfig] = None,
    ) -> None:
        check_positive("warmup_cycles", warmup_cycles)
        check_positive("measure_cycles", measure_cycles)
        self.warmup_cycles = int(warmup_cycles)
        self.measure_cycles = int(measure_cycles)
        self.seed = int(seed)
        self.pipeline_config = pipeline_config or PipelineConfig()
        self._streams = RngStreams(seed)
        self._cache: Dict[tuple, ThroughputResult] = {}

    def _key(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
    ) -> tuple:
        return (
            profile_a.name if profile_a else None,
            profile_b.name if profile_b else None,
            int(prio_a),
            int(prio_b),
        )

    def measure(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
    ) -> ThroughputResult:
        """Measure (or fetch the cached) operating point for this key."""
        key = self._key(profile_a, profile_b, prio_a, prio_b)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        rng = self._streams.spawn(str(key)).get("pipeline")
        pipe = CorePipeline(
            (profile_a, profile_b),
            (int(prio_a), int(prio_b)),
            rng,
            config=self.pipeline_config,
            caches=CacheHierarchy(),
        )
        pipe.run(self.warmup_cycles)
        before = tuple(c.completed for c in pipe.counters)
        granted_before = tuple(c.decode_cycles_granted for c in pipe.counters)
        ca, cb = pipe.run(self.measure_cycles)
        window = self.measure_cycles
        result = ThroughputResult(
            ipc_a=(ca.completed - before[0]) / window,
            ipc_b=(cb.completed - before[1]) / window,
            decode_share_a=(ca.decode_cycles_granted - granted_before[0]) / window,
            decode_share_b=(cb.decode_cycles_granted - granted_before[1]) / window,
            cycles=window,
        )
        self._cache[key] = result
        return result

    def core_ipc(
        self,
        profile_a: Optional[LoadProfile],
        profile_b: Optional[LoadProfile],
        prio_a: int,
        prio_b: int,
        external_traffic: float = 0.0,
    ) -> Tuple[float, float]:
        """ThroughputModel-protocol adapter (cross-core traffic ignored —
        the cycle model is per-core; documented fidelity trade-off)."""
        del external_traffic
        return self.measure(profile_a, profile_b, prio_a, prio_b).pair

    def chip_ipc(self, core_states) -> Tuple[Tuple[float, float], ...]:
        """Per-core measurement without cross-core coupling."""
        return tuple(self.core_ipc(pa, pb, xa, xb) for (pa, pb, xa, xb) in core_states)

    @property
    def cached_keys(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- persistence -----------------------------------------------------------

    FORMAT = "repro-throughput-table"
    VERSION = 1

    @property
    def fingerprint(self) -> str:
        """Hash of everything a measurement depends on.

        Two tables agree on every possible entry iff their fingerprints
        match: warmup/measure windows, RNG seed, and the pipeline
        configuration (resource pool sizes included).  A persisted file
        carries this so stale tables are never silently reused.
        """
        pc = self.pipeline_config
        payload = {
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "pipeline": {
                "decode_width": pc.decode_width,
                "retire_width": pc.retire_width,
                "branch_flush_penalty": pc.branch_flush_penalty,
                "gct": [pc.gct_spec.name, pc.gct_spec.capacity, pc.gct_spec.per_thread_cap],
                "rename": [
                    pc.rename_spec.name,
                    pc.rename_spec.capacity,
                    pc.rename_spec.per_thread_cap,
                ],
                "rename_per_instr": pc.rename_per_instr,
            },
        }
        return fingerprint_doc(payload)

    def save(self, path: str) -> int:
        """Persist every cached measurement to ``path`` (JSON).

        The write is atomic (temp file + rename) so a concurrent reader
        never sees a torn table.  Returns the number of entries written.
        """
        entries = []
        for key in sorted(self._cache, key=repr):
            r = self._cache[key]
            entries.append(
                {
                    "key": list(key),
                    "ipc_a": r.ipc_a,
                    "ipc_b": r.ipc_b,
                    "decode_share_a": r.decode_share_a,
                    "decode_share_b": r.decode_share_b,
                    "cycles": r.cycles,
                }
            )
        doc = {
            "format": self.FORMAT,
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "entries": entries,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
        return len(entries)

    def load(self, path: str, strict: bool = False) -> int:
        """Merge measurements persisted at ``path`` into the cache.

        Entries are only accepted when the file's fingerprint matches
        this table's (same windows, seed and pipeline config); a
        mismatched or missing file is skipped and 0 returned, unless
        ``strict`` is true, in which case :class:`PersistenceError` is
        raised.  Returns the number of entries loaded.
        """
        if not os.path.exists(path):
            if strict:
                raise PersistenceError(f"throughput table not found: {path}")
            return 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"unreadable throughput table {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != self.FORMAT:
            raise PersistenceError(f"{path} is not a throughput table file")
        if doc.get("version") != self.VERSION:
            if strict:
                raise PersistenceError(
                    f"{path}: unsupported table version {doc.get('version')!r}"
                )
            return 0
        if doc.get("fingerprint") != self.fingerprint:
            if strict:
                raise PersistenceError(
                    f"{path}: fingerprint mismatch — table was measured under a "
                    "different pipeline config/seed; re-measure or delete it"
                )
            return 0
        loaded = 0
        for entry in doc.get("entries", ()):
            try:
                raw_key = entry["key"]
                key = (raw_key[0], raw_key[1], int(raw_key[2]), int(raw_key[3]))
                result = ThroughputResult(
                    ipc_a=float(entry["ipc_a"]),
                    ipc_b=float(entry["ipc_b"]),
                    decode_share_a=float(entry["decode_share_a"]),
                    decode_share_b=float(entry["decode_share_b"]),
                    cycles=int(entry["cycles"]),
                )
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise PersistenceError(
                    f"{path}: malformed table entry {entry!r}"
                ) from exc
            if key not in self._cache:
                self._cache[key] = result
                loaded += 1
        return loaded
