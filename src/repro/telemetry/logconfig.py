"""Stdlib-``logging`` integration: per-layer named loggers.

The package had no logging at all before the telemetry layer; this
module gives every layer one obvious way to get a logger
(``get_logger("service")`` -> ``repro.service``) and the CLI one
obvious knob (``--log-level`` -> :func:`configure_logging`).

By default nothing is configured — library code logs into the void
unless the application attaches a handler, exactly as stdlib intends.
:func:`configure_logging` attaches a single stream handler to the
``repro`` root logger (idempotently: calling it again only adjusts the
level), so worker exceptions, retries and spans become visible without
drowning pytest output by default.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

from repro.errors import ConfigurationError

__all__ = ["ROOT_LOGGER_NAME", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute identifying the handler this module installed.
_HANDLER_MARK = "_repro_telemetry_handler"


def get_logger(layer: str = "") -> logging.Logger:
    """The named logger of one layer: ``get_logger("mpi")`` ->
    ``repro.mpi``. Already-qualified names pass through unchanged."""
    if not layer:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if layer == ROOT_LOGGER_NAME or layer.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(layer)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{layer}")


def _coerce_level(level: Union[int, str]) -> int:
    if isinstance(level, int):
        return level
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ConfigurationError(f"unknown log level {level!r}")
    return numeric


def configure_logging(
    level: Union[int, str] = "INFO",
    stream: Optional[IO[str]] = None,
    fmt: str = _DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach (once) a stream handler to the ``repro`` root logger.

    Idempotent: a second call adjusts the level of the existing handler
    instead of stacking another one, so every entry point (CLI, serve,
    tests) can call it unconditionally.
    """
    numeric = _coerce_level(level)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(numeric)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            handler.setLevel(numeric)
            return root
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(numeric)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    return root
