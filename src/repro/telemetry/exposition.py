"""Prometheus text exposition (format version 0.0.4).

Renders one or more registries into the plain-text format Prometheus
scrapes: ``# HELP``/``# TYPE`` headers per family, one sample line per
leaf, histogram families expanded into cumulative ``_bucket{le=...}``
series plus ``_sum``/``_count``. Validated line-by-line against the
published format rules in ``tests/telemetry/test_exposition.py``.

When several registries are passed (the HTTP server concatenates the
service's own registry with the process default), the first occurrence
of a metric name wins — a name is never emitted twice, which the format
forbids.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.telemetry.metrics import Histogram, Metric
from repro.telemetry.registry import MetricRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The Content-Type a 0.0.4 text exposition must be served with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


def _render_metric(metric: Metric, lines: List[str]) -> None:
    if metric.help:
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    for leaf in metric.leaves():
        labels = dict(zip(leaf.labelnames, leaf.labelvalues))
        if isinstance(leaf, Histogram):
            for bound, count in leaf.bucket_counts():
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket{_label_str(bucket_labels)} {count}"
                )
            lines.append(
                f"{metric.name}_sum{_label_str(labels)} "
                f"{_format_value(leaf.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_label_str(labels)} {leaf.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_label_str(labels)} "
                f"{_format_value(leaf.value)}"
            )


def render_prometheus(*registries: MetricRegistry) -> str:
    """The text exposition of every metric across ``registries``."""
    lines: List[str] = []
    seen = set()
    for registry in registries:
        for metric in registry.metrics():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            _render_metric(metric, lines)
    return "\n".join(lines) + "\n" if lines else ""
