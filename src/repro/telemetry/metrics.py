"""Typed, thread-safe metric primitives: Counter, Gauge, Histogram.

Three instrument kinds cover every stats surface in the repo:

``Counter``
    A monotonically increasing total (jobs completed, cache hits,
    candidates evaluated). ``inc()`` only accepts non-negative amounts.
``Gauge``
    A value that goes both ways (queue depth, cache entries, bytes
    held). Either pushed with ``set()``/``inc()``/``dec()`` or pulled at
    collection time via ``set_function()`` — the pull form is how
    pre-existing accounting (``JobQueue.admitted``, ``LruCache.hits``)
    is exposed without adding a single instruction to its hot path.
``Histogram``
    A distribution over fixed, cumulative bucket boundaries (Prometheus
    semantics: bucket ``le=b`` counts observations ``<= b``). An
    optional bounded ``sample_window`` keeps the raw observations too,
    so JSON consumers that want exact percentiles (the service's
    ``/metrics`` document) are served from the same instrument.

Labelled families: construct with ``labelnames`` and obtain per-label
children with ``.labels(engine="fluid")``. Children are created on
first use and live for the family's lifetime.

Every mutation takes the instrument's own lock — totals are exact under
thread hammering (see ``tests/telemetry/test_metrics.py``). For code
that must be near-free when instrumentation is off, the discipline is
the same as ``RuntimeConfig.check_invariants``: hold ``None`` instead
of an instrument and pay one ``is None`` test per potential
observation.
"""

from __future__ import annotations

import bisect
import logging
import math
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "Timer",
    "span",
    "timer",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries, in seconds: sub-millisecond engine
#: runs up to minute-scale searches. Cumulative ``le`` semantics; an
#: implicit ``+Inf`` bucket always closes the list.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Metric:
    """Shared family/child machinery of the three instrument kinds.

    A metric constructed with ``labelnames`` is a *family*: it holds no
    value of its own and hands out per-label children via
    :meth:`labels`. One constructed without labels is directly usable.
    """

    kind: str = ""

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ConfigurationError(
                    f"metric {name!r}: invalid label name {label!r}"
                )
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        #: Set on children only; a family's own labelvalues stay empty.
        self.labelvalues: Tuple[str, ...] = ()
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "Metric"] = {}
        self._func: Optional[Callable[[], float]] = None

    # -- family/child plumbing -------------------------------------------------

    @property
    def is_family(self) -> bool:
        return bool(self.labelnames) and not self.labelvalues

    def _check_leaf(self) -> None:
        if self.is_family:
            raise ConfigurationError(
                f"metric {self.name!r} is a labelled family; select a child "
                f"with .labels({', '.join(self.labelnames)})"
            )

    def _child_kwargs(self) -> dict:
        """Construction kwargs a child must inherit (buckets etc.)."""
        return {}

    def labels(self, *values: object, **labelkv: object) -> "Metric":
        """The child for one label-value combination (created on first use)."""
        if not self.labelnames:
            raise ConfigurationError(f"metric {self.name!r} has no labels")
        if self.labelvalues:
            raise ConfigurationError(
                f"metric {self.name!r}: labels() on an already-labelled child"
            )
        if labelkv:
            if values:
                raise ConfigurationError(
                    f"metric {self.name!r}: pass labels positionally or by "
                    "keyword, not both"
                )
            unknown = set(labelkv) - set(self.labelnames)
            if unknown:
                raise ConfigurationError(
                    f"metric {self.name!r}: unknown labels {sorted(unknown)}"
                )
            try:
                values = tuple(labelkv[name] for name in self.labelnames)
            except KeyError as exc:
                raise ConfigurationError(
                    f"metric {self.name!r}: missing label {exc.args[0]!r}"
                ) from None
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} needs {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(key)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(
                    self.name,
                    self.help,
                    labelnames=self.labelnames,
                    **self._child_kwargs(),
                )
                child.labelvalues = key
                self._children[key] = child
            return child

    def children(self) -> List["Metric"]:
        """All live children, sorted by label values (empty for leaves)."""
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]

    def leaves(self) -> List["Metric"]:
        """The sample-bearing instruments: children of a family, else self."""
        return self.children() if self.is_family else [self]

    def set_function(self, fn: Callable[[], float]) -> "Metric":
        """Pull the value from ``fn()`` at collection time instead of
        pushing. Existing accounting (plain ints under the owner's own
        lock) gets exposed with zero hot-path cost this way."""
        self._check_leaf()
        self._func = fn
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = dict(zip(self.labelnames, self.labelvalues))
        return f"{type(self).__name__}({self.name!r}, labels={labels})"


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} can only increase (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._func is not None:
            return float(self._func())
        with self._lock:
            return self._value


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._check_leaf()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._func is not None:
            return float(self._func())
        with self._lock:
            return self._value


class Histogram(Metric):
    """A distribution over fixed cumulative bucket boundaries.

    ``sample_window > 0`` additionally keeps the most recent raw
    observations in a bounded deque, so consumers that need exact
    percentiles (the service's JSON metrics document) read them off the
    same instrument that feeds the Prometheus buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        sample_window: int = 0,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets if not math.isinf(float(b)))
        if not bounds:
            raise ConfigurationError(
                f"histogram {self.name!r} needs at least one finite bucket"
            )
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {self.name!r}: buckets must strictly increase, "
                f"got {bounds}"
            )
        if sample_window < 0:
            raise ConfigurationError(
                f"histogram {self.name!r}: sample_window must be >= 0"
            )
        self.buckets: Tuple[float, ...] = bounds
        self.sample_window = int(sample_window)
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._window: Optional[deque] = (
            deque(maxlen=self.sample_window) if self.sample_window else None
        )

    def _child_kwargs(self) -> dict:
        return {"buckets": self.buckets, "sample_window": self.sample_window}

    def observe(self, value: float) -> None:
        self._check_leaf()
        v = float(value)
        with self._lock:
            self._count += 1
            self._sum += v
            self._counts[bisect.bisect_left(self.buckets, v)] += 1
            if self._window is not None:
                self._window.append(v)

    def time(self) -> "Timer":
        """``with hist.time():`` — observe the block's wall seconds."""
        self._check_leaf()
        return Timer(self.observe)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def samples(self) -> List[float]:
        """Copy of the raw-sample window (empty when ``sample_window=0``)."""
        with self._lock:
            return list(self._window) if self._window is not None else []

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, self._count))
            return out


class Timer:
    """Context manager that measures wall seconds with ``perf_counter``.

    ``elapsed`` holds the measured duration after exit; an optional
    callback (a histogram's ``observe``) receives it automatically.
    """

    __slots__ = ("elapsed", "_callback", "_t0")

    def __init__(self, callback: Optional[Callable[[float], None]] = None) -> None:
        self.elapsed = 0.0
        self._callback = callback
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._t0
        if self._callback is not None:
            self._callback(self.elapsed)


def timer(histogram: Optional[Histogram] = None) -> Timer:
    """A :class:`Timer`, optionally feeding ``histogram`` on exit."""
    return Timer(histogram.observe if histogram is not None else None)


@contextmanager
def span(
    name: str,
    histogram: Optional[Histogram] = None,
    logger: Optional[logging.Logger] = None,
    level: int = logging.DEBUG,
) -> Iterator[Timer]:
    """Time a named block; observe it and/or log it on the way out.

    The logging side is lazy — when the logger (default
    ``repro.telemetry``) has the level disabled, the only cost beyond
    the timer is one ``isEnabledFor`` check.
    """
    t = Timer(histogram.observe if histogram is not None else None)
    with t:
        yield t
    log = logger if logger is not None else logging.getLogger("repro.telemetry")
    if log.isEnabledFor(level):
        log.log(level, "span %s: %.6fs", name, t.elapsed)
