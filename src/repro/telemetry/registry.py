"""The metric registry: one namespace of typed instruments.

A :class:`MetricRegistry` is a thread-safe, get-or-create map from
metric name to instrument. Layers ask the registry for their
instruments (``registry.counter("repro_search_evaluations_total")``)
instead of inventing private dicts — asking twice returns the same
object, asking with a conflicting kind or label set raises.

There is one **process-global default registry**
(:func:`default_registry`) that module-level instrumentation points
(engines, search, the MPI runtime) report into, and every component
that meaningfully owns its own lifecycle (a :class:`ScenarioService`)
takes an explicit registry so tests get clean-room accounting without
global resets.

The :func:`enabled`/:func:`set_enabled` switch gates the *hot-path*
instrumentation points (the MPI runtime's per-run phase timing): when
off — the default, overridable with ``REPRO_TELEMETRY=1`` in the
environment — those code paths hold ``None`` instead of instruments
and pay a single ``is None`` test, the same discipline as
``RuntimeConfig.check_invariants``. Low-frequency points (one event
per job, per search, per engine run) are always on.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
)

__all__ = [
    "MetricRegistry",
    "default_registry",
    "set_default_registry",
    "enabled",
    "set_enabled",
]


class MetricRegistry:
    """A named, typed, thread-safe collection of instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- get-or-create ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        sample_window: int = 0,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames,
            buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
            sample_window=sample_window,
        )

    # -- introspection ---------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def snapshot(self) -> dict:
        """JSON-able dump: name -> kind/help/samples.

        Pull-based instruments (``set_function``) are evaluated here,
        outside the registry lock, so collection can never deadlock
        against an owner's lock taken in its value callback.
        """
        out: dict = {}
        for metric in self.metrics():
            samples = []
            for leaf in metric.leaves():
                labels = dict(zip(leaf.labelnames, leaf.labelvalues))
                if isinstance(leaf, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": leaf.count,
                        "sum": leaf.sum,
                        "buckets": {
                            ("+Inf" if bound == float("inf") else repr(bound)): n
                            for bound, n in leaf.bucket_counts()
                        },
                    })
                else:
                    samples.append({"labels": labels, "value": leaf.value})
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out


# -- process-global default --------------------------------------------------

_default_lock = threading.Lock()
_default_registry = MetricRegistry()


def default_registry() -> MetricRegistry:
    """The process-global registry module-level instruments report into."""
    return _default_registry


def set_default_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-global registry (tests); returns the previous one.

    Instruments already created keep pointing at the old registry —
    only *future* ``default_registry()`` lookups see the new one.
    """
    global _default_registry
    if not isinstance(registry, MetricRegistry):
        raise ConfigurationError("set_default_registry needs a MetricRegistry")
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


# -- the hot-path gate --------------------------------------------------------

_enabled = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
    "1", "true", "yes", "on"
)


def enabled() -> bool:
    """Whether hot-path instrumentation points should attach instruments."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip the hot-path gate; returns the previous state.

    Takes effect for objects constructed *after* the call (the runtime
    checks once, at construction — exactly like ``check_invariants``).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous
