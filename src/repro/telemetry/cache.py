"""Cache accounting: the shared :class:`CacheStats` snapshot type and
the registry binding that exposes any cache through it.

:class:`CacheStats` used to live in ``repro.util.memo`` next to
:class:`~repro.util.memo.LruCache`; it is the *reporting* half of cache
accounting, so it now lives with the rest of the telemetry layer and is
re-exported from its old home for compatibility.

:func:`register_cache_metrics` is the pull-based bridge: the cache
itself keeps counting with plain ints (zero new hot-path cost), and a
set of ``set_function`` instruments read a :class:`CacheStats` snapshot
only when somebody actually collects metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricRegistry

__all__ = ["CacheStats", "register_cache_metrics"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's accounting."""

    hits: int
    misses: int
    size: int
    max_size: int
    #: Total weight of the stored entries, as measured by the cache's
    #: ``sizeof`` weigher; 0 for unweighed caches.
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            size=self.size + other.size,
            max_size=self.max_size + other.max_size,
            bytes=self.bytes + other.bytes,
        )


def register_cache_metrics(
    registry: "MetricRegistry",
    cache: str,
    stats_fn: Callable[[], CacheStats],
    namespace: str = "repro_cache",
) -> None:
    """Expose ``stats_fn()`` as pull-based instruments labelled by cache.

    Creates (or reuses) one labelled family per statistic under
    ``namespace`` — ``<namespace>_hits_total{cache="..."}`` and so on —
    and binds this cache's child samples to ``stats_fn``, which is only
    invoked at collection time. Re-registering the same cache name
    rebinds it (the previous ``stats_fn`` is replaced), so re-created
    owners (a fresh model behind the same label) stay collectable.
    """
    registry.counter(
        f"{namespace}_hits_total", "Cache lookups served from the cache.",
        labelnames=("cache",),
    ).labels(cache).set_function(lambda: stats_fn().hits)
    registry.counter(
        f"{namespace}_misses_total", "Cache lookups that missed.",
        labelnames=("cache",),
    ).labels(cache).set_function(lambda: stats_fn().misses)
    registry.gauge(
        f"{namespace}_entries", "Entries currently stored.",
        labelnames=("cache",),
    ).labels(cache).set_function(lambda: stats_fn().size)
    registry.gauge(
        f"{namespace}_bytes", "Total weighed payload bytes held (0 if unweighed).",
        labelnames=("cache",),
    ).labels(cache).set_function(lambda: stats_fn().bytes)
