"""Typed telemetry layer: one substrate every stats surface reports into.

The four ad-hoc accounting schemes that used to live in the service
executor, the analytic model's cache stats, ``core.search`` and the
engines now share one vocabulary:

- **Instruments** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` (``repro.telemetry.metrics``), with labelled
  children and pull-based ``set_function`` bindings.
- **Registry** — :class:`MetricRegistry` name-spaces instruments;
  :func:`default_registry` is the process-global one module-level
  points report into, explicit registries give tests clean-room
  accounting.
- **Exposition** — :func:`render_prometheus` emits the 0.0.4 text
  format served by ``GET /metrics``; ``MetricRegistry.snapshot()`` is
  the JSON form.
- **Timing** — :func:`timer` / :func:`span` context managers.
- **Logging** — :func:`get_logger` / :func:`configure_logging` wire the
  per-layer ``repro.*`` loggers.

This package is a strict leaf: it imports only the stdlib and
``repro.errors`` (enforced by ``tools/check_layering.py``), so every
other layer may depend on it. See ``docs/observability.md``.
"""

from repro.telemetry.cache import CacheStats, register_cache_metrics
from repro.telemetry.exposition import CONTENT_TYPE, render_prometheus
from repro.telemetry.logconfig import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    Timer,
    span,
    timer,
)
from repro.telemetry.registry import (
    MetricRegistry,
    default_registry,
    enabled,
    set_default_registry,
    set_enabled,
)

__all__ = [
    "CONTENT_TYPE",
    "CacheStats",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "ROOT_LOGGER_NAME",
    "Timer",
    "configure_logging",
    "default_registry",
    "enabled",
    "get_logger",
    "register_cache_metrics",
    "render_prometheus",
    "set_default_registry",
    "set_enabled",
    "span",
    "timer",
]
