"""The service layer's request/outcome language.

A :class:`JobSpec` is a thin wire envelope around one simulation
request — either a canonical :class:`~repro.scenarios.ScenarioSpec`
(the declarative, fingerprintable form) or one of the paper suites' named
cases (``metbench``/``btmz``/``siesta`` + ``A``..``D``/``ST``) — plus the
options that change its physics (throughput model, invariant checking)
and the options that only change its handling (lane, timeout, deadline,
retries). The split matters: :attr:`JobSpec.fingerprint` hashes exactly
the physics-determining fields (via the shared
:mod:`repro.util.fingerprint` canonical form), so two requests that must
produce bit-identical traces share a cache key no matter how they were
queued — and the key lives in the same namespace as golden-trace keys,
because a scenario-kind envelope embeds the scenario's own fingerprint.

A :class:`Job` is one submission's lifecycle (queued → running → done /
failed / cancelled, with timestamps and attempt accounting); a
:class:`JobResult` is the immutable outcome: the run's sha256 trace
digest, the paper's two metrics, and the per-rank state breakdown — the
same provenance a golden-trace snapshot pins.
"""

from __future__ import annotations

import enum
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.mpi.runtime import RunResult
from repro.scenarios.engines import ExecutionResult, trace_digest
from repro.scenarios.registry import engine_for_model
from repro.scenarios.spec import ScenarioSpec
from repro.util.fingerprint import fingerprint_doc
from repro.util.validation import check_choice, check_positive

__all__ = [
    "JobState",
    "RetryPolicy",
    "JobSpec",
    "JobResult",
    "Job",
    "SUITES",
    "LANES",
]

#: Paper suites a case-kind spec may name (mirrors the CLI's `case` command).
SUITES = ("metbench", "btmz", "siesta")

#: Priority lanes, highest first: interactive requests overtake batch
#: sweeps at every dequeue, FIFO within a lane.
LANES = ("interactive", "batch")

_MODELS = ("analytic", "cycle")


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient worker failures.

    Attempt *n* (0-based) that fails transiently is retried after
    ``base_s * multiplier**n`` seconds, capped at ``max_backoff_s``,
    for at most ``max_retries`` retries. Deterministic failures
    (configuration errors) are never retried.
    """

    max_retries: int = 2
    base_s: float = 0.1
    multiplier: float = 2.0
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_positive("retry.base_s", self.base_s)
        check_positive("retry.multiplier", self.multiplier)
        check_positive("retry.max_backoff_s", self.max_backoff_s)

    def delay(self, attempt: int) -> float:
        """Backoff before the retry that follows failed attempt ``attempt``."""
        return min(self.base_s * self.multiplier ** max(attempt, 0),
                   self.max_backoff_s)


@dataclass(frozen=True)
class JobSpec:
    """One simulation request.

    Exactly one of ``scenario`` (oracle form) or ``suite``+``case``
    (paper-case form) must be given. ``model``/``check_invariants``
    change the physics provenance and are part of the fingerprint;
    ``lane``/``timeout_s``/``deadline_s``/``max_retries`` only shape
    scheduling and are not.
    """

    scenario: Optional[ScenarioSpec] = None
    suite: Optional[str] = None
    case: Optional[str] = None
    iterations: Optional[int] = None
    model: str = "analytic"
    check_invariants: bool = False
    lane: str = "batch"
    #: Per-attempt wall-clock limit; None = the service default.
    timeout_s: Optional[float] = None
    #: Total budget from submission (queue wait + all attempts included).
    deadline_s: Optional[float] = None
    #: None = the service's default retry count for transient failures.
    max_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.suite is None):
            raise ConfigurationError(
                "a JobSpec needs exactly one of scenario= or suite=/case="
            )
        if self.suite is not None:
            check_choice("spec.suite", self.suite, SUITES)
            if not self.case:
                raise ConfigurationError("suite-kind specs need a case name")
            if self.iterations is not None:
                check_positive("spec.iterations", self.iterations)
        elif self.iterations is not None:
            raise ConfigurationError(
                "iterations only applies to suite-kind specs "
                "(scenario carries its own)"
            )
        check_choice("spec.model", self.model, _MODELS)
        check_choice("spec.lane", self.lane, LANES)
        if self.timeout_s is not None:
            check_positive("spec.timeout_s", self.timeout_s)
        if self.deadline_s is not None:
            check_positive("spec.deadline_s", self.deadline_s)
        if self.max_retries is not None and self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def kind(self) -> str:
        return "scenario" if self.scenario is not None else "case"

    @property
    def engine(self) -> str:
        """The registered engine that realises this request's model knob."""
        return engine_for_model(self.model)

    @property
    def label(self) -> str:
        if self.scenario is not None:
            return f"scenario.{self.scenario.name}"
        return f"{self.suite}.{self.case}"

    # -- content address -------------------------------------------------------

    def physics_doc(self) -> dict:
        """The canonical form of everything that determines the result."""
        doc: dict = {"model": self.model,
                     "check_invariants": self.check_invariants}
        if self.scenario is not None:
            # The scenario's own sha256 fingerprint is its content
            # address; reusing it keeps service cache keys and
            # golden-trace keys in one namespace.
            doc["scenario_fingerprint"] = self.scenario.fingerprint
        else:
            doc["suite"] = self.suite
            doc["case"] = self.case
            doc["iterations"] = self.iterations
        return doc

    @property
    def fingerprint(self) -> str:
        """sha256 content address of the request's physics.

        Memoised (the spec is frozen): the cache claims it at
        submission, the settle path and the result all reuse it.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_doc(self.physics_doc())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> dict:
        doc: dict = {
            "model": self.model,
            "check_invariants": self.check_invariants,
            "lane": self.lane,
        }
        if self.scenario is not None:
            doc["scenario"] = self.scenario.to_doc()
        else:
            doc["suite"] = self.suite
            doc["case"] = self.case
            if self.iterations is not None:
                doc["iterations"] = self.iterations
        for key in ("timeout_s", "deadline_s", "max_retries"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    @classmethod
    def from_doc(cls, doc: object) -> "JobSpec":
        if not isinstance(doc, dict):
            raise ServiceError(f"job spec must be a JSON object, got {doc!r}")
        unknown = set(doc) - {
            "scenario", "suite", "case", "iterations", "model",
            "check_invariants", "lane", "timeout_s", "deadline_s",
            "max_retries",
        }
        if unknown:
            raise ServiceError(f"unknown job spec fields: {sorted(unknown)}")
        scenario = None
        if doc.get("scenario") is not None:
            # Strict: unknown/missing scenario fields raise the typed
            # ValidationError (a ReproError, so the HTTP layer's 400
            # mapping still applies).
            scenario = ScenarioSpec.from_doc(doc["scenario"])
        try:
            return cls(
                scenario=scenario,
                suite=doc.get("suite"),
                case=str(doc["case"]).upper() if doc.get("case") else None,
                iterations=(int(doc["iterations"])
                            if doc.get("iterations") is not None else None),
                model=str(doc.get("model", "analytic")),
                check_invariants=bool(doc.get("check_invariants", False)),
                lane=str(doc.get("lane", "batch")),
                timeout_s=(float(doc["timeout_s"])
                           if doc.get("timeout_s") is not None else None),
                deadline_s=(float(doc["deadline_s"])
                            if doc.get("deadline_s") is not None else None),
                max_retries=(int(doc["max_retries"])
                             if doc.get("max_retries") is not None else None),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from exc


@dataclass(frozen=True)
class JobResult:
    """The immutable outcome of one executed spec, with full provenance."""

    fingerprint: str
    digest: str
    label: str
    model: str
    total_time: float
    imbalance_percent: float
    events_processed: int
    final_priorities: Tuple[int, ...]
    ranks: Tuple[dict, ...]
    #: Wall-clock seconds the simulation itself took on the worker.
    compute_seconds: float

    @classmethod
    def from_execution(cls, spec: JobSpec, result: ExecutionResult) -> "JobResult":
        """Adopt an engine's :class:`~repro.scenarios.ExecutionResult`."""
        if result.digest is None or result.imbalance_percent is None:
            raise ServiceError(
                f"engine {result.engine!r} produced no trace; the service "
                "serves trace-producing engines only"
            )
        return cls(
            fingerprint=spec.fingerprint,
            digest=result.digest,
            label=result.label,
            model=spec.model,
            total_time=result.total_time,
            imbalance_percent=result.imbalance_percent,
            events_processed=result.events_processed,
            final_priorities=result.final_priorities,
            ranks=result.ranks,
            compute_seconds=result.compute_seconds,
        )

    @classmethod
    def from_run(
        cls, spec: JobSpec, run: RunResult, compute_seconds: float
    ) -> "JobResult":
        return cls(
            fingerprint=spec.fingerprint,
            digest=trace_digest(run),
            label=run.label,
            model=spec.model,
            total_time=run.total_time,
            imbalance_percent=run.imbalance_percent,
            events_processed=run.events_processed,
            final_priorities=tuple(int(p) for p in run.final_priorities),
            ranks=tuple(
                {
                    "rank": r.rank,
                    "compute": r.compute_fraction,
                    "sync": r.sync_fraction,
                    "comm": r.comm_fraction,
                    "noise": r.noise_fraction,
                    "idle": r.idle_fraction,
                }
                for r in run.stats.ranks
            ),
            compute_seconds=compute_seconds,
        )

    def to_doc(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "digest": self.digest,
            "label": self.label,
            "model": self.model,
            "total_time": self.total_time,
            "imbalance_percent": self.imbalance_percent,
            "events_processed": self.events_processed,
            "final_priorities": list(self.final_priorities),
            "ranks": [dict(r) for r in self.ranks],
            "compute_seconds": self.compute_seconds,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "JobResult":
        try:
            return cls(
                fingerprint=str(doc["fingerprint"]),
                digest=str(doc["digest"]),
                label=str(doc.get("label", "")),
                model=str(doc.get("model", "analytic")),
                total_time=float(doc["total_time"]),
                imbalance_percent=float(doc["imbalance_percent"]),
                events_processed=int(doc["events_processed"]),
                final_priorities=tuple(
                    int(p) for p in doc.get("final_priorities", ())
                ),
                ranks=tuple(dict(r) for r in doc.get("ranks", ())),
                compute_seconds=float(doc.get("compute_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job result: {exc}") from exc


@dataclass
class Job:
    """One submission's lifecycle. Mutated only by the service (under its
    lock); readers get consistent snapshots via :meth:`to_doc`."""

    spec: JobSpec
    id: str = field(default_factory=lambda: f"job-{uuid.uuid4().hex[:12]}")
    state: JobState = JobState.QUEUED
    #: Wall-clock timestamps, for user-facing reporting only. All
    #: duration and deadline arithmetic runs on the monotonic pair
    #: below, so a wall-clock step (NTP, DST) cannot corrupt latency
    #: samples or per-attempt budgets.
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    submitted_mono: float = field(default_factory=time.monotonic, repr=False)
    finished_mono: Optional[float] = field(default=None, repr=False)
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[JobResult] = None
    #: How the result was obtained: "computed", "cache" (hit on a stored
    #: result) or "coalesced" (shared an in-flight computation).
    source: str = "computed"
    #: Signalled exactly once, on reaching a terminal state.
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def latency_s(self) -> Optional[float]:
        """Submission-to-terminal duration; None while in flight.

        Measured on the monotonic clock, so it is immune to wall-clock
        steps between submission and completion.
        """
        if self.finished_mono is None:
            return None
        return self.finished_mono - self.submitted_mono

    def deadline_remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Monotonic seconds left in the total budget; None if unbounded."""
        if self.spec.deadline_s is None:
            return None
        now_mono = time.monotonic() if now is None else now
        return self.submitted_mono + self.spec.deadline_s - now_mono

    def deadline_exceeded(self, now: Optional[float] = None) -> bool:
        """``now``, when given, is a ``time.monotonic()`` reading."""
        remaining = self.deadline_remaining(now)
        return remaining is not None and remaining < 0.0

    def finish(
        self,
        state: JobState,
        result: Optional[JobResult] = None,
        error: Optional[str] = None,
        source: str = "computed",
    ) -> None:
        """Move to a terminal state and wake every waiter."""
        if not state.terminal:
            raise ServiceError(f"finish() needs a terminal state, got {state}")
        self.state = state
        self.result = result
        self.error = error
        self.source = source
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
        self.done.set()

    def to_doc(self) -> dict:
        doc: dict = {
            "id": self.id,
            "state": self.state.value,
            "spec": self.spec.to_doc(),
            "fingerprint": self.spec.fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "source": self.source,
        }
        if self.latency_s is not None:
            doc["latency_s"] = self.latency_s
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result"] = self.result.to_doc()
        return doc


def jobs_by_state(jobs: List[Job]) -> Dict[str, int]:
    """State-name -> count, every state present (zeroes included)."""
    counts = {state.value: 0 for state in JobState}
    for job in jobs:
        counts[job.state.value] += 1
    return counts
