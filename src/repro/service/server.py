"""Stdlib-only HTTP JSON API in front of a :class:`ScenarioService`.

Endpoints
---------
``POST /v1/jobs``
    Body: a :class:`~repro.service.jobs.JobSpec` document. Returns 200
    with the job document when it completed immediately (cache hit), 202
    while queued/running/coalesced, 400 on a malformed spec, and 429
    with a ``Retry-After`` header when the queue exerts backpressure.
    ``?wait=<seconds>`` blocks up to that long for completion first.
``POST /v1/jobs:batch``
    Body: ``{"jobs": [<spec>, ...]}``. Admits every entry independently
    and returns one entry per input in order (job document, or an
    ``error`` object for rejected entries). 200 when all admitted, 207
    on a mix, 400 for a malformed envelope. Queued entries that share an
    engine are candidates for worker-side batch coalescing.
    ``?wait=<seconds>`` blocks for the admitted set collectively.
``GET /v1/jobs/<id>``
    The job document (result embedded once done); 404 for unknown ids.
``DELETE /v1/jobs/<id>``
    Cancel a queued job; returns its document.
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` while admissions are open.
``GET /metrics``
    Content-negotiated. Default: the JSON document (queue depth,
    per-state job counts, cache accounting, latency percentiles — what
    ``repro cache info --service`` renders). With ``Accept:
    text/plain`` / ``application/openmetrics-text`` or
    ``?format=prometheus``: the Prometheus 0.0.4 text exposition of the
    service's registry plus the process-default registry (engine and
    runtime instruments). See ``docs/observability.md``.

Uses :class:`http.server.ThreadingHTTPServer`, so slow pollers never
block submissions; the simulation concurrency bound stays the service's
worker pool, not the HTTP layer.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    QueueFullError,
    ReproError,
    ServiceError,
    UnknownJobError,
)
from repro.service.executor import ScenarioService
from repro.service.jobs import Job, JobSpec
from repro.telemetry import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    default_registry,
    render_prometheus,
)

__all__ = ["make_server", "serve"]

#: Cap on ?wait= so a client cannot pin an HTTP thread forever.
MAX_WAIT_S = 600.0


def _make_handler(service: ScenarioService, quiet: bool = True):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # -- plumbing ---------------------------------------------------------

        def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send_json(
            self,
            status: int,
            doc: dict,
            headers: Optional[dict] = None,
        ) -> None:
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _error(
            self, status: int, message: str, headers: Optional[dict] = None
        ) -> None:
            self._send_json(status, {"error": message}, headers=headers)

        def _route(self) -> Tuple[str, dict]:
            parsed = urlparse(self.path)
            return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

        def _wants_prometheus(self, query: dict) -> bool:
            """Content negotiation for /metrics: JSON stays the default
            (existing consumers and tests); Prometheus text is chosen by
            ``?format=prometheus`` or an Accept header preferring
            text/plain or the OpenMetrics type."""
            fmt = query.get("format", [None])[0]
            if fmt is not None:
                return fmt.lower() in ("prometheus", "text", "openmetrics")
            accept = (self.headers.get("Accept") or "").lower()
            return (
                "text/plain" in accept
                or "application/openmetrics-text" in accept
            )

        # -- GET --------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — stdlib handler API
            path, _query = self._route()
            if path == "/healthz":
                queue = service.queue.stats()
                status = "ok" if not queue["closed"] else "shutting-down"
                self._send_json(
                    200 if status == "ok" else 503,
                    {
                        "status": status,
                        "workers": service.config.workers,
                        "queue_depth": queue["depth"],
                    },
                )
                return
            if path == "/metrics":
                if self._wants_prometheus(_query):
                    text = render_prometheus(
                        service.registry, default_registry()
                    )
                    payload = text.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(payload)))
                    self.end_headers()
                    self.wfile.write(payload)
                    return
                self._send_json(200, service.metrics())
                return
            if path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/"):]
                try:
                    job = service.get(job_id)
                except UnknownJobError as exc:
                    self._error(404, str(exc))
                    return
                self._send_json(200, job.to_doc())
                return
            self._error(404, f"no route for GET {path}")

        # -- POST -------------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 — stdlib handler API
            path, query = self._route()
            if path == "/v1/jobs:batch":
                self._post_jobs_batch(query)
                return
            if path != "/v1/jobs":
                self._error(404, f"no route for POST {path}")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length) if length else b""
                doc = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as exc:
                self._error(400, f"unreadable JSON body: {exc}")
                return
            try:
                spec = JobSpec.from_doc(doc)
            except ReproError as exc:
                self._error(400, str(exc))
                return
            try:
                job = service.submit(spec)
            except QueueFullError as exc:
                self._error(
                    429,
                    str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5))},
                )
                return
            except ServiceError as exc:
                self._error(503, str(exc))
                return
            wait_raw = query.get("wait", [None])[0]
            if wait_raw is not None:
                try:
                    wait_s = min(float(wait_raw), MAX_WAIT_S)
                except ValueError:
                    self._error(400, f"bad wait value {wait_raw!r}")
                    return
                job = service.wait(job.id, timeout=wait_s)
            self._send_json(
                200 if job.state.terminal else 202, job.to_doc()
            )

        def _post_jobs_batch(self, query: dict) -> None:
            """Bulk submit: ``{"jobs": [<spec>, ...]}``.

            Every entry is admitted independently (same path as
            ``POST /v1/jobs``, so cache hits, coalescing, and queue
            backpressure apply per entry); the response carries one
            entry per input in order — a job document, or an ``error``
            object for entries that failed admission. 200 when all
            admitted, 207 on a mix, 400 when the envelope itself is
            malformed. ``?wait=<seconds>`` blocks up to that long for
            the admitted jobs collectively.
            """
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length) if length else b""
                doc = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as exc:
                self._error(400, f"unreadable JSON body: {exc}")
                return
            if not isinstance(doc, dict) or not isinstance(
                doc.get("jobs"), list
            ):
                self._error(
                    400, 'batch body must be {"jobs": [<job spec>, ...]}'
                )
                return
            wait_raw = query.get("wait", [None])[0]
            wait_s = None
            if wait_raw is not None:
                try:
                    wait_s = min(float(wait_raw), MAX_WAIT_S)
                except ValueError:
                    self._error(400, f"bad wait value {wait_raw!r}")
                    return
            entries = []
            jobs = []
            errors = 0
            for item in doc["jobs"]:
                try:
                    spec = JobSpec.from_doc(item)
                    job = service.submit(spec)
                except QueueFullError as exc:
                    errors += 1
                    entries.append({
                        "error": str(exc),
                        "retry_after_s": exc.retry_after,
                    })
                    continue
                except (ReproError, ServiceError) as exc:
                    errors += 1
                    entries.append({"error": str(exc)})
                    continue
                jobs.append(job)
                entries.append(job)
            if wait_s is not None and jobs:
                deadline = time.monotonic() + wait_s
                for job in jobs:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    service.wait(job.id, timeout=remaining)
            out = [
                entry.to_doc() if isinstance(entry, Job) else entry
                for entry in entries
            ]
            status = 200 if errors == 0 else 207
            self._send_json(
                status,
                {
                    "jobs": out,
                    "submitted": len(jobs),
                    "errors": errors,
                },
            )

        # -- DELETE -----------------------------------------------------------

        def do_DELETE(self) -> None:  # noqa: N802 — stdlib handler API
            path, _query = self._route()
            if not path.startswith("/v1/jobs/"):
                self._error(404, f"no route for DELETE {path}")
                return
            try:
                job = service.cancel(path[len("/v1/jobs/"):])
            except UnknownJobError as exc:
                self._error(404, str(exc))
                return
            self._send_json(200, job.to_doc())

    return Handler


def make_server(
    service: ScenarioService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A bound (but not yet serving) HTTP server; ``port=0`` picks a free
    port (``server.server_address`` reports the real one)."""
    server = ThreadingHTTPServer(
        (host, port), _make_handler(service, quiet=quiet)
    )
    server.daemon_threads = True
    return server


def serve(
    service: ScenarioService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> None:
    """Serve until interrupted; shuts the service down cleanly after."""
    server = make_server(service, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"({service.config.workers} workers, "
          f"queue depth {service.config.queue_depth})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("repro serve: shutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
