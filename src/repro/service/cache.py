"""Content-addressed result cache with in-flight request coalescing.

Results are keyed by :attr:`JobSpec.fingerprint` — a sha256 over the
physics-determining fields of the request, which for scenario-kind specs
embeds the oracle layer's own scenario fingerprint
(:attr:`~repro.oracle.differential.Scenario.fingerprint`). The simulator
is deterministic, so a fingerprint names exactly one trace digest and a
stored :class:`~repro.service.jobs.JobResult` can be served forever
(bounded by LRU eviction, not TTL).

Coalescing closes the stampede window the store-after-compute pattern
leaves open: the first submission of a fingerprint becomes the *leader*
and actually runs; submissions of the same fingerprint that arrive while
it is in flight register as *followers* and are fulfilled by the
leader's single result — N identical concurrent requests cost one
simulation and one queue slot.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.service.jobs import Job, JobResult
from repro.util.memo import LruCache

__all__ = ["InFlight", "ResultCache"]


def _result_weight(result: JobResult) -> int:
    """Approximate stored payload size: the serialised JSON byte count."""
    return len(json.dumps(result.to_doc(), sort_keys=True).encode("utf-8"))


@dataclass
class InFlight:
    """One fingerprint currently being computed, plus its followers."""

    leader: Job
    followers: List[Job] = field(default_factory=list)


class ResultCache:
    """Thread-safe LRU of :class:`JobResult` + the in-flight registry."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self._lock = threading.RLock()
        self._lru: LruCache[JobResult] = LruCache(
            max_size=max_entries, sizeof=_result_weight
        )
        self._inflight: Dict[str, InFlight] = {}
        self.coalesced = 0
        self.inserts = 0

    # -- stored results --------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[JobResult]:
        with self._lock:
            return self._lru.get(fingerprint)

    def put(self, fingerprint: str, result: JobResult) -> None:
        with self._lock:
            self._lru.put(fingerprint, result)
            self.inserts += 1

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()

    # -- in-flight coalescing --------------------------------------------------

    def claim(self, job: Job) -> Tuple[str, Optional[JobResult]]:
        """Atomically route a submission by its fingerprint.

        Returns ``("cache", result)`` when the result is already stored,
        ``("leader", None)`` when ``job`` must run it (and the flight is
        now registered), or ``("follower", None)`` when it was attached
        to an identical in-flight computation. Atomic under the cache
        lock, so the lookup can never race a leader's settle into a
        duplicate run of a just-stored fingerprint.
        """
        fp = job.spec.fingerprint
        with self._lock:
            hit = self._lru.get(fp)
            if hit is not None:
                return "cache", hit
            entry = self._inflight.get(fp)
            if entry is None:
                self._inflight[fp] = InFlight(leader=job)
                return "leader", None
            entry.followers.append(job)
            self.coalesced += 1
            return "follower", None

    def settle(
        self, fingerprint: str, result: Optional[JobResult]
    ) -> Tuple[Job, List[Job]]:
        """Close a fingerprint's flight, storing ``result`` if successful.

        Returns ``(leader, followers)`` so the executor can move every
        attached job to its terminal state (shared result on success,
        shared error on failure — a follower never silently re-runs).
        """
        with self._lock:
            entry = self._inflight.pop(fingerprint, None)
            if entry is None:
                raise ConfigurationError(
                    f"settle() of a fingerprint not in flight: {fingerprint!r}"
                )
            if result is not None:
                self._lru.put(fingerprint, result)
                self.inserts += 1
            return entry.leader, entry.followers

    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- accounting ------------------------------------------------------------

    def bind_telemetry(self, registry) -> None:
        """Expose the result cache through pull-based instruments: the
        standard cache family (labelled ``cache="results"``) plus the
        coalescing counters this cache uniquely has."""
        from repro.telemetry import register_cache_metrics

        register_cache_metrics(
            registry, "results", lambda: self._lru.stats()
        )
        registry.counter(
            "repro_cache_coalesced_total",
            "Submissions attached to an identical in-flight computation.",
        ).set_function(lambda: self.coalesced)
        registry.counter(
            "repro_cache_inserts_total", "Results stored into the cache."
        ).set_function(lambda: self.inserts)
        registry.gauge(
            "repro_cache_in_flight", "Fingerprints currently being computed."
        ).set_function(self.in_flight)

    def stats(self) -> dict:
        """Cache accounting in the shape ``repro cache info`` reports."""
        with self._lock:
            st = self._lru.stats()
            return {
                "entries": st.size,
                "max_entries": st.max_size,
                "bytes": st.bytes,
                "hits": st.hits,
                "misses": st.misses,
                "hit_rate": st.hit_rate,
                "coalesced": self.coalesced,
                "inserts": self.inserts,
                "in_flight": len(self._inflight),
            }
