"""Bounded job queue with priority lanes and explicit backpressure.

Admission control happens here, at the front door: the queue holds at
most ``max_depth`` jobs across all lanes, and a submission past that
raises :class:`~repro.errors.QueueFullError` carrying a ``retry_after``
estimate (depth ahead of you × the service's recent per-job seconds ÷
workers) instead of growing without bound — the HTTP layer turns it
into a 429 + ``Retry-After``. Dequeue order: lanes strictly by priority
(``interactive`` drains before ``batch``), FIFO within a lane.

Thread-safe; one :class:`threading.Condition` covers both directions
(workers wait for jobs, nothing ever blocks on the full side — that is
the point of backpressure).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, QueueFullError, ServiceError
from repro.service.jobs import LANES, Job

__all__ = ["JobQueue"]


class JobQueue:
    """A closed-when-shutting-down, lane-ordered, bounded FIFO of jobs."""

    def __init__(
        self,
        max_depth: int = 64,
        lanes: Sequence[str] = LANES,
        retry_after_floor_s: float = 0.5,
    ) -> None:
        if max_depth <= 0:
            raise ConfigurationError(f"max_depth must be > 0, got {max_depth}")
        if not lanes:
            raise ConfigurationError("a JobQueue needs at least one lane")
        self.max_depth = int(max_depth)
        self.lanes: Tuple[str, ...] = tuple(lanes)
        self.retry_after_floor_s = float(retry_after_floor_s)
        self._queues: Dict[str, Deque[Job]] = {
            lane: deque() for lane in self.lanes
        }
        self._cond = threading.Condition()
        self._closed = False
        #: Recent mean seconds one job occupies a worker; the executor
        #: updates it after each completion so retry_after tracks load.
        self._service_time_s = 1.0
        self._workers_hint = 1
        self.admitted = 0
        self.rejected = 0

    # -- sizing hints ----------------------------------------------------------

    def set_load_hints(self, service_time_s: float, workers: int) -> None:
        """Feed the retry-after estimator (recent per-job cost, pool size)."""
        with self._cond:
            if service_time_s > 0:
                self._service_time_s = float(service_time_s)
            if workers > 0:
                self._workers_hint = int(workers)

    def retry_after(self) -> float:
        """Seconds until capacity plausibly frees up, never below the floor."""
        drain = self.depth() * self._service_time_s / self._workers_hint
        return max(self.retry_after_floor_s, drain)

    # -- core operations -------------------------------------------------------

    def put(self, job: Job) -> None:
        """Admit ``job`` or raise (:class:`QueueFullError` on backpressure,
        :class:`ServiceError` once the queue is closed)."""
        if job.spec.lane not in self._queues:
            raise ConfigurationError(
                f"unknown lane {job.spec.lane!r}; queue has {self.lanes}"
            )
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed (service shutting down)")
            depth = sum(len(q) for q in self._queues.values())
            if depth >= self.max_depth:
                self.rejected += 1
                raise QueueFullError(depth, self.max_depth, self.retry_after())
            self._queues[job.spec.lane].append(job)
            self.admitted += 1
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job in lane-priority order; None on timeout or once the
        queue is closed *and* drained."""
        with self._cond:
            while True:
                for lane in self.lanes:
                    if self._queues[lane]:
                        return self._queues[lane].popleft()
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def get_batch(
        self,
        max_n: int,
        compat_key: Callable[[Job], object],
        timeout: Optional[float] = None,
    ) -> Optional[List[Job]]:
        """Next job plus up to ``max_n - 1`` compatible followers.

        The head job is chosen exactly as :meth:`get` chooses it (lane
        priority, FIFO within the lane); followers are further jobs from
        the *same lane* whose ``compat_key`` equals the head's —
        coalescing never lets a batch-lane job overtake an interactive
        one, and never mixes jobs a single engine batch could not run
        together. Skipped (incompatible) jobs keep their positions, so
        lane FIFO order is preserved for everything not taken. A head
        whose key is ``None`` is returned alone (not batchable).

        Returns ``None`` on timeout or once the queue is closed and
        drained, like :meth:`get`.
        """
        with self._cond:
            while True:
                for lane in self.lanes:
                    q = self._queues[lane]
                    if not q:
                        continue
                    head = q.popleft()
                    batch = [head]
                    key = compat_key(head)
                    if key is not None and max_n > 1:
                        kept: Deque[Job] = deque()
                        while q and len(batch) < max_n:
                            job = q.popleft()
                            if compat_key(job) == key:
                                batch.append(job)
                            else:
                                kept.append(job)
                        while kept:
                            q.appendleft(kept.pop())
                    return batch
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def close(self) -> None:
        """Stop admissions and wake every waiting worker; queued jobs may
        still be drained with :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection ---------------------------------------------------------

    def bind_telemetry(self, registry) -> None:
        """Expose the queue through pull-based instruments.

        The queue's own accounting stays plain ints under its condition
        variable; the registry reads them only at collection time, so
        the put/get hot path gains nothing.
        """
        registry.gauge(
            "repro_queue_depth", "Queued jobs, per lane.",
            labelnames=("lane",),
        )
        for lane in self.lanes:
            registry.get("repro_queue_depth").labels(lane).set_function(
                lambda l=lane: self.depth(l)
            )
        registry.gauge(
            "repro_queue_max_depth", "Configured queue capacity."
        ).set(self.max_depth)
        registry.counter(
            "repro_queue_admitted_total", "Jobs admitted past backpressure."
        ).set_function(lambda: self.admitted)
        registry.counter(
            "repro_queue_rejected_total", "Submissions rejected (queue full)."
        ).set_function(lambda: self.rejected)

    def depth(self, lane: Optional[str] = None) -> int:
        with self._cond:
            if lane is not None:
                return len(self._queues[lane])
            return sum(len(q) for q in self._queues.values())

    def stats(self) -> dict:
        with self._cond:
            return {
                "depth": sum(len(q) for q in self._queues.values()),
                "max_depth": self.max_depth,
                "lanes": {lane: len(q) for lane, q in self._queues.items()},
                "admitted": self.admitted,
                "rejected": self.rejected,
                "closed": self._closed,
                "retry_after_s": self.retry_after(),
            }
