"""Scenario-serving service layer: queue, workers, result cache, HTTP API.

The rest of the package answers "what happens when this scenario runs"
one CLI invocation at a time. This subpackage turns that into a
long-lived service in the shape runtime balancers take in the cluster
literature (a global coordinator in front of per-scenario executors):

* :mod:`repro.service.jobs` — the typed request/outcome language
  (:class:`JobSpec`, :class:`Job`, :class:`JobResult`, retry policy);
* :mod:`repro.service.queue` — a bounded FIFO with priority lanes and
  explicit backpressure;
* :mod:`repro.service.cache` — a content-addressed result cache keyed
  by the oracle layer's sha256 scenario fingerprints, with in-flight
  coalescing;
* :mod:`repro.service.executor` — the :class:`ScenarioService` worker
  pool that ties them together over
  :func:`repro.experiments.runner.run_case` and the persistent
  :class:`~repro.smt.throughput.ThroughputTable`;
* :mod:`repro.service.server` — the stdlib-only HTTP JSON API behind
  ``repro serve``.
"""

from __future__ import annotations

from repro.service.cache import ResultCache
from repro.service.executor import ScenarioService, ServiceConfig
from repro.service.jobs import Job, JobResult, JobSpec, JobState, RetryPolicy
from repro.service.queue import JobQueue

__all__ = [
    "Job",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "JobState",
    "ResultCache",
    "RetryPolicy",
    "ScenarioService",
    "ServiceConfig",
]
