"""The worker pool that turns queued :class:`JobSpec` s into results.

:class:`ScenarioService` owns the three pieces the rest of the package
provides — a :class:`~repro.service.queue.JobQueue`, a
:class:`~repro.service.cache.ResultCache`, and N worker threads — and
adds the execution policy: cache-first admission (a stored fingerprint
is served without a queue slot; an in-flight one coalesces), per-attempt
timeouts, total deadlines, and retry-with-backoff for transient worker
failures. Workers additionally coalesce up to
``ServiceConfig.max_batch_size`` compatible queued jobs (same engine;
see :meth:`ScenarioService._compat_key`) into one
``engine.run_batch`` call — results, errors, and telemetry stay
per job, and a failed batch falls back to per-job execution so one
poison spec cannot fail its neighbours.

Execution itself goes through the :mod:`repro.scenarios` engine
registry: the spec's model knob resolves to a registered engine
(:attr:`JobSpec.engine`), which runs the request's
:class:`~repro.scenarios.ScenarioSpec` — the scenario it embeds, or the
named paper case's spec — so a served digest is bit-identical to a
direct run of the same spec through the same engine. Warm per-thread
Systems and the shared persistent
:class:`~repro.smt.throughput.ThroughputTable` at
``ServiceConfig.throughput_table_path`` (merge-then-save, so concurrent
workers accumulate measurements instead of clobbering) are owned by the
engines themselves now, not hand-rolled here.

Timeout caveat: Python threads cannot be killed, so a timed-out attempt
is *abandoned* — the job fails with
:class:`~repro.errors.JobTimeoutError` immediately, while the stray
simulation thread winds down on its own (bounded by the runtime's
``time_limit``/``max_events`` walls).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import (
    ConfigurationError,
    JobTimeoutError,
    ServiceError,
    TransientWorkerError,
    UnknownJobError,
)
from repro.service.cache import ResultCache
from repro.service.jobs import (
    Job,
    JobResult,
    JobSpec,
    JobState,
    RetryPolicy,
    jobs_by_state,
)
from repro.service.queue import JobQueue
from repro.telemetry import MetricRegistry, get_logger
# Re-exported for compatibility: percentile() lived here before moving
# to repro.util.stats next to summarize().
from repro.util.stats import percentile

__all__ = [
    "ServiceConfig",
    "ScenarioService",
    "execute_spec",
    "execute_spec_batch",
    "percentile",
]

_log = get_logger("service")

#: Lifecycle events the service counts, in reporting order.
_EVENTS = (
    "submitted", "completed", "failed", "cancelled",
    "cache_hits", "retries", "timeouts",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of one :class:`ScenarioService`."""

    workers: int = 2
    queue_depth: int = 64
    cache_entries: int = 1024
    #: Per-attempt wall-clock limit for jobs that don't set their own;
    #: None disables (attempts run inline on the worker thread, which
    #: also lets its Systems stay warm across jobs).
    default_timeout_s: Optional[float] = 300.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Shared on-disk cycle-model measurement table (model="cycle" jobs).
    throughput_table_path: Optional[str] = None
    #: Terminal jobs kept addressable by id before eviction.
    max_jobs_tracked: int = 10_000
    #: Completed-job latencies kept for the percentile metrics.
    latency_window: int = 1024
    #: Most queued jobs one engine batch may coalesce (1 disables
    #: batching; compatible jobs then still run, just one at a time).
    max_batch_size: int = 8

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ConfigurationError(f"workers must be > 0, got {self.workers}")
        if self.queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be > 0, got {self.queue_depth}"
            )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ConfigurationError("default_timeout_s must be > 0 or None")
        if self.max_jobs_tracked <= 0 or self.latency_window <= 0:
            raise ConfigurationError(
                "max_jobs_tracked/latency_window must be > 0"
            )
        if self.max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be > 0, got {self.max_batch_size}"
            )


# -- spec execution (module-level so tests can call it directly) ----------------

_suite_lock = threading.Lock()
_suite_cache: Dict[tuple, object] = {}


def _build_suite(suite_name: str, iterations: Optional[int]):
    """Paper suite for a case-kind spec, with the CLI's iteration defaults
    (so a served digest matches `repro case` exactly). Suites are frozen
    and their calibration is deterministic — cache them across jobs."""
    key = (suite_name, iterations)
    with _suite_lock:
        cached = _suite_cache.get(key)
        if cached is not None:
            return cached
    from repro.experiments.cases import btmz_suite, metbench_suite, siesta_suite

    if suite_name == "metbench":
        suite = metbench_suite(iterations=iterations or 10)
    elif suite_name == "btmz":
        suite = btmz_suite(iterations=iterations or 50)
    else:
        suite = siesta_suite(n_iterations=iterations or 40)
    with _suite_lock:
        _suite_cache.setdefault(key, suite)
    return suite


def _resolve(spec: JobSpec, table_path: Optional[str]):
    """One spec's execution plan: (engine, scenario, label, options)."""
    from repro.scenarios.registry import get_engine

    engine = get_engine(spec.engine)
    options = None
    if engine.name == "cycle" and table_path:
        options = {"table_path": table_path}
    if spec.scenario is not None:
        scenario = spec.scenario
        label = f"service.{scenario.name}"
    else:
        suite = _build_suite(spec.suite, spec.iterations)
        case = suite.case(spec.case)
        scenario = case.spec
        label = f"{suite.name}.{case.name}"
    return engine, scenario, label, options


def execute_spec(
    spec: JobSpec, table_path: Optional[str] = None
) -> JobResult:
    """Run one spec to a :class:`JobResult` (the default worker runner).

    Deterministic by construction: the request's scenario (embedded, or
    the named paper case's spec) is dispatched to the engine
    ``spec.engine`` names, so the served digest is bit-identical to a
    direct ``get_engine(...).run(...)`` — or a
    :func:`~repro.experiments.runner.run_case` — of the same request.
    """
    engine, scenario, label, options = _resolve(spec, table_path)
    result = engine.run(scenario, label=label, options=options)
    if spec.check_invariants:
        from repro.oracle.checker import verify_run

        verify_run(result.run)
    return JobResult.from_execution(spec, result)


def execute_spec_batch(
    specs: list, table_path: Optional[str] = None
) -> list:
    """Run coalesced specs through one ``engine.run_batch`` call.

    All specs must name the same engine (the queue's compatibility key
    guarantees it — see :meth:`ScenarioService._compat_key`); each
    result is still verified and wrapped per spec, so a served digest is
    bit-identical to :func:`execute_spec` of the same request.
    """
    if not specs:
        return []
    resolved = [_resolve(spec, table_path) for spec in specs]
    engine = resolved[0][0]
    if any(r[0] is not engine for r in resolved[1:]):
        raise ServiceError(
            "batch mixes engines: "
            + ", ".join(sorted({r[0].name for r in resolved}))
        )
    results = engine.run_batch(
        [r[1] for r in resolved],
        labels=[r[2] for r in resolved],
        options=resolved[0][3],
    )
    out = []
    for spec, result in zip(specs, results):
        if spec.check_invariants:
            from repro.oracle.checker import verify_run

            verify_run(result.run)
        out.append(JobResult.from_execution(spec, result))
    return out


# -- the service ----------------------------------------------------------------


class ScenarioService:
    """Job intake, worker pool, and metrics — the serving facade.

    ``runner`` defaults to :func:`execute_spec`; tests inject a stub to
    exercise timeout/retry paths without real simulations.

    All accounting lives in a :class:`~repro.telemetry.MetricRegistry`
    — by default a fresh one per service, so sequentially constructed
    services (every test) start from zero; pass ``registry=`` to share
    one. ``metrics()`` keeps serving the historical JSON document off
    the same instruments, and the HTTP layer renders the registry as
    Prometheus text when asked.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        runner: Optional[Callable[[JobSpec], JobResult]] = None,
        registry: Optional[MetricRegistry] = None,
        batch_runner: Optional[Callable[[list], list]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if runner is None:
            self._runner = lambda spec: execute_spec(
                spec, table_path=self.config.throughput_table_path
            )
            # The default runners pair up; a custom scalar runner without
            # a matching batch_runner disables coalescing rather than
            # running specs through a runner the test didn't supply.
            self._batch_runner = batch_runner or (
                lambda specs: execute_spec_batch(
                    specs, table_path=self.config.throughput_table_path
                )
            )
        else:
            self._runner = runner
            self._batch_runner = batch_runner
        self.queue = JobQueue(max_depth=self.config.queue_depth)
        self.cache = ResultCache(max_entries=self.config.cache_entries)
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._job_order: Deque[str] = deque()
        self._started_at = time.time()
        self._closed = False
        self._service_time_ewma = 1.0
        self.registry = registry if registry is not None else MetricRegistry()
        self._init_telemetry()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._workers:
            thread.start()

    def _init_telemetry(self) -> None:
        reg = self.registry
        events = reg.counter(
            "repro_service_events_total",
            "Job lifecycle events by type.",
            labelnames=("event",),
        )
        self._counters = {name: events.labels(name) for name in _EVENTS}
        window = self.config.latency_window
        self._latency_hist = reg.histogram(
            "repro_service_job_latency_seconds",
            "Submission-to-terminal job latency.",
            sample_window=window,
        )
        self._compute_hist = reg.histogram(
            "repro_service_job_compute_seconds",
            "Worker compute seconds per computed job.",
            sample_window=window,
        )
        reg.gauge(
            "repro_service_workers", "Configured worker threads."
        ).set(self.config.workers)
        reg.gauge(
            "repro_service_uptime_seconds", "Seconds since service start."
        ).set_function(lambda: time.time() - self._started_at)
        self._batches_counter = reg.counter(
            "repro_service_batches_total",
            "Coalesced engine batches executed (size >= 2).",
        )
        self._batch_size_hist = reg.histogram(
            "repro_service_batch_size",
            "Jobs per coalesced engine batch.",
            sample_window=window,
        )
        jobs_gauge = reg.gauge(
            "repro_service_jobs", "Tracked jobs by lifecycle state.",
            labelnames=("state",),
        )
        for state in JobState:
            jobs_gauge.labels(state.value).set_function(
                lambda s=state: self._count_state(s)
            )
        self.queue.bind_telemetry(reg)
        self.cache.bind_telemetry(reg)

    def _count_state(self, state: JobState) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state is state)

    # -- intake ----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one request; returns its :class:`Job` immediately.

        A fingerprint already in the result cache completes the job on
        the spot (``source="cache"``); one currently in flight attaches
        it to the running computation (``source="coalesced"``, no queue
        slot). Otherwise the job takes a queue slot or the queue's
        backpressure (:class:`~repro.errors.QueueFullError`) propagates
        to the caller.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            job = Job(spec=spec)
            self._track(job)
            role, cached = self.cache.claim(job)
            # "submitted" counts *admitted* requests only, so the
            # counter stays monotonic: a queue-full rejection below
            # never increments it instead of incrementing-then-undoing.
            if role == "cache":
                self._counters["submitted"].inc()
                self._counters["cache_hits"].inc()
                job.finish(JobState.DONE, result=cached, source="cache")
                self._note_latency(job)
                return job
            if role == "follower":
                self._counters["submitted"].inc()
                return job
            try:
                self.queue.put(job)
            except ServiceError:
                # Undo the leadership claim; any follower that raced in
                # shares the rejection rather than hanging forever.
                _, followers = self.cache.settle(spec.fingerprint, None)
                for follower in followers:
                    if not follower.state.terminal:
                        follower.finish(
                            JobState.FAILED,
                            error="leader admission rejected (queue full)",
                            source="coalesced",
                        )
                self._forget(job)
                raise
            self._counters["submitted"].inc()
            return job

    def run(self, spec: JobSpec, timeout: Optional[float] = None) -> Job:
        """Submit and wait; the blocking convenience the CLI/tests use."""
        job = self.submit(spec)
        return self.wait(job.id, timeout=timeout)

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job is terminal (or ``timeout`` passes); returns
        the job either way — callers inspect ``job.state``."""
        job = self.get(job_id)
        job.done.wait(timeout=timeout)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running attempts cannot be interrupted)."""
        job = self.get(job_id)
        with self._lock:
            if job.state is JobState.QUEUED:
                self._counters["cancelled"].inc()
                job.finish(JobState.CANCELLED, error="cancelled by client")
        return job

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop admissions and the workers; idempotent.

        ``drain=True`` lets workers finish everything already queued;
        ``drain=False`` cancels still-queued jobs first.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for job in self._jobs.values():
                    if job.state is JobState.QUEUED:
                        self._counters["cancelled"].inc()
                        job.finish(
                            JobState.CANCELLED, error="service shutdown"
                        )
        self.queue.close()
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- metrics ---------------------------------------------------------------

    def metrics(self) -> dict:
        """The historical JSON metrics document, read off the registry.

        Counters and the latency/compute windows come from the same
        instruments Prometheus scrapes, so the two views can never
        disagree.
        """
        with self._lock:
            jobs = list(self._jobs.values())
        latencies = self._latency_hist.samples()
        computes = self._compute_hist.samples()
        counters = {
            name: int(child.value) for name, child in self._counters.items()
        }
        doc = {
            "uptime_s": time.time() - self._started_at,
            "workers": self.config.workers,
            "jobs": jobs_by_state(jobs),
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "counters": counters,
        }
        for name, sample in (("latency", latencies), ("compute", computes)):
            if sample:
                doc[name] = {
                    "count": len(sample),
                    "mean_s": sum(sample) / len(sample),
                    "p50_s": percentile(sample, 50.0),
                    "p99_s": percentile(sample, 99.0),
                }
            else:
                doc[name] = {"count": 0}
        return doc

    # -- internals -------------------------------------------------------------

    def _track(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self.config.max_jobs_tracked:
            oldest_id = self._job_order[0]
            oldest = self._jobs.get(oldest_id)
            if oldest is not None and not oldest.state.terminal:
                break  # never evict live jobs; registry shrinks later
            self._job_order.popleft()
            self._jobs.pop(oldest_id, None)

    def _forget(self, job: Job) -> None:
        self._jobs.pop(job.id, None)
        try:
            self._job_order.remove(job.id)
        except ValueError:
            pass

    def _note_latency(self, job: Job) -> None:
        if job.latency_s is not None:
            self._latency_hist.observe(job.latency_s)
        if job.result is not None and job.source == "computed":
            self._compute_hist.observe(job.result.compute_seconds)
            # EWMA of per-job compute cost feeds the queue's Retry-After.
            self._service_time_ewma = (
                0.8 * self._service_time_ewma
                + 0.2 * job.result.compute_seconds
            )
            self.queue.set_load_hints(
                self._service_time_ewma, self.config.workers
            )

    def _worker_loop(self) -> None:
        batching = (
            self._batch_runner is not None and self.config.max_batch_size > 1
        )
        while True:
            if not batching:
                job = self.queue.get()
                if job is None:
                    return
                self._process(job)
                continue
            jobs = self.queue.get_batch(
                self.config.max_batch_size, self._compat_key
            )
            if jobs is None:
                return
            if len(jobs) == 1:
                self._process(jobs[0])
            else:
                self._process_batch(jobs)

    def _compat_key(self, job: Job) -> object:
        """Jobs with equal keys may share one engine batch.

        The engine name is the whole story today: every worker shares
        the one configured throughput table path, so two same-engine
        jobs always agree on it. Returning ``None`` would exclude a job
        from batching entirely.
        """
        return (job.spec.engine,)

    def _process_batch(self, jobs: list) -> None:
        """Run coalesced jobs through one batch attempt.

        Admission (terminal-reclaim, deadline) mirrors :meth:`_process`
        per job; settlement is per fingerprint, so followers that
        coalesced onto any member while the batch ran are paid out
        exactly as on the scalar path. Any batch-level failure falls
        back to processing each job individually — a poison spec then
        fails only its own job.
        """
        runnable = []
        for job in jobs:
            if job.state.terminal:
                # Cancelled while queued; promote live followers, as
                # _process does, by letting the scalar path handle it.
                self._process(job)
                continue
            if job.deadline_exceeded():
                self._settle_failure(
                    job.spec.fingerprint, job,
                    JobTimeoutError(
                        job.id, job.spec.deadline_s, kind="deadline"
                    ),
                )
                continue
            runnable.append(job)
        if not runnable:
            return
        if len(runnable) == 1:
            self._process(runnable[0])
            return

        timeout: Optional[float] = 0.0
        for job in runnable:
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.attempts += 1
            per_job = self._attempt_timeout(job)
            if per_job is None or timeout is None:
                # One unbounded member makes the whole batch inline —
                # same policy as a single unbounded attempt.
                timeout = None
            else:
                timeout += per_job
        try:
            results = self._run_batch_attempt(runnable, timeout)
            if len(results) != len(runnable):
                raise ServiceError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(runnable)} jobs"
                )
        except Exception as exc:  # noqa: BLE001 — per-job fallback below
            _log.info(
                "batch of %d jobs failed (%s: %s); falling back to "
                "per-job execution", len(runnable), type(exc).__name__, exc,
            )
            for job in runnable:
                # The batch attempt didn't consume a per-job attempt:
                # the scalar fallback re-counts from the same budget.
                job.attempts -= 1
                self._process(job)
            return
        with self._lock:
            self._batches_counter.inc()
            self._batch_size_hist.observe(len(runnable))
        for job, result in zip(runnable, results):
            self._settle_success(job.spec.fingerprint, job, result)

    def _run_batch_attempt(
        self, jobs: list, timeout: Optional[float]
    ) -> list:
        specs = [job.spec for job in jobs]
        if timeout is None:
            return self._batch_runner(specs)
        box: dict = {}

        def target() -> None:
            try:
                box["result"] = self._batch_runner(specs)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc

        thread = threading.Thread(
            target=target, name=f"batch-{jobs[0].id}", daemon=True
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise JobTimeoutError(jobs[0].id, timeout)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _process(self, job: Job) -> None:
        fp = job.spec.fingerprint
        if job.state.terminal:
            # Cancelled while queued. If identical requests coalesced
            # behind it, the computation is still wanted — run for them.
            leader, followers = self.cache.settle(fp, None)
            live = [f for f in followers if not f.state.terminal]
            if not live:
                return
            promoted = live[0]
            self.cache.claim(promoted)
            for follower in live[1:]:
                self.cache.claim(follower)
            job = promoted
            fp = job.spec.fingerprint

        if job.deadline_exceeded():
            self._settle_failure(
                fp, job,
                JobTimeoutError(job.id, job.spec.deadline_s, kind="deadline"),
            )
            return

        job.state = JobState.RUNNING
        job.started_at = time.time()
        retry = self.config.retry
        max_retries = (
            job.spec.max_retries
            if job.spec.max_retries is not None
            else retry.max_retries
        )
        while True:
            job.attempts += 1
            try:
                result = self._run_attempt(job)
            except Exception as exc:  # noqa: BLE001 — classified below
                if isinstance(exc, JobTimeoutError):
                    with self._lock:
                        self._counters["timeouts"].inc()
                transient = isinstance(exc, (TransientWorkerError, OSError))
                retries_used = job.attempts - 1
                if (
                    transient
                    and retries_used < max_retries
                    and not job.deadline_exceeded()
                ):
                    with self._lock:
                        self._counters["retries"].inc()
                    _log.info(
                        "job %s: transient failure on attempt %d, "
                        "retrying: %s", job.id, job.attempts, exc,
                    )
                    time.sleep(self._bounded_backoff(job, retry))
                    continue
                self._settle_failure(fp, job, exc)
                return
            self._settle_success(fp, job, result)
            return

    def _bounded_backoff(self, job: Job, retry: RetryPolicy) -> float:
        delay = retry.delay(job.attempts - 1)
        remaining = job.deadline_remaining()
        if remaining is not None:
            delay = max(0.0, min(delay, remaining))
        return delay

    def _attempt_timeout(self, job: Job) -> Optional[float]:
        timeout = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None
            else self.config.default_timeout_s
        )
        remaining = job.deadline_remaining()
        if remaining is not None:
            remaining = max(0.01, remaining)
            timeout = remaining if timeout is None else min(timeout, remaining)
        return timeout

    def _run_attempt(self, job: Job) -> JobResult:
        timeout = self._attempt_timeout(job)
        if timeout is None:
            return self._runner(job.spec)
        box: dict = {}

        def target() -> None:
            try:
                box["result"] = self._runner(job.spec)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc

        thread = threading.Thread(
            target=target, name=f"attempt-{job.id}", daemon=True
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise JobTimeoutError(job.id, timeout)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _settle_success(self, fp: str, job: Job, result: JobResult) -> None:
        _, followers = self.cache.settle(fp, result)
        with self._lock:
            job.finish(JobState.DONE, result=result, source="computed")
            self._counters["completed"].inc()
            self._note_latency(job)
            for follower in followers:
                if follower.state.terminal:
                    continue
                follower.finish(
                    JobState.DONE, result=result, source="coalesced"
                )
                self._counters["completed"].inc()
                self._note_latency(follower)

    def _settle_failure(self, fp: str, job: Job, exc: Exception) -> None:
        _, followers = self.cache.settle(fp, None)
        error = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, JobTimeoutError):
            _log.warning("job %s timed out after %d attempt(s): %s",
                         job.id, job.attempts, exc)
        else:
            _log.error("job %s failed after %d attempt(s): %s",
                       job.id, job.attempts, error, exc_info=exc)
        with self._lock:
            job.finish(JobState.FAILED, error=error)
            self._counters["failed"].inc()
            self._note_latency(job)
            for follower in followers:
                if follower.state.terminal:
                    continue
                follower.finish(
                    JobState.FAILED, error=error, source="coalesced"
                )
                self._counters["failed"].inc()
                self._note_latency(follower)
