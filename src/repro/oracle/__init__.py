"""Invariant-checking oracle layer.

Three pillars, one package:

* :mod:`repro.oracle.invariants` — registry of machine-checkable facts
  the paper fixes (Table II/III decode arbitration, IPC monotonicity,
  trace conservation) plus :mod:`repro.oracle.checker`, which attaches
  them to live runs and finished results.
* :mod:`repro.oracle.differential` — the same
  :class:`~repro.scenarios.ScenarioSpec` pushed through every engine in
  the :mod:`repro.scenarios` registry and compared under declared
  tolerances; includes the seeded fuzz driver. (``Scenario`` and
  ``ScenarioGenerator`` are re-exports kept for compatibility.)
* :mod:`repro.oracle.golden` — versioned golden-trace snapshots under
  ``tests/golden/`` with ``record``/``check`` replay.
"""

from repro.oracle.checker import (
    CheckReport,
    InvariantChecker,
    RuntimeChecker,
    verify_decode_law,
    verify_model,
    verify_run,
    verify_trace,
)
from repro.oracle.differential import (
    ClusterEquivalenceCheck,
    ConformanceResult,
    Scenario,
    ScenarioGenerator,
    Tolerances,
    check_cluster_equivalence,
    check_conformance,
    fuzz,
    trace_digest,
)
from repro.oracle.golden import (
    GOLDEN_FORMAT,
    GOLDEN_VERSION,
    GoldenCheck,
    JointSearchCheck,
    check_all,
    check_joint_search,
    default_scenarios,
    record_all,
)
from repro.oracle.invariants import (
    PAPER_TABLE_II,
    PAPER_TABLE_III,
    Invariant,
    REGISTRY,
    invariants_for_scope,
)

__all__ = [
    "CheckReport",
    "InvariantChecker",
    "RuntimeChecker",
    "verify_decode_law",
    "verify_model",
    "verify_run",
    "verify_trace",
    "ClusterEquivalenceCheck",
    "ConformanceResult",
    "Scenario",
    "ScenarioGenerator",
    "Tolerances",
    "check_cluster_equivalence",
    "check_conformance",
    "fuzz",
    "trace_digest",
    "GOLDEN_FORMAT",
    "GOLDEN_VERSION",
    "GoldenCheck",
    "JointSearchCheck",
    "check_all",
    "check_joint_search",
    "default_scenarios",
    "record_all",
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
    "Invariant",
    "REGISTRY",
    "invariants_for_scope",
]
