"""Registry of machine-checkable physics invariants.

Every law the reproduction rests on — the Table II/III decode-slice
arithmetic, IPC monotonicity in own priority, trace well-formedness and
time conservation, cache-on/off state equality — is written here once as
an executable check, keyed by name and *scope*:

``decode``
    Pure arbitration law; needs no subject (the law is global).
``model``
    Takes a throughput model (``core_ipc``/``chip_ipc`` protocol).
``trace``
    Takes a finished :class:`~repro.trace.trace.Trace`.
``run``
    Takes a :class:`~repro.mpi.runtime.RunResult`.

Checks raise :class:`~repro.errors.InvariantViolation` with the registry
name and a concrete counterexample, so a CI failure names the broken law
directly. The :mod:`repro.oracle.checker` layer decides *when* checks
run (live in the runtime, post-hoc in the experiment runner, or from the
``repro oracle`` CLI); this module only defines *what* must hold.

The Table II/III references below are **literal transcriptions** of the
paper's tables, kept deliberately separate from
:mod:`repro.smt.decode`'s arithmetic: the invariant compares two
independent statements of the same law, so a typo in either is caught.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.smt.decode import (
    OFF_VERY_LOW_SLICE,
    OS_PRIORITY_RANGE,
    POWER_SAVE_SLICE,
    ArbitrationMode,
    decode_allocation,
    decode_pattern,
    decode_share,
    enumerate_allocations,
)
from repro.smt.instructions import BASE_PROFILES

__all__ = [
    "Invariant",
    "REGISTRY",
    "invariant",
    "invariants_for_scope",
    "get_invariant",
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
]

#: Paper Table II, transcribed literally: priority difference |X-Y| ->
#: (R, decode cycles for the favoured thread, cycles for the other).
PAPER_TABLE_II: Dict[int, Tuple[int, int, int]] = {
    0: (2, 1, 1),
    1: (4, 3, 1),
    2: (8, 7, 1),
    3: (16, 15, 1),
    4: (32, 31, 1),
    5: (64, 63, 1),
}

#: Paper Table III, transcribed literally: qualitative regime per
#: (prio_a, prio_b) class, with the guaranteed decode share of each
#: thread (``None`` = whatever Table II says).
PAPER_TABLE_III = (
    ("both > 1", ArbitrationMode.NORMAL, None, None),
    ("a == 1, b > 1", ArbitrationMode.LEFTOVER, 0.0, 1.0),
    ("both == 1", ArbitrationMode.POWER_SAVE, 1.0 / 64.0, 1.0 / 64.0),
    ("a == 0, b > 1", ArbitrationMode.SINGLE_THREAD, 0.0, 1.0),
    ("a == 0, b == 1", ArbitrationMode.SINGLE_THREAD_SLOW, 0.0, 1.0 / 32.0),
    ("both == 0", ArbitrationMode.STOPPED, 0.0, 0.0),
)


@dataclass(frozen=True)
class Invariant:
    """One named, machine-checkable law."""

    name: str
    scope: str  # "decode" | "model" | "trace" | "run"
    description: str
    check: Callable[..., None]

    def __call__(self, *subject) -> None:
        self.check(*subject)


REGISTRY: Dict[str, Invariant] = {}

_SCOPES = ("decode", "model", "trace", "run")


def invariant(name: str, scope: str, description: str):
    """Class-level decorator registering a check function."""
    if scope not in _SCOPES:
        raise ValueError(f"unknown invariant scope {scope!r}")
    if name in REGISTRY:
        raise ValueError(f"duplicate invariant {name!r}")

    def register(fn: Callable[..., None]) -> Callable[..., None]:
        REGISTRY[name] = Invariant(name, scope, description, fn)
        return fn

    return register


def invariants_for_scope(scope: str) -> List[Invariant]:
    """All registered invariants of ``scope``, in registration order."""
    if scope not in _SCOPES:
        raise ValueError(f"unknown invariant scope {scope!r}")
    return [inv for inv in REGISTRY.values() if inv.scope == scope]


def get_invariant(name: str) -> Invariant:
    try:
        return REGISTRY[name]
    except KeyError:
        raise InvariantViolation(name, "no such invariant registered") from None


def _fail(name: str, detail: str) -> None:
    raise InvariantViolation(name, detail)


# -- decode-law invariants -------------------------------------------------------


@invariant(
    "decode.table2",
    "decode",
    "R = 2^(|X-Y|+1); slices split R-1:1 toward the higher priority "
    "(literal paper Table II, every pair with both priorities > 1)",
)
def _check_table2() -> None:
    for (a, b), alloc in enumerate_allocations():
        if a <= 1 or b <= 1:
            continue
        expected_r, fav, other = PAPER_TABLE_II[abs(a - b)]
        if alloc.slice_cycles != expected_r:
            _fail(
                "decode.table2",
                f"pair ({a},{b}): slice is {alloc.slice_cycles}, "
                f"Table II says R={expected_r}",
            )
        got = (alloc.cycles_a, alloc.cycles_b)
        want = (fav, other) if a >= b else (other, fav)
        if a == b:
            want = (1, 1)
        if got != want:
            _fail(
                "decode.table2",
                f"pair ({a},{b}): cycles {got}, Table II says {want}",
            )
        if alloc.cycles_a + alloc.cycles_b != alloc.slice_cycles:
            _fail(
                "decode.table2",
                f"pair ({a},{b}): cycles {got} do not sum to R={alloc.slice_cycles}",
            )


@invariant(
    "decode.table3",
    "decode",
    "priority-0/1 special regimes match the literal paper Table III "
    "(leftover, power save, ST mode, 1-of-32, stopped)",
)
def _check_table3() -> None:
    for (a, b), alloc in enumerate_allocations():
        if a > 1 and b > 1:
            expected = ArbitrationMode.NORMAL
            shares = (None, None)
        elif a == 1 and b > 1:
            expected = ArbitrationMode.LEFTOVER
            shares = (0.0, 1.0)
        elif b == 1 and a > 1:
            expected = ArbitrationMode.LEFTOVER
            shares = (1.0, 0.0)
        elif a == 1 and b == 1:
            expected = ArbitrationMode.POWER_SAVE
            shares = (1.0 / POWER_SAVE_SLICE, 1.0 / POWER_SAVE_SLICE)
        elif a == 0 and b > 1:
            expected = ArbitrationMode.SINGLE_THREAD
            shares = (0.0, 1.0)
        elif b == 0 and a > 1:
            expected = ArbitrationMode.SINGLE_THREAD
            shares = (1.0, 0.0)
        elif a == 0 and b == 1:
            expected = ArbitrationMode.SINGLE_THREAD_SLOW
            shares = (0.0, 1.0 / OFF_VERY_LOW_SLICE)
        elif b == 0 and a == 1:
            expected = ArbitrationMode.SINGLE_THREAD_SLOW
            shares = (1.0 / OFF_VERY_LOW_SLICE, 0.0)
        else:  # both 0
            expected = ArbitrationMode.STOPPED
            shares = (0.0, 0.0)
        if alloc.mode is not expected:
            _fail(
                "decode.table3",
                f"pair ({a},{b}): mode {alloc.mode.value}, "
                f"Table III says {expected.value}",
            )
        for label, want, got in (
            ("A", shares[0], alloc.share_a),
            ("B", shares[1], alloc.share_b),
        ):
            if want is not None and abs(got - want) > 1e-12:
                _fail(
                    "decode.table3",
                    f"pair ({a},{b}): thread {label} guaranteed share "
                    f"{got}, Table III says {want}",
                )


@invariant(
    "decode.pattern",
    "decode",
    "the cyclic decode pattern realises exactly the allocation's "
    "per-slice cycle counts for every priority pair",
)
def _check_pattern() -> None:
    for (a, b), alloc in enumerate_allocations():
        pattern = decode_pattern(a, b)
        if len(pattern) != alloc.slice_cycles:
            _fail(
                "decode.pattern",
                f"pair ({a},{b}): pattern length {len(pattern)} != "
                f"slice {alloc.slice_cycles}",
            )
        counts = (pattern.count(0), pattern.count(1))
        if counts != (alloc.cycles_a, alloc.cycles_b):
            _fail(
                "decode.pattern",
                f"pair ({a},{b}): pattern grants {counts}, allocation "
                f"says {(alloc.cycles_a, alloc.cycles_b)}",
            )


@invariant(
    "decode.share_monotone",
    "decode",
    "raising a thread's own priority never lowers its decode share "
    "(for any fixed sibling priority in the OS range)",
)
def _check_share_monotone() -> None:
    for sibling in OS_PRIORITY_RANGE:
        prev = None
        for own in range(2, 7):  # the Table II regime
            share = decode_share(own, sibling)[0]
            if prev is not None and share < prev - 1e-12:
                _fail(
                    "decode.share_monotone",
                    f"sibling {sibling}: share fell from {prev} to "
                    f"{share} when own priority rose to {own}",
                )
            prev = share


# -- model invariants ------------------------------------------------------------


def _model_profiles() -> List[str]:
    """Profiles the model invariants sweep (compute-heavy + memory-heavy)."""
    wanted = [n for n in ("hpc", "mem", "dft") if n in BASE_PROFILES]
    return wanted or sorted(BASE_PROFILES)[:2]


#: Slack for the monotonicity invariants. The analytic model is
#: closed-form and satisfies them exactly, but the cycle model *measures*
#: IPC over a finite pipeline window: alignment effects put a relative
#: noise floor on those measurements (empirically up to ~17% at the
#: oracle's 8k-cycle windows), and for very low-IPC (memory-bound)
#: profiles the handful of retirements per window adds an absolute
#: quantisation floor on top. A genuine priority inversion moves the
#: decode share by a power of two, which shifts IPC by *multiples* —
#: far beyond either floor.
_MEASUREMENT_SLACK = 0.25
_MEASUREMENT_ABS_SLACK = 0.01


def _dropped_beyond_slack(prev: float, ipc: float) -> bool:
    return prev - ipc > max(prev * _MEASUREMENT_SLACK, _MEASUREMENT_ABS_SLACK)


@invariant(
    "model.ipc_monotone",
    "model",
    "a thread's IPC is non-decreasing in its own priority, all else fixed",
)
def _check_ipc_monotone(model) -> None:
    for name in _model_profiles():
        profile = BASE_PROFILES[name]
        for sibling_prio in (2, 4, 6):
            prev = None
            for own in range(2, 7):
                ipc = model.core_ipc(profile, profile, own, sibling_prio)[0]
                if not math.isfinite(ipc) or ipc < 0:
                    _fail(
                        "model.ipc_monotone",
                        f"{name}: non-physical IPC {ipc} at ({own},{sibling_prio})",
                    )
                if prev is not None and _dropped_beyond_slack(prev, ipc):
                    _fail(
                        "model.ipc_monotone",
                        f"{name} vs sibling prio {sibling_prio}: IPC fell "
                        f"from {prev} to {ipc} when own priority rose to {own}",
                    )
                prev = max(prev, ipc) if prev is not None else ipc


@invariant(
    "model.sibling_pressure",
    "model",
    "raising the sibling's priority never speeds the victim up",
)
def _check_sibling_pressure(model) -> None:
    for name in _model_profiles():
        profile = BASE_PROFILES[name]
        prev = None
        for sibling in range(2, 7):
            ipc = model.core_ipc(profile, profile, 4, sibling)[0]
            if prev is not None and _dropped_beyond_slack(ipc, prev):
                _fail(
                    "model.sibling_pressure",
                    f"{name}: victim IPC rose from {prev} to {ipc} when "
                    f"the sibling's priority rose to {sibling}",
                )
            prev = min(prev, ipc) if prev is not None else ipc


@invariant(
    "model.cache_equivalence",
    "model",
    "memoised solves equal a fresh uncached model's, state for state",
)
def _check_cache_equivalence(model) -> None:
    # Imported here: the uncached twin only exists for analytic models.
    from repro.smt.analytic import AnalyticThroughputModel

    if not isinstance(model, AnalyticThroughputModel):
        return  # cycle tables have no cache-off twin; nothing to compare
    bare = AnalyticThroughputModel(
        model.config, core_cache_size=0, chip_cache_size=0
    )
    for name in _model_profiles():
        profile = BASE_PROFILES[name]
        for pair in ((4, 4), (4, 6), (2, 6), (6, 1), (7, 0)):
            cached = model.core_ipc(profile, profile, *pair)
            plain = bare.core_ipc(profile, profile, *pair)
            if cached != plain:
                _fail(
                    "model.cache_equivalence",
                    f"{name} at {pair}: cached {cached} != uncached {plain}",
                )


# -- trace invariants ------------------------------------------------------------


@invariant(
    "trace.well_formed",
    "trace",
    "timestamps are monotone, intervals strictly positive and contiguous "
    "(every enter matched by the next exit)",
)
def _check_trace_well_formed(trace) -> None:
    from repro.errors import TraceError

    try:
        trace.validate()
    except TraceError as exc:
        _fail("trace.well_formed", str(exc))


@invariant(
    "trace.conservation",
    "trace",
    "per-rank busy+wait+run time adds up: each rank's intervals tile "
    "[first transition, its finish] with no gap",
)
def _check_trace_conservation(trace) -> None:
    total = trace.total_time
    for tl in trace:
        if not tl.intervals:
            continue
        accounted = sum(iv.duration for iv in tl.intervals)
        span = tl.intervals[-1].end - tl.intervals[0].start
        if not math.isclose(accounted, span, rel_tol=1e-9, abs_tol=1e-12):
            _fail(
                "trace.conservation",
                f"rank {tl.rank}: intervals account for {accounted}s of a "
                f"{span}s span (time leaked or double-counted)",
            )
        if tl.intervals[-1].end > total + 1e-12:
            _fail(
                "trace.conservation",
                f"rank {tl.rank} runs past the application's total time "
                f"({tl.intervals[-1].end} > {total})",
            )


# -- run invariants --------------------------------------------------------------


@invariant(
    "run.accounting",
    "run",
    "a finished run's totals are physical: non-negative time, stats span "
    "equal to the trace's, priorities architectural",
)
def _check_run_accounting(result) -> None:
    if result.total_time < 0 or not math.isfinite(result.total_time):
        _fail("run.accounting", f"total_time {result.total_time} is not physical")
    if result.events_processed < 0:
        _fail("run.accounting", f"negative events_processed {result.events_processed}")
    if not math.isclose(
        result.stats.total_time, result.trace.total_time, rel_tol=1e-9, abs_tol=1e-12
    ):
        _fail(
            "run.accounting",
            f"stats span {result.stats.total_time} != trace span "
            f"{result.trace.total_time}",
        )
    for prio in result.final_priorities:
        if not 0 <= int(prio) <= 7:
            _fail("run.accounting", f"final priority {prio} outside 0..7")


@invariant(
    "run.fractions",
    "run",
    "per-rank state fractions are probabilities and sum to one",
)
def _check_run_fractions(result) -> None:
    for r in result.stats.ranks:
        parts = {
            "compute": r.compute_fraction,
            "sync": r.sync_fraction,
            "comm": r.comm_fraction,
            "noise": r.noise_fraction,
            "idle": r.idle_fraction,
        }
        for label, frac in parts.items():
            if not -1e-12 <= frac <= 1.0 + 1e-9:
                _fail(
                    "run.fractions",
                    f"rank {r.rank}: {label} fraction {frac} outside [0, 1]",
                )
        total = sum(parts.values())
        if result.total_time > 0 and not math.isclose(total, 1.0, rel_tol=1e-9):
            _fail(
                "run.fractions",
                f"rank {r.rank}: state fractions sum to {total}, not 1",
            )
