"""Attach the invariant registry to live runs and finished results.

Two entry points:

* :class:`RuntimeChecker` — created by :class:`~repro.mpi.runtime.MpiRuntime`
  when ``RuntimeConfig.check_invariants`` is on. It watches the event
  loop (monotone simulated time, finite non-negative rates) and, when
  the run finishes, sweeps the decode/trace/run scopes. The runtime pays
  a single ``is None`` test per loop iteration when the knob is off.
* :func:`verify_run` / :func:`verify_model` / :func:`verify_decode_law` —
  post-hoc sweeps used by the experiment runner, the ``repro oracle``
  CLI and the test suite.

All failures raise :class:`~repro.errors.InvariantViolation` (strict
mode, the default) or are collected into a :class:`CheckReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.oracle.invariants import Invariant, invariants_for_scope

__all__ = [
    "CheckReport",
    "InvariantChecker",
    "RuntimeChecker",
    "verify_decode_law",
    "verify_model",
    "verify_trace",
    "verify_run",
]


@dataclass
class CheckReport:
    """Outcome of one invariant sweep."""

    checked: List[str] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "CheckReport") -> "CheckReport":
        self.checked.extend(other.checked)
        self.violations.extend(other.violations)
        return self

    def summary(self) -> str:
        if self.ok:
            return f"{len(self.checked)} invariants hold"
        lines = [
            f"{len(self.violations)} of {len(self.checked)} invariants violated:"
        ]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


class InvariantChecker:
    """Run registered invariants over a scope's subject.

    ``strict=True`` re-raises the first violation; ``strict=False``
    collects every violation into the returned report (what the CLI
    prints).
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def _sweep(self, invariants: List[Invariant], *subject) -> CheckReport:
        report = CheckReport()
        for inv in invariants:
            report.checked.append(inv.name)
            try:
                inv(*subject)
            except InvariantViolation as violation:
                if self.strict:
                    raise
                report.violations.append(violation)
        return report

    def check_decode(self) -> CheckReport:
        return self._sweep(invariants_for_scope("decode"))

    def check_model(self, model) -> CheckReport:
        return self._sweep(invariants_for_scope("model"), model)

    def check_trace(self, trace) -> CheckReport:
        return self._sweep(invariants_for_scope("trace"), trace)

    def check_run(self, result) -> CheckReport:
        report = self._sweep(invariants_for_scope("run"), result)
        return report.merge(self.check_trace(result.trace))


class RuntimeChecker:
    """Live oracle for one :class:`~repro.mpi.runtime.MpiRuntime` run.

    The runtime calls :meth:`on_rates` after every rate re-solve,
    :meth:`on_advance` after every time step, and :meth:`on_finish` with
    the built :class:`~repro.mpi.runtime.RunResult`. Each hook raises
    :class:`~repro.errors.InvariantViolation` at the instant physics
    breaks, with the simulated time in the message — far closer to the
    defect than a corrupted end-of-run table would be.
    """

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self._last_now: float = 0.0
        self._checker = InvariantChecker(strict=True)

    def on_rates(self) -> None:
        rt = self._runtime
        for proc in rt._procs:
            rate = proc.rate
            if not math.isfinite(rate) or rate < 0.0:
                raise InvariantViolation(
                    "runtime.rates",
                    f"t={rt.now:.9f}s: rank {proc.rank} solved to "
                    f"non-physical rate {rate}",
                )
            if proc.remaining < 0.0:
                raise InvariantViolation(
                    "runtime.rates",
                    f"t={rt.now:.9f}s: rank {proc.rank} has negative "
                    f"remaining work {proc.remaining}",
                )

    def on_advance(self) -> None:
        rt = self._runtime
        if rt.now < self._last_now:
            raise InvariantViolation(
                "runtime.time_monotone",
                f"simulated time went backwards: {rt.now} < {self._last_now}",
            )
        self._last_now = rt.now

    def on_finish(self, result) -> None:
        self._checker.check_decode()
        self._checker.check_run(result)


def verify_decode_law(strict: bool = True) -> CheckReport:
    """Sweep the pure decode-arbitration invariants."""
    return InvariantChecker(strict).check_decode()


def verify_model(model, strict: bool = True) -> CheckReport:
    """Sweep the throughput-model invariants over ``model``."""
    return InvariantChecker(strict).check_model(model)


def verify_trace(trace, strict: bool = True) -> CheckReport:
    """Sweep the trace invariants over a finished trace."""
    return InvariantChecker(strict).check_trace(trace)


def verify_run(result, strict: bool = True) -> CheckReport:
    """Sweep run + trace invariants over a :class:`RunResult`."""
    return InvariantChecker(strict).check_run(result)
