"""Golden-trace snapshots: recorded physics future PRs are diffed against.

A golden file under ``tests/golden/`` pins one
:class:`~repro.scenarios.ScenarioSpec` to the
exact physics the simulator produced when the file was recorded: the
sha256 digest of the full-precision trace interval stream, the paper's
two metrics, the per-rank state breakdown, and the scenario's own
fingerprint (so a file can never be replayed against a silently edited
scenario). ``repro oracle check`` re-runs every scenario and compares —
bit-exactly on the digest by default (the simulator is deterministic:
``tests/integration/test_determinism.py``), or within ``--tolerance`` on
the scalar metrics for cross-platform runs.

The snapshot format is versioned; bump :data:`GOLDEN_VERSION` when an
*intentional* physics change lands and re-record with ``repro oracle
record`` in the same PR, so the diff shows exactly which numbers moved.

The same directory also pins one tournament
:class:`~repro.policies.Leaderboard` (the smoke config over both policy
families): :func:`check_leaderboard` re-runs it and compares canonical
fingerprints, golden-replaying the whole policy subsystem the way a
trace digest golden-replays one scenario. And it pins one joint
(mapping × priority) :class:`~repro.core.SearchResult`
(``joint-search.search.json`` — deliberately *not* ``*.golden.json``,
which is reserved for single-trace snapshots): the recorded winner's
mapping, priorities, time and trace digest, replayed by re-running the
whole symmetry-pruned search (:func:`check_joint_search`).
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GoldenMismatchError, OracleError, PersistenceError
from repro.mpi.runtime import RunResult
from repro.policies import Leaderboard, TournamentConfig, run_tournament
from repro.scenarios import ScenarioSpec, get_engine, trace_digest

__all__ = [
    "GOLDEN_FORMAT",
    "GOLDEN_VERSION",
    "GoldenCheck",
    "JOINT_SEARCH_GOLDEN_BASENAME",
    "JointSearchCheck",
    "LEADERBOARD_GOLDEN_BASENAME",
    "LeaderboardCheck",
    "default_scenarios",
    "joint_search_scenario",
    "smoke_tournament_config",
    "snapshot",
    "record",
    "record_all",
    "record_joint_search",
    "record_leaderboard",
    "check",
    "check_all",
    "check_all_batch",
    "check_joint_search",
    "check_leaderboard",
    "golden_paths",
    "joint_search_path",
    "leaderboard_path",
]

GOLDEN_FORMAT = "repro-golden-trace"
#: v2: the analytic model's core memo keys carry *exact* external
#: traffic (they used to round to 1e-4), making the model a pure
#: function of its query. Converged values moved in the ~8th decimal
#: for scenarios with nonzero cross-core traffic; re-recorded in the
#: same PR that introduced the batch execution path, which relies on
#: the history-independence the exact keys provide.
GOLDEN_VERSION = 2


def default_scenarios() -> List[ScenarioSpec]:
    """The canonical recorded set: one per workload family, covering the
    identity and paper mappings and a static priority assignment."""
    return [
        ScenarioSpec(
            name="barrier-skewed",
            kind="barrier_loop",
            works=(1.0e9, 3.0e9, 2.0e9, 4.0e9),
            iterations=3,
        ),
        ScenarioSpec(
            name="metbench-prio",
            kind="metbench",
            works=(8.0e8, 2.4e9, 1.2e9, 2.4e9),
            iterations=3,
            priorities=((0, 4), (1, 6), (2, 4), (3, 6)),
        ),
        ScenarioSpec(
            name="btmz-paper-mapping",
            kind="btmz",
            works=(6.0e8, 1.1e9, 1.9e9, 3.4e9),
            iterations=2,
            mapping="btmz",
            priorities=((0, 4), (1, 4), (2, 5), (3, 6)),
        ),
        # The one topology-bearing (spec v3) recording: 8 ranks on two
        # nodes joined by a two-level tree forced onto separate switches
        # (nodes_per_switch=1), so every distant-pair exchange crosses
        # the far link. Pins the whole cluster path — TopologySpec wire
        # format, ClusterSystem cross-node costs, per-node priority
        # arbitration — to exact physics.
        ScenarioSpec(
            name="cluster-distant-pairs",
            kind="distant_pairs",
            works=(1.0e9, 2.6e9, 1.4e9, 3.0e9, 1.8e9, 2.2e9, 1.2e9, 2.8e9),
            iterations=2,
            priorities=((1, 6), (3, 6), (7, 5)),
            topology={"n_nodes": 2, "network": "two-level-tree",
                      "params": {"nodes_per_switch": 1}},
        ),
    ]


def _replay(scenario: ScenarioSpec) -> RunResult:
    """One recording/replay path: the fluid engine with live invariant
    checking, labelled exactly as the oracle always labelled it (labels
    do not enter the digest, but keep logs continuous)."""
    return get_engine("fluid").run(
        scenario,
        label=f"oracle.{scenario.name}",
        options={"check_invariants": True},
    ).run


def snapshot(scenario: ScenarioSpec, result: RunResult) -> dict:
    """The JSON document pinning ``result``'s physics to ``scenario``."""
    return {
        "format": GOLDEN_FORMAT,
        "version": GOLDEN_VERSION,
        "scenario": scenario.to_doc(),
        "scenario_fingerprint": scenario.fingerprint,
        "trace_digest": trace_digest(result),
        "total_time": result.total_time,
        "imbalance_percent": result.imbalance_percent,
        "events_processed": result.events_processed,
        "final_priorities": [int(p) for p in result.final_priorities],
        "ranks": [
            {
                "rank": r.rank,
                "compute": r.compute_fraction,
                "sync": r.sync_fraction,
                "comm": r.comm_fraction,
                "noise": r.noise_fraction,
                "idle": r.idle_fraction,
            }
            for r in result.stats.ranks
        ],
    }


def _golden_path(directory: str, scenario: ScenarioSpec) -> str:
    return os.path.join(directory, f"{scenario.name}.golden.json")


def record(scenario: ScenarioSpec, path: str) -> dict:
    """Run ``scenario`` fresh (fluid engine, live invariant checking)
    and write its snapshot to ``path``."""
    result = _replay(scenario)
    doc = snapshot(scenario, result)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def record_all(directory: str) -> List[str]:
    """Record every default scenario into ``directory`` plus the golden
    tournament leaderboard; returns paths."""
    paths = []
    for scenario in default_scenarios():
        path = _golden_path(directory, scenario)
        record(scenario, path)
        paths.append(path)
    paths.append(record_leaderboard(directory))
    paths.append(record_joint_search(directory))
    return paths


def golden_paths(directory: str) -> List[str]:
    """All golden files under ``directory``, sorted."""
    return sorted(glob.glob(os.path.join(directory, "*.golden.json")))


@dataclass(frozen=True)
class GoldenCheck:
    """One golden file's replay outcome."""

    path: str
    scenario: ScenarioSpec
    digest_equal: bool
    recorded_time: float
    replayed_time: float
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _load_doc(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise OracleError(f"no golden file at {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise OracleError(f"unreadable golden file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != GOLDEN_FORMAT:
        raise OracleError(f"{path} is not a golden-trace file")
    if doc.get("version") != GOLDEN_VERSION:
        raise OracleError(
            f"{path}: golden version {doc.get('version')!r} != "
            f"{GOLDEN_VERSION}; re-record with `repro oracle record`"
        )
    return doc


def _compare(
    path: str,
    doc: dict,
    scenario: ScenarioSpec,
    result: RunResult,
    tolerance: float = 0.0,
    strict: bool = True,
) -> GoldenCheck:
    """Compare one replayed run against its recorded snapshot."""
    mismatches: List[str] = []

    if scenario.fingerprint != doc.get("scenario_fingerprint"):
        mismatches.append(
            "scenario fingerprint drifted — the embedded scenario was "
            "edited after recording; re-record instead of editing"
        )

    digest = trace_digest(result)
    digest_equal = digest == doc.get("trace_digest")
    if not digest_equal and tolerance <= 0.0:
        mismatches.append(
            f"trace digest {digest[:16]}... != recorded "
            f"{str(doc.get('trace_digest'))[:16]}..."
        )

    def drifted(label: str, got: float, want: float) -> None:
        tol = max(tolerance, 0.0)
        if not math.isclose(got, want, rel_tol=max(tol, 1e-12), abs_tol=tol):
            mismatches.append(f"{label}: replayed {got!r} vs recorded {want!r}")

    drifted("total_time", result.total_time, float(doc["total_time"]))
    drifted(
        "imbalance_percent",
        result.imbalance_percent,
        float(doc["imbalance_percent"]),
    )
    recorded_ranks = {int(r["rank"]): r for r in doc.get("ranks", ())}
    for r in result.stats.ranks:
        want = recorded_ranks.get(r.rank)
        if want is None:
            mismatches.append(f"rank {r.rank} missing from the recording")
            continue
        drifted(f"rank {r.rank} compute", r.compute_fraction, float(want["compute"]))
        drifted(f"rank {r.rank} sync", r.sync_fraction, float(want["sync"]))
    if tuple(int(p) for p in result.final_priorities) != tuple(
        int(p) for p in doc.get("final_priorities", ())
    ):
        mismatches.append(
            f"final priorities {result.final_priorities} != recorded "
            f"{tuple(doc.get('final_priorities', ()))}"
        )

    outcome = GoldenCheck(
        path=path,
        scenario=scenario,
        digest_equal=digest_equal,
        recorded_time=float(doc["total_time"]),
        replayed_time=result.total_time,
        mismatches=tuple(mismatches),
    )
    if strict and not outcome.ok:
        raise GoldenMismatchError(
            f"{path}: " + "; ".join(outcome.mismatches)
        )
    return outcome


def check(path: str, tolerance: float = 0.0, strict: bool = True) -> GoldenCheck:
    """Replay the golden file's scenario and compare against the record.

    ``tolerance`` is a relative band on the scalar metrics; with the
    default 0.0 the trace digest must match bit-exactly (same-platform
    CI). With a positive tolerance the digest difference is reported but
    only tolerance-exceeding metric drift is a mismatch. ``strict=True``
    raises :class:`~repro.errors.GoldenMismatchError` on any mismatch.
    """
    doc = _load_doc(path)
    scenario = ScenarioSpec.from_doc(doc["scenario"])
    result = _replay(scenario)
    return _compare(
        path, doc, scenario, result, tolerance=tolerance, strict=strict
    )


def check_all(
    directory: str, tolerance: float = 0.0, strict: bool = True
) -> List[GoldenCheck]:
    """Replay every golden file under ``directory``."""
    paths = golden_paths(directory)
    if not paths:
        raise OracleError(f"no *.golden.json files under {directory}")
    return [check(p, tolerance=tolerance, strict=strict) for p in paths]


def check_all_batch(
    directory: str, tolerance: float = 0.0, strict: bool = True
) -> List[GoldenCheck]:
    """Replay every golden file through the fluid engine's *batch* path.

    All recorded scenarios go through one ``run_batch`` call (the
    vectorized presolve + per-spec event loops) and each result is
    compared against its recording exactly like :func:`check` — the
    batch-path twin of the scalar replay, guarding the stacked solver
    against drift the same way the scalar check guards the event loop.
    """
    paths = golden_paths(directory)
    if not paths:
        raise OracleError(f"no *.golden.json files under {directory}")
    docs = [_load_doc(p) for p in paths]
    scenarios = [ScenarioSpec.from_doc(d["scenario"]) for d in docs]
    results = get_engine("fluid").run_batch(
        scenarios,
        labels=[f"oracle.{s.name}" for s in scenarios],
        options={"check_invariants": True},
    )
    return [
        _compare(
            path, doc, scenario, result.run,
            tolerance=tolerance, strict=strict,
        )
        for path, doc, scenario, result in zip(
            paths, docs, scenarios, results
        )
    ]


# -- the golden tournament leaderboard -----------------------------------------

#: The one leaderboard artifact ``record_all`` pins next to the traces.
LEADERBOARD_GOLDEN_BASENAME = "tournament-smoke.leaderboard.json"


def smoke_tournament_config() -> TournamentConfig:
    """The recorded tournament: small enough for CI, wide enough to
    cover both policy families and both corpus cell kinds."""
    return TournamentConfig(
        policies=("st", "paper-c", "propshare", "hysteresis"),
        corpus="mixed",
        n_scenarios=6,
        seed=2008,
    )


def leaderboard_path(directory: str) -> str:
    return os.path.join(directory, LEADERBOARD_GOLDEN_BASENAME)


def record_leaderboard(directory: str) -> str:
    """Run the smoke tournament fresh and write its artifact."""
    board = run_tournament(smoke_tournament_config())
    return board.save(leaderboard_path(directory))


@dataclass(frozen=True)
class LeaderboardCheck:
    """The golden leaderboard's replay outcome."""

    path: str
    recorded_fingerprint: str
    replayed_fingerprint: str

    @property
    def ok(self) -> bool:
        return self.recorded_fingerprint == self.replayed_fingerprint


def check_leaderboard(directory: str, strict: bool = True) -> LeaderboardCheck:
    """Re-run the recorded leaderboard's config and compare fingerprints.

    The whole comparison is one fingerprint equality: the canonical
    leaderboard document covers the corpus (scenario fingerprints), the
    per-cell total times and every aggregate, so any drift in corpus
    drawing, policy planning or engine physics shows up here. The
    artifact's own embedded fingerprint is verified on load, so a
    hand-edited recording fails before it is ever replayed.
    """
    path = leaderboard_path(directory)
    try:
        recorded = Leaderboard.load(path)
    except PersistenceError as exc:
        raise OracleError(str(exc)) from exc
    replayed = run_tournament(recorded.config)
    outcome = LeaderboardCheck(
        path=path,
        recorded_fingerprint=recorded.fingerprint,
        replayed_fingerprint=replayed.fingerprint,
    )
    if strict and not outcome.ok:
        raise GoldenMismatchError(
            f"{path}: leaderboard fingerprint "
            f"{outcome.replayed_fingerprint[:16]}... != recorded "
            f"{outcome.recorded_fingerprint[:16]}...; the tournament is "
            "no longer reproducing the recorded outcome — re-record with "
            "`repro oracle record` if the change is intentional"
        )
    return outcome


# -- the golden joint search ----------------------------------------------------

#: The pinned joint-search result. The suffix is deliberately NOT
#: ``.golden.json``: that glob is the single-trace snapshot contract
#: (``golden_paths``), and a search recording has a different shape.
JOINT_SEARCH_GOLDEN_BASENAME = "joint-search.search.json"

JOINT_SEARCH_FORMAT = "repro-golden-joint-search"
JOINT_SEARCH_VERSION = 1

#: The recorded search's knobs: 3 levels × |gap| ≤ 2 per core and the
#: symmetry-pruned 4-rank mapping axis (24 → 3 classes), 243 candidates.
_JOINT_LEVELS = (4, 5, 6)
_JOINT_MAX_GAP = 2


def joint_search_scenario() -> ScenarioSpec:
    """The workload the golden joint search optimises: a skewed 4-rank
    MetBench run where both the pairing and the priorities matter."""
    return ScenarioSpec(
        name="joint-smoke",
        kind="metbench",
        works=(8.0e8, 2.4e9, 1.2e9, 2.0e9),
        iterations=2,
    )


def joint_search_path(directory: str) -> str:
    return os.path.join(directory, JOINT_SEARCH_GOLDEN_BASENAME)


def _run_joint_search(scenario: ScenarioSpec):
    """One recording/replay path: a fresh System, the symmetry-pruned
    joint search, and the winner re-run once for its trace digest."""
    from repro.core import joint_search
    from repro.machine.system import System, SystemConfig

    system = System(SystemConfig(seed=scenario.seed))
    result = joint_search(
        system,
        scenario.programs,
        n_ranks=scenario.n_ranks,
        levels=_JOINT_LEVELS,
        max_gap=_JOINT_MAX_GAP,
        keep_top=1,
    )
    best = result.best
    run = system.run(
        list(scenario.programs()),
        mapping=best.mapping,
        priorities=best.priority_dict,
        label=f"oracle.joint.{scenario.name}",
    )
    return result, trace_digest(run)


def record_joint_search(directory: str) -> str:
    """Run the golden joint search fresh and write its recording."""
    scenario = joint_search_scenario()
    result, digest = _run_joint_search(scenario)
    best = result.best
    doc = {
        "format": JOINT_SEARCH_FORMAT,
        "version": JOINT_SEARCH_VERSION,
        "scenario": scenario.to_doc(),
        "scenario_fingerprint": scenario.fingerprint,
        "levels": list(_JOINT_LEVELS),
        "max_gap": _JOINT_MAX_GAP,
        "evaluations": result.evaluated,
        "best_mapping": {str(r): c for r, c in best.mapping.rank_to_cpu},
        "best_priorities": {str(r): p for r, p in best.priorities},
        "best_time": result.best_time,
        "best_imbalance_percent": result.entries[0][2],
        "best_trace_digest": digest,
    }
    path = joint_search_path(directory)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


@dataclass(frozen=True)
class JointSearchCheck:
    """The golden joint search's replay outcome."""

    path: str
    recorded_digest: str
    replayed_digest: str
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_joint_search(directory: str, strict: bool = True) -> JointSearchCheck:
    """Re-run the recorded joint search and compare the winner.

    The whole pruned (mapping × priority) sweep re-runs — enumeration
    order, symmetry pruning, ranking tie-breaks and the simulator's
    physics all have to reproduce for the winner's mapping, priorities,
    time and trace digest to come out identical.
    """
    path = joint_search_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise OracleError(f"no joint-search recording at {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise OracleError(f"unreadable joint-search file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != JOINT_SEARCH_FORMAT:
        raise OracleError(f"{path} is not a joint-search recording")
    if doc.get("version") != JOINT_SEARCH_VERSION:
        raise OracleError(
            f"{path}: joint-search version {doc.get('version')!r} != "
            f"{JOINT_SEARCH_VERSION}; re-record with `repro oracle record`"
        )

    scenario = ScenarioSpec.from_doc(doc["scenario"])
    mismatches: List[str] = []
    if scenario.fingerprint != doc.get("scenario_fingerprint"):
        mismatches.append(
            "scenario fingerprint drifted — the embedded scenario was "
            "edited after recording; re-record instead of editing"
        )
    result, digest = _run_joint_search(scenario)
    best = result.best
    if tuple(doc["levels"]) != _JOINT_LEVELS or doc["max_gap"] != _JOINT_MAX_GAP:
        mismatches.append(
            f"recorded knobs levels={doc['levels']} max_gap={doc['max_gap']} "
            f"!= this build's ({list(_JOINT_LEVELS)}, {_JOINT_MAX_GAP})"
        )
    if result.evaluated != int(doc["evaluations"]):
        mismatches.append(
            f"evaluations {result.evaluated} != recorded {doc['evaluations']} "
            "— the candidate space (or its pruning) changed"
        )
    mapping = {str(r): c for r, c in best.mapping.rank_to_cpu}
    if mapping != doc["best_mapping"]:
        mismatches.append(
            f"best mapping {mapping} != recorded {doc['best_mapping']}"
        )
    priorities = {str(r): p for r, p in best.priorities}
    if priorities != doc["best_priorities"]:
        mismatches.append(
            f"best priorities {priorities} != recorded {doc['best_priorities']}"
        )
    if result.best_time != float(doc["best_time"]):
        mismatches.append(
            f"best time {result.best_time!r} != recorded {doc['best_time']!r}"
        )
    if digest != doc["best_trace_digest"]:
        mismatches.append(
            f"winner's trace digest {digest[:16]}... != recorded "
            f"{str(doc['best_trace_digest'])[:16]}..."
        )
    outcome = JointSearchCheck(
        path=path,
        recorded_digest=str(doc["best_trace_digest"]),
        replayed_digest=digest,
        mismatches=tuple(mismatches),
    )
    if strict and not outcome.ok:
        raise GoldenMismatchError(f"{path}: " + "; ".join(outcome.mismatches))
    return outcome
