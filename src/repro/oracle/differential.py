"""Differential cross-model conformance: one scenario, every engine.

The reproduction ships three ways of answering "how long does this MPI
application take on the balanced machine" — the registered execution
engines of :mod:`repro.scenarios` (``fluid``, ``cycle``, ``analytic``).
After PR 1's fast-path layer (memoized solves, incremental rates,
persisted tables) these paths can drift apart silently. This module
makes the drift measurable: :func:`check_conformance` pushes one
:class:`~repro.scenarios.ScenarioSpec` through **every engine in the
registry** and compares within declared tolerances, plus two *exact*
cross-checks (incremental-rates on/off trace digests and the
cache-equality model invariant). Register a fourth engine and it is
cross-checked against the incumbents with no oracle change.

The spec type, the generator and the digest helper all live in
:mod:`repro.scenarios` now; this module re-exports them (and keeps
``run_fluid``/``run_cycle``/``analytic_estimate`` as deprecated shims)
so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OracleError, ValidationError
from repro.mpi.runtime import RunResult
from repro.oracle.checker import verify_model, verify_run
from repro.scenarios.engines import fast_cycle_table, trace_digest
from repro.scenarios.generator import ScenarioGenerator
from repro.scenarios.registry import all_engines, get_engine
from repro.scenarios.spec import ScenarioSpec
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.throughput import ThroughputTable
from repro.util.validation import check_positive

__all__ = [
    "Scenario",
    "ScenarioGenerator",
    "Tolerances",
    "ConformanceResult",
    "ClusterEquivalenceCheck",
    "FuzzReport",
    "trace_digest",
    "run_fluid",
    "run_cycle",
    "analytic_estimate",
    "check_conformance",
    "check_cluster_equivalence",
    "fuzz",
    "fast_cycle_table",
]

#: Deprecated alias — the oracle's ``Scenario`` grew into the canonical
#: :class:`repro.scenarios.ScenarioSpec`. Import that instead.
Scenario = ScenarioSpec


# -- deprecated single-path shims -------------------------------------------------
#
# The three hard-wired model paths are now engines; these wrappers keep
# the historical signatures (returning a raw RunResult / float) for old
# callers and tests. New code should resolve an engine from the registry.


def run_fluid(
    scenario: ScenarioSpec,
    incremental_rates: bool = True,
    check_invariants: bool = False,
) -> RunResult:
    """Deprecated: use ``get_engine("fluid").run(spec)``."""
    return get_engine("fluid").run(
        scenario,
        label=f"oracle.{scenario.name}",
        options={
            "incremental_rates": incremental_rates,
            "check_invariants": check_invariants,
        },
    ).run


def run_cycle(
    scenario: ScenarioSpec, table: Optional[ThroughputTable] = None
) -> RunResult:
    """Deprecated: use ``get_engine("cycle").run(spec)``."""
    return get_engine("cycle").run(
        scenario,
        label=f"oracle.{scenario.name}.cycle",
        options={"table": table if table is not None else fast_cycle_table(scenario.seed)},
    ).run


def analytic_estimate(
    scenario: ScenarioSpec, model: Optional[AnalyticThroughputModel] = None
) -> float:
    """Deprecated: use ``get_engine("analytic").run(spec)``."""
    options = {"model": model} if model is not None else None
    return get_engine("analytic").run(scenario, options=options).total_time


# -- conformance ----------------------------------------------------------------


@dataclass(frozen=True)
class Tolerances:
    """Declared agreement bands between the engine classes.

    The analytic and cycle models sit at different abstraction levels;
    the regime-agreement tests (``tests/smt/test_model_agreement.py``)
    bound their IPC ratio to well under 3x across the priority gaps the
    experiments use, and the closed-form estimate ignores communication
    entirely — hence the asymmetric band on the estimate side.
    ``model_time_ratio`` applies to every trace-producing engine,
    ``estimate_lower``/``estimate_upper`` to every closed-form one.
    """

    #: Max total-time ratio between fluid and any trace-producing engine.
    model_time_ratio: float = 3.0
    #: Fluid total time must be >= estimate * lower (estimates are
    #: optimistic compute-only bounds) and <= estimate * upper.
    estimate_lower: float = 0.5
    estimate_upper: float = 4.0

    def __post_init__(self) -> None:
        check_positive("model_time_ratio", self.model_time_ratio)
        check_positive("estimate_lower", self.estimate_lower)
        check_positive("estimate_upper", self.estimate_upper)


@dataclass(frozen=True)
class ConformanceResult:
    """Everything :func:`check_conformance` measured for one scenario."""

    scenario: ScenarioSpec
    fluid_time: float
    cycle_time: float
    estimate_time: float
    incremental_digest_equal: bool
    disagreements: Tuple[str, ...] = ()
    #: Total time per registered engine, in registry (name) order.
    engine_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.disagreements


def _engine_options(
    name: str,
    scenario: ScenarioSpec,
    table: Optional[ThroughputTable],
    model: Optional[AnalyticThroughputModel],
) -> Optional[dict]:
    """Steering knobs for the engines the oracle knows how to speed up."""
    if name == "cycle":
        return {"table": table if table is not None else fast_cycle_table(scenario.seed)}
    if name == "analytic" and model is not None:
        return {"model": model}
    return None


def check_conformance(
    scenario: ScenarioSpec,
    tolerances: Optional[Tolerances] = None,
    table: Optional[ThroughputTable] = None,
    model: Optional[AnalyticThroughputModel] = None,
    run_invariants: bool = True,
) -> ConformanceResult:
    """Run ``scenario`` through every registered engine and compare.

    Exact checks (any mismatch is a disagreement regardless of
    tolerances): incremental-rates on/off trace digests, and the run
    invariants over the fluid result. Tolerance checks, against the
    fluid reference: total time of every other trace-producing engine
    (``model_time_ratio`` band) and of every closed-form engine
    (``estimate_lower``/``estimate_upper`` band).
    """
    tol = tolerances or Tolerances()
    disagreements: List[str] = []

    fluid_engine = get_engine("fluid")
    label = f"oracle.{scenario.name}"
    fluid = fluid_engine.run(
        scenario, label=label, options={"incremental_rates": True}
    )
    full = fluid_engine.run(
        scenario, label=label, options={"incremental_rates": False}
    )
    digest_equal = fluid.digest == full.digest
    if not digest_equal:
        disagreements.append(
            "incremental_rates=True and =False produced different traces "
            f"(times {fluid.total_time} vs {full.total_time})"
        )

    if run_invariants:
        try:
            verify_run(fluid.run)
            verify_model(model or AnalyticThroughputModel())
        except Exception as exc:  # InvariantViolation, surfaced as text
            disagreements.append(f"invariant sweep failed: {exc}")

    times: Dict[str, float] = {"fluid": fluid.total_time}
    for engine in all_engines():
        if engine.name == "fluid":
            continue
        result = engine.run(
            scenario,
            label=f"{label}.{engine.name}",
            options=_engine_options(engine.name, scenario, table, model),
        )
        times[engine.name] = result.total_time
        if result.digest is not None:
            # Trace-producing engine: symmetric total-time ratio band.
            ratio = (
                fluid.total_time / result.total_time
                if result.total_time
                else float("inf")
            )
            if not (1.0 / tol.model_time_ratio <= ratio <= tol.model_time_ratio):
                disagreements.append(
                    f"fluid/{engine.name} total-time ratio {ratio:.3f} "
                    f"outside ±{tol.model_time_ratio}x (fluid "
                    f"{fluid.total_time:.4f}s, {engine.name} "
                    f"{result.total_time:.4f}s)"
                )
        else:
            # Closed-form engine: asymmetric band around the estimate.
            estimate = result.total_time
            if not (
                estimate * tol.estimate_lower
                <= fluid.total_time
                <= estimate * tol.estimate_upper
            ):
                disagreements.append(
                    f"fluid time {fluid.total_time:.4f}s outside "
                    f"[{tol.estimate_lower}, {tol.estimate_upper}]x of the "
                    f"{engine.name} closed-form estimate {estimate:.4f}s"
                )

    return ConformanceResult(
        scenario=scenario,
        fluid_time=fluid.total_time,
        cycle_time=times.get("cycle", 0.0),
        estimate_time=times.get("analytic", 0.0),
        incremental_digest_equal=digest_equal,
        disagreements=tuple(disagreements),
        engine_times=tuple(sorted(times.items())),
    )


# -- the 1-node cluster law -------------------------------------------------------


@dataclass(frozen=True)
class ClusterEquivalenceCheck:
    """Outcome of the 1-node cluster differential law for one scenario.

    The law: running a scenario on a 1-node cluster (the same chip
    behind a network nothing ever crosses) must be *bit-identical* to
    running it on the plain single-chip :class:`~repro.machine.system.System`
    — same trace digest, same total time. This is the anchor that lets
    every cluster result be trusted relative to the golden single-chip
    physics: the cluster path is the single-chip path plus topology,
    never a parallel reimplementation that can drift.
    """

    scenario: ScenarioSpec
    single_chip_digest: str
    cluster_digest: str
    single_chip_time: float
    cluster_time: float
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_cluster_equivalence(
    scenario: Optional[ScenarioSpec] = None,
    strict: bool = False,
) -> ClusterEquivalenceCheck:
    """Verify the 1-node cluster law on ``scenario`` (or a default).

    ``scenario`` must be a single-chip spec (no topology); the check
    derives its 1-node twin through the v3 wire format (``to_doc`` +
    a ``{"n_nodes": 1}`` topology + ``from_doc``), runs both through
    the fluid engine and demands digest identity, then cross-checks the
    analytic engine's closed-form times for exact equality as well.
    With ``strict=True`` a violation raises :class:`~repro.errors.OracleError`.
    """
    if scenario is None:
        scenario = ScenarioSpec(
            name="cluster-equivalence",
            kind="barrier_loop",
            works=(1.0e9, 3.0e9, 2.0e9, 4.0e9),
            iterations=2,
            priorities=((0, 4), (1, 6), (2, 4), (3, 5)),
        )
    if scenario.topology is not None:
        raise ValidationError(
            "check_cluster_equivalence needs a single-chip scenario; "
            f"{scenario.name!r} already carries a topology"
        )
    doc = scenario.to_doc()
    doc["topology"] = {"n_nodes": 1}
    doc["spec_version"] = 3
    one_node = ScenarioSpec.from_doc(doc)

    fluid = get_engine("fluid")
    label = f"oracle.cluster-eq.{scenario.name}"
    base = fluid.run(scenario, label=label)
    clustered = fluid.run(one_node, label=f"{label}.1node")

    mismatches: List[str] = []
    if base.digest != clustered.digest:
        mismatches.append(
            f"1-node cluster trace digest {str(clustered.digest)[:16]}... != "
            f"single-chip {str(base.digest)[:16]}..."
        )
    if base.total_time != clustered.total_time:
        mismatches.append(
            f"1-node cluster total time {clustered.total_time!r} != "
            f"single-chip {base.total_time!r}"
        )
    analytic = get_engine("analytic")
    est_base = analytic.run(scenario, label=label).total_time
    est_cluster = analytic.run(one_node, label=f"{label}.1node").total_time
    if est_base != est_cluster:
        mismatches.append(
            f"1-node analytic estimate {est_cluster!r} != "
            f"single-chip {est_base!r}"
        )

    outcome = ClusterEquivalenceCheck(
        scenario=scenario,
        single_chip_digest=str(base.digest),
        cluster_digest=str(clustered.digest),
        single_chip_time=base.total_time,
        cluster_time=clustered.total_time,
        mismatches=tuple(mismatches),
    )
    if strict and not outcome.ok:
        raise OracleError(
            f"1-node cluster law violated for {scenario.name!r}: "
            + "; ".join(outcome.mismatches)
        )
    return outcome


# -- randomized fuzzing ----------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    budget: int
    seed: int
    checked: int = 0
    failures: List[ConformanceResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.checked}/{self.budget} scenarios conform "
                f"(seed {self.seed})"
            )
        lines = [
            f"fuzz: {len(self.failures)} of {self.checked} scenarios "
            f"disagree (seed {self.seed}):"
        ]
        for res in self.failures:
            lines.append(f"  {res.scenario.name}:")
            lines += [f"    - {d}" for d in res.disagreements]
        return "\n".join(lines)


def fuzz(
    budget: int,
    seed: int = 0,
    tolerances: Optional[Tolerances] = None,
    stop_on_failure: bool = False,
) -> FuzzReport:
    """Run ``budget`` random scenarios through :func:`check_conformance`.

    One short-window cycle table and one analytic model are shared
    across the whole campaign, so repeated machine states are measured
    once (the fuzzer's priority/profile space is small; campaigns of
    hundreds of scenarios stay in minutes).
    """
    check_positive("budget", budget)
    gen = ScenarioGenerator(seed)
    table = fast_cycle_table(seed=0)
    model = AnalyticThroughputModel()
    report = FuzzReport(budget=int(budget), seed=int(seed))
    for _ in range(int(budget)):
        scenario = gen.draw()
        result = check_conformance(
            scenario, tolerances=tolerances, table=table, model=model
        )
        report.checked += 1
        if not result.ok:
            report.failures.append(result)
            if stop_on_failure:
                break
    return report
