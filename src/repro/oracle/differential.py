"""Differential cross-model conformance: one scenario, three models.

The reproduction ships three ways of answering "how long does this MPI
application take on the balanced machine":

1. the **fluid runtime** driven by the analytic throughput model (the
   default simulator — every experiment table comes from it),
2. the same runtime driven by the **cycle model**
   (:class:`~repro.smt.throughput.ThroughputTable` over the pipeline
   simulator — the decode mechanism's ground truth), and
3. a **closed-form analytic estimate** that never runs an event loop at
   all (per-rank work over the steady-state chip IPC).

After PR 1's fast-path layer (memoized solves, incremental rates,
persisted tables) these paths can drift apart silently. This module
makes the drift measurable: a :class:`Scenario` is a declarative,
sha256-fingerprintable description of one run; :func:`check_conformance`
pushes it through all three paths and compares within declared
tolerances, plus two *exact* cross-checks (incremental-rates on/off and
the cache-equality model invariant). :class:`ScenarioGenerator` draws
random scenarios from seeded :mod:`repro.util.rng` streams for
property-style fuzzing (``repro oracle fuzz``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, OracleError
from repro.machine.mapping import ProcessMapping, paper_mapping
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RunResult, RuntimeConfig
from repro.oracle.checker import verify_model, verify_run
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.instructions import BASE_PROFILES
from repro.smt.throughput import ThroughputTable
from repro.util.rng import RngStreams
from repro.util.validation import check_choice, check_positive
from repro.workloads.bt_mz import bt_mz_programs
from repro.workloads.generators import barrier_loop_programs
from repro.workloads.metbench import metbench_programs

__all__ = [
    "Scenario",
    "ScenarioGenerator",
    "Tolerances",
    "ConformanceResult",
    "FuzzReport",
    "trace_digest",
    "run_fluid",
    "run_cycle",
    "analytic_estimate",
    "check_conformance",
    "fuzz",
    "fast_cycle_table",
]

_KINDS = ("barrier_loop", "metbench", "btmz")
_MAPPINGS = ("identity", "btmz", "siesta")


@dataclass(frozen=True)
class Scenario:
    """A declarative, serialisable description of one simulated run.

    Everything that determines the physics is here — workload shape,
    per-rank work, mapping, static priorities, seed — so a scenario can
    be fingerprinted, persisted next to a golden trace, and replayed by
    a later revision of the simulator.
    """

    name: str
    kind: str  # "barrier_loop" | "metbench" | "btmz"
    works: Tuple[float, ...]
    iterations: int
    profile: str = "hpc"
    mapping: str = "identity"
    #: rank -> OS-settable hardware priority; empty = defaults (MEDIUM).
    priorities: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        check_choice("scenario.kind", self.kind, _KINDS)
        check_choice("scenario.mapping", self.mapping, _MAPPINGS)
        check_positive("scenario.iterations", self.iterations)
        if not self.works:
            raise ConfigurationError(f"scenario {self.name!r} has no works")
        if self.profile not in BASE_PROFILES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown profile {self.profile!r}"
            )
        for rank, prio in self.priorities:
            if not 1 <= prio <= 6:
                raise ConfigurationError(
                    f"scenario {self.name!r}: rank {rank} priority {prio} "
                    "is not OS-settable (1-6)"
                )

    @property
    def n_ranks(self) -> int:
        return len(self.works)

    def mapping_obj(self) -> ProcessMapping:
        if self.mapping == "identity":
            return ProcessMapping.identity(self.n_ranks)
        return paper_mapping(self.mapping)

    def priority_dict(self) -> Optional[Dict[int, int]]:
        return dict(self.priorities) if self.priorities else None

    def programs(self):
        """Fresh (single-use) rank generator programs for one run."""
        if self.kind == "barrier_loop":
            return barrier_loop_programs(
                list(self.works), iterations=self.iterations, profile=self.profile
            )
        if self.kind == "metbench":
            return metbench_programs(
                list(self.works), iterations=self.iterations, load=self.profile
            )
        return bt_mz_programs(
            list(self.works), iterations=self.iterations, profile=self.profile
        )

    # -- serialisation ---------------------------------------------------------

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "works": list(self.works),
            "iterations": self.iterations,
            "profile": self.profile,
            "mapping": self.mapping,
            "priorities": [list(p) for p in self.priorities],
            "seed": self.seed,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Scenario":
        try:
            return cls(
                name=str(doc["name"]),
                kind=str(doc["kind"]),
                works=tuple(float(w) for w in doc["works"]),
                iterations=int(doc["iterations"]),
                profile=str(doc.get("profile", "hpc")),
                mapping=str(doc.get("mapping", "identity")),
                priorities=tuple(
                    (int(r), int(p)) for r, p in doc.get("priorities", ())
                ),
                seed=int(doc.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise OracleError(f"malformed scenario document: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form — the golden-file key."""
        payload = json.dumps(self.to_doc(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def trace_digest(result: RunResult) -> str:
    """sha256 over the full-precision interval stream of a finished run.

    ``repr(float)`` round-trips exactly, so two runs share a digest iff
    their traces are bit-identical — the equality the determinism and
    incremental-rates guarantees promise.
    """
    h = hashlib.sha256()
    for tl in result.trace:
        for iv in tl.intervals:
            h.update(
                f"{tl.rank}:{iv.state.value}:{iv.start!r}:{iv.end!r}\n".encode()
            )
    return h.hexdigest()


# -- the three model paths -------------------------------------------------------


def run_fluid(
    scenario: Scenario,
    incremental_rates: bool = True,
    check_invariants: bool = False,
) -> RunResult:
    """The default simulator: fluid runtime + analytic model."""
    config = SystemConfig(
        seed=scenario.seed,
        runtime=RuntimeConfig(
            incremental_rates=incremental_rates,
            check_invariants=check_invariants,
        ),
    )
    return System(config).run(
        scenario.programs(),
        mapping=scenario.mapping_obj(),
        priorities=scenario.priority_dict(),
        label=f"oracle.{scenario.name}",
    )


def fast_cycle_table(seed: int = 0) -> ThroughputTable:
    """A cycle model with short measurement windows (oracle-speed).

    IPC from an 8k-cycle window is stable to a few percent for the
    bundled profiles — plenty under the cross-model tolerances, and an
    order of magnitude faster than the production windows. Share one
    table across a fuzz campaign so repeated (loads, priorities) keys
    are measured once.
    """
    return ThroughputTable(warmup_cycles=2_000, measure_cycles=8_000, seed=seed)


def run_cycle(
    scenario: Scenario, table: Optional[ThroughputTable] = None
) -> RunResult:
    """The same scenario through the cycle-level throughput model."""
    system = System(SystemConfig(model="cycle", seed=scenario.seed))
    # Swap in the (possibly shared, short-window) measurement table; the
    # System built its own production-window table we never query.
    system.model = table if table is not None else fast_cycle_table(scenario.seed)
    return system.run(
        scenario.programs(),
        mapping=scenario.mapping_obj(),
        priorities=scenario.priority_dict(),
        label=f"oracle.{scenario.name}.cycle",
    )


def analytic_estimate(
    scenario: Scenario, model: Optional[AnalyticThroughputModel] = None
) -> float:
    """Closed-form execution-time estimate, no event loop.

    Steady state: every mapped context runs its profile at its static
    priority; the bottleneck rank's total work over its chip-coupled IPC
    bounds the run. Communication, init phases and spin-wait rate shifts
    are deliberately ignored — the conformance tolerance absorbs them.
    """
    model = model or AnalyticThroughputModel()
    mapping = scenario.mapping_obj()
    prios = scenario.priority_dict() or {}
    profile = BASE_PROFILES[scenario.profile]

    n_cores = max(mapping.cpu_of(r) for r in range(scenario.n_ranks)) // 2 + 1
    loads: List[List[Optional[object]]] = [[None, None] for _ in range(n_cores)]
    priolist = [[4, 4] for _ in range(n_cores)]
    for rank in range(scenario.n_ranks):
        cpu = mapping.cpu_of(rank)
        loads[cpu // 2][cpu % 2] = profile
        priolist[cpu // 2][cpu % 2] = prios.get(rank, 4)
    core_states = tuple(
        (loads[c][0], loads[c][1], priolist[c][0], priolist[c][1])
        for c in range(n_cores)
    )
    ipcs = model.chip_ipc(core_states)

    freq = SystemConfig().chip.freq_hz
    worst = 0.0
    for rank in range(scenario.n_ranks):
        cpu = mapping.cpu_of(rank)
        ipc = ipcs[cpu // 2][cpu % 2]
        if ipc <= 0.0:
            raise OracleError(
                f"scenario {scenario.name!r}: rank {rank} has zero steady-state IPC"
            )
        total_work = scenario.works[rank] * scenario.iterations
        worst = max(worst, total_work / (ipc * freq))
    return worst


# -- conformance ----------------------------------------------------------------


@dataclass(frozen=True)
class Tolerances:
    """Declared agreement bands between the model paths.

    The analytic and cycle models sit at different abstraction levels;
    the regime-agreement tests (``tests/smt/test_model_agreement.py``)
    bound their IPC ratio to well under 3x across the priority gaps the
    experiments use, and the estimate ignores communication entirely —
    hence the asymmetric band on the estimate side.
    """

    #: Max ratio between fluid-analytic and fluid-cycle total times.
    model_time_ratio: float = 3.0
    #: Fluid total time must be >= estimate * lower (estimate is an
    #: optimistic compute-only bound) and <= estimate * upper.
    estimate_lower: float = 0.5
    estimate_upper: float = 4.0

    def __post_init__(self) -> None:
        check_positive("model_time_ratio", self.model_time_ratio)
        check_positive("estimate_lower", self.estimate_lower)
        check_positive("estimate_upper", self.estimate_upper)


@dataclass(frozen=True)
class ConformanceResult:
    """Everything :func:`check_conformance` measured for one scenario."""

    scenario: Scenario
    fluid_time: float
    cycle_time: float
    estimate_time: float
    incremental_digest_equal: bool
    disagreements: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.disagreements


def check_conformance(
    scenario: Scenario,
    tolerances: Optional[Tolerances] = None,
    table: Optional[ThroughputTable] = None,
    model: Optional[AnalyticThroughputModel] = None,
    run_invariants: bool = True,
) -> ConformanceResult:
    """Run ``scenario`` through every model path and compare.

    Exact checks (any mismatch is a disagreement regardless of
    tolerances): incremental-rates on/off trace digests, and the run
    invariants over the fluid result. Tolerance checks: fluid vs cycle
    total time, fluid vs closed-form estimate.
    """
    tol = tolerances or Tolerances()
    disagreements: List[str] = []

    fluid = run_fluid(scenario, incremental_rates=True)
    full = run_fluid(scenario, incremental_rates=False)
    digest_equal = trace_digest(fluid) == trace_digest(full)
    if not digest_equal:
        disagreements.append(
            "incremental_rates=True and =False produced different traces "
            f"(times {fluid.total_time} vs {full.total_time})"
        )

    if run_invariants:
        try:
            verify_run(fluid)
            verify_model(model or AnalyticThroughputModel())
        except Exception as exc:  # InvariantViolation, surfaced as text
            disagreements.append(f"invariant sweep failed: {exc}")

    cycle = run_cycle(scenario, table=table)
    ratio = fluid.total_time / cycle.total_time if cycle.total_time else float("inf")
    if not (1.0 / tol.model_time_ratio <= ratio <= tol.model_time_ratio):
        disagreements.append(
            f"fluid/cycle total-time ratio {ratio:.3f} outside "
            f"±{tol.model_time_ratio}x (fluid {fluid.total_time:.4f}s, "
            f"cycle {cycle.total_time:.4f}s)"
        )

    estimate = analytic_estimate(scenario, model=model)
    if not (
        estimate * tol.estimate_lower
        <= fluid.total_time
        <= estimate * tol.estimate_upper
    ):
        disagreements.append(
            f"fluid time {fluid.total_time:.4f}s outside "
            f"[{tol.estimate_lower}, {tol.estimate_upper}]x of the "
            f"closed-form estimate {estimate:.4f}s"
        )

    return ConformanceResult(
        scenario=scenario,
        fluid_time=fluid.total_time,
        cycle_time=cycle.total_time,
        estimate_time=estimate,
        incremental_digest_equal=digest_equal,
        disagreements=tuple(disagreements),
    )


# -- randomized scenario generation ---------------------------------------------


class ScenarioGenerator:
    """Seeded random scenarios for property-style fuzzing.

    Determinism contract: ``ScenarioGenerator(seed)`` yields the same
    scenario sequence forever (draws come from a named
    :class:`~repro.util.rng.RngStreams` stream, so adding other
    consumers of randomness elsewhere cannot perturb it).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = RngStreams(self.seed).get("oracle.fuzz")
        self._count = 0

    def draw(self) -> Scenario:
        rng = self._rng
        self._count += 1
        kind = _KINDS[int(rng.integers(0, len(_KINDS)))]
        n_ranks = int(rng.choice((2, 4)))
        mapping = "identity"
        if n_ranks == 4 and rng.random() < 0.4:
            mapping = str(rng.choice(("btmz", "siesta")))
        works = tuple(
            float(w)
            for w in rng.lognormal(mean=0.0, sigma=0.6, size=n_ranks) * 1.5e9
        )
        iterations = int(rng.integers(2, 5))
        profile = str(rng.choice(("hpc", "mem", "fpu", "int")))
        priorities: Tuple[Tuple[int, int], ...] = ()
        if rng.random() < 0.7:
            priorities = tuple(
                (r, int(rng.integers(2, 7))) for r in range(n_ranks)
            )
        return Scenario(
            name=f"fuzz-{self.seed}-{self._count}",
            kind=kind,
            works=works,
            iterations=iterations,
            profile=profile,
            mapping=mapping,
            priorities=priorities,
            seed=self.seed,
        )

    def take(self, n: int) -> List[Scenario]:
        return [self.draw() for _ in range(n)]


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    budget: int
    seed: int
    checked: int = 0
    failures: List[ConformanceResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.checked}/{self.budget} scenarios conform "
                f"(seed {self.seed})"
            )
        lines = [
            f"fuzz: {len(self.failures)} of {self.checked} scenarios "
            f"disagree (seed {self.seed}):"
        ]
        for res in self.failures:
            lines.append(f"  {res.scenario.name}:")
            lines += [f"    - {d}" for d in res.disagreements]
        return "\n".join(lines)


def fuzz(
    budget: int,
    seed: int = 0,
    tolerances: Optional[Tolerances] = None,
    stop_on_failure: bool = False,
) -> FuzzReport:
    """Run ``budget`` random scenarios through :func:`check_conformance`.

    One short-window cycle table and one analytic model are shared
    across the whole campaign, so repeated machine states are measured
    once (the fuzzer's priority/profile space is small; campaigns of
    hundreds of scenarios stay in minutes).
    """
    check_positive("budget", budget)
    gen = ScenarioGenerator(seed)
    table = fast_cycle_table(seed=0)
    model = AnalyticThroughputModel()
    report = FuzzReport(budget=int(budget), seed=int(seed))
    for _ in range(int(budget)):
        scenario = gen.draw()
        result = check_conformance(
            scenario, tolerances=tolerances, table=table, model=model
        )
        report.checked += 1
        if not result.ok:
            report.failures.append(result)
            if stop_on_failure:
                break
    return report
