"""repro — reproduction of Boneti et al., *Balancing HPC Applications
Through Smart Allocation of Resources in MT Processors* (IPDPS 2008).

The package simulates the paper's whole stack in Python:

* :mod:`repro.smt` — a POWER5-like dual-core 2-way-SMT chip whose decode
  slots are divided between hardware threads by *priorities* (the
  paper's Tables I-III), with cycle-level and closed-form throughput
  models.
* :mod:`repro.kernel` — standard vs. patched Linux behaviour around those
  priorities, including the ``/proc/<PID>/hmt_priority`` interface the
  paper adds.
* :mod:`repro.mpi` — a deterministic fluid-rate MPI runtime whose ranks
  busy-wait like MPI-CH, so priority changes reshape application balance.
* :mod:`repro.workloads` — MetBench, BT-MZ and SIESTA models.
* :mod:`repro.core` — the contribution: static priority balancing, plus
  the dynamic balancer the paper proposes as future work.
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import System, SystemConfig, ProcessMapping
    from repro.workloads import metbench_programs

    system = System(SystemConfig(kernel="patched"))
    result = system.run(
        metbench_programs(light_work=1.5e10, heavy_work=6.0e10),
        mapping=ProcessMapping.identity(4),
        priorities={0: 4, 1: 6, 2: 4, 3: 6},
    )
    print(result.total_time, result.imbalance_percent)
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    PrivilegeError,
    InvalidPriorityError,
    MpiError,
    DeadlockError,
    MappingError,
    TraceError,
    WorkloadError,
    SimulationError,
)
from repro.machine import ProcessMapping, System, SystemConfig, paper_mapping, paired_mapping
from repro.mpi import RunResult, RuntimeConfig, RankApi
from repro.smt import (
    HardwarePriority,
    PrivilegeLevel,
    decode_share,
    decode_allocation,
    slice_length,
    LoadProfile,
    AnalyticThroughputModel,
    ThroughputTable,
)
from repro.trace import Trace, TraceStats, compute_stats, render_gantt
from repro.cluster import (
    ClusterSystem,
    ClusterSystemConfig,
    ClusterConfig,
    ClusterMachine,
    NetworkModel,
    NETWORK_KINDS,
    TopologySpec,
    UniformNetwork,
    TwoLevelTree,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "PrivilegeError",
    "InvalidPriorityError",
    "MpiError",
    "DeadlockError",
    "MappingError",
    "TraceError",
    "WorkloadError",
    "SimulationError",
    "ProcessMapping",
    "System",
    "SystemConfig",
    "paper_mapping",
    "paired_mapping",
    "RunResult",
    "RuntimeConfig",
    "RankApi",
    "HardwarePriority",
    "PrivilegeLevel",
    "decode_share",
    "decode_allocation",
    "slice_length",
    "LoadProfile",
    "AnalyticThroughputModel",
    "ThroughputTable",
    "Trace",
    "TraceStats",
    "compute_stats",
    "render_gantt",
    "ClusterSystem",
    "ClusterSystemConfig",
    "ClusterConfig",
    "ClusterMachine",
    "NetworkModel",
    "NETWORK_KINDS",
    "TopologySpec",
    "UniformNetwork",
    "TwoLevelTree",
]
