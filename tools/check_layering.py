#!/usr/bin/env python3
"""Import-layering check: lower layers must not import upper layers.

The repo's layer graph (see ``docs/architecture.md``) only works in one
direction: the physics core (``kernel``/``smt``/``mpi``/``machine``/
``trace``/``workloads`` and the ``util`` helpers) must stay importable
without dragging in the layers that *consume* it (``scenarios``, then
``policies``, then ``oracle``/``experiments``/``service``/``cli``), and
the ``scenarios`` package — the shared spec/engine vocabulary — must
likewise not depend on any of its consumers, nor ``policies`` on the
oracle/CLI layers that replay and render its leaderboards.

Only **module-level** imports are violations: a function-level import of
an upper layer (e.g. the MPI runtime's optional live invariant hooks
pulling in ``repro.oracle.checker`` on demand) is a sanctioned inversion
precisely because it keeps module import acyclic.

Run directly (CI does) or via ``tests/test_layering.py``::

    python tools/check_layering.py [src-root]
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

#: repro.<package> -> the upper layers it must never module-level import.
_UPPER = ("scenarios", "policies", "oracle", "experiments", "service", "cli")
FORBIDDEN = {
    # The telemetry substrate is a strict leaf (stdlib + repro.errors
    # only): every layer may report into it, so it may depend on none.
    "telemetry": (
        "util", "kernel", "smt", "mpi", "machine", "trace", "workloads",
        "core", "cluster",
    ) + _UPPER,
    "util": _UPPER,
    "kernel": _UPPER,
    "smt": _UPPER,
    "mpi": _UPPER,
    "machine": _UPPER,
    "trace": _UPPER,
    "workloads": _UPPER,
    "core": _UPPER,
    "cluster": _UPPER,
    # The shared vocabulary must not depend on its consumers.
    "scenarios": ("policies", "oracle", "experiments", "service", "cli"),
    # Policies consume specs/engines; the oracle and the CLI consume
    # leaderboards — never the other way around.
    "policies": ("oracle", "experiments", "service", "cli"),
}


def _walk_module_scope(tree: ast.Module) -> Iterator[ast.AST]:
    """ast.walk, pruned at function boundaries."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _imports_with_lines(tree: ast.Module) -> Iterator[Tuple[str, int]]:
    for node in _walk_module_scope(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.module, node.lineno


def _target_package(dotted: str) -> str:
    parts = dotted.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return ""
    return parts[1]


def check_tree(src_root: str) -> List[str]:
    """All layering violations under ``src_root`` (repo's ``src/``)."""
    violations: List[str] = []
    pkg_root = os.path.join(src_root, "repro")
    for dirpath, _dirnames, filenames in os.walk(pkg_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, pkg_root)
            layer = rel.split(os.sep)[0]
            if layer.endswith(".py"):  # top-level module (cli.py, errors.py)
                layer = layer[:-3]
            forbidden = FORBIDDEN.get(layer)
            if not forbidden:
                continue
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
            for dotted, lineno in _imports_with_lines(tree):
                target = _target_package(dotted)
                if target in forbidden:
                    violations.append(
                        f"{os.path.relpath(path, src_root)}:{lineno}: "
                        f"layer {layer!r} imports upper layer "
                        f"{target!r} ({dotted}) at module level"
                    )
    return violations


def main(argv: List[str]) -> int:
    src_root = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    violations = check_tree(src_root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("layering ok: no lower layer imports an upper layer")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
