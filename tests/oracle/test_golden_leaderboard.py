"""The golden tournament leaderboard: record once, replay forever."""

import json
import os

import pytest

from repro.errors import GoldenMismatchError, OracleError
from repro.oracle import golden
from repro.policies import Leaderboard


GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "golden"
)


class TestRecordCheckCycle:
    def test_record_then_check(self, tmp_path):
        path = golden.record_leaderboard(str(tmp_path))
        assert os.path.basename(path) == golden.LEADERBOARD_GOLDEN_BASENAME
        outcome = golden.check_leaderboard(str(tmp_path))
        assert outcome.ok
        assert outcome.recorded_fingerprint == outcome.replayed_fingerprint

    def test_missing_recording(self, tmp_path):
        with pytest.raises(OracleError):
            golden.check_leaderboard(str(tmp_path))

    def test_drifted_recording_mismatches(self, tmp_path):
        path = golden.record_leaderboard(str(tmp_path))
        board = Leaderboard.load(path)
        # A recording of a *different* (still valid) outcome: nudge one
        # baseline time and re-save, so the artifact's own embedded
        # fingerprint is consistent but replay cannot reproduce it.
        drifted = Leaderboard(
            config=board.config,
            scenario_fingerprints=board.scenario_fingerprints,
            scenario_kinds=board.scenario_kinds,
            baseline_total_times=(
                board.baseline_total_times[0] + 0.5,
            ) + board.baseline_total_times[1:],
            scores=board.scores,
        )
        drifted.save(path)
        with pytest.raises(GoldenMismatchError):
            golden.check_leaderboard(str(tmp_path))
        outcome = golden.check_leaderboard(str(tmp_path), strict=False)
        assert not outcome.ok

    def test_record_all_includes_the_leaderboard(self, tmp_path):
        paths = golden.record_all(str(tmp_path))
        assert any(
            p.endswith(golden.LEADERBOARD_GOLDEN_BASENAME) for p in paths
        )


class TestCommittedArtifact:
    def test_committed_leaderboard_replays(self):
        # The repo's own recording must keep reproducing — this is the
        # golden-replay bar for the whole policy subsystem.
        outcome = golden.check_leaderboard(GOLDEN_DIR)
        assert outcome.ok

    def test_committed_artifact_is_versioned(self):
        with open(golden.leaderboard_path(GOLDEN_DIR)) as fh:
            doc = json.load(fh)
        assert doc["format"] == "repro-tournament-leaderboard"
        assert doc["version"] == 1
        assert doc["config"] == golden.smoke_tournament_config().to_doc()
