"""Cross-model conformance and the seeded fuzz driver."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.oracle.differential import (
    Scenario,
    ScenarioGenerator,
    Tolerances,
    analytic_estimate,
    check_conformance,
    fast_cycle_table,
    fuzz,
    run_cycle,
    run_fluid,
    trace_digest,
)


class TestScenario:
    def test_round_trips_through_doc(self, oracle_scenario):
        doc = oracle_scenario.to_doc()
        assert Scenario.from_doc(doc) == oracle_scenario
        assert Scenario.from_doc(doc).fingerprint == oracle_scenario.fingerprint

    def test_fingerprint_is_content_addressed(self, oracle_scenario):
        import dataclasses

        other = dataclasses.replace(oracle_scenario, iterations=3)
        assert other.fingerprint != oracle_scenario.fingerprint

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", kind="quantum", works=(1e9,), iterations=1)
        with pytest.raises(ConfigurationError):
            Scenario(name="x", kind="metbench", works=(), iterations=1)
        with pytest.raises(ConfigurationError):
            Scenario(
                name="x", kind="metbench", works=(1e9,), iterations=1,
                priorities=((0, 7),),  # 7 is not OS-settable
            )

    def test_malformed_doc_raises_validation_error(self):
        # Migrated with the ScenarioSpec unification: malformed documents
        # now raise the typed ValidationError (still a ValueError, and
        # still a ReproError like OracleError was).
        with pytest.raises(ValidationError):
            Scenario.from_doc({"name": "x"})

    def test_scenario_is_the_canonical_spec(self):
        from repro.scenarios import ScenarioSpec

        assert Scenario is ScenarioSpec


class TestTraceDigest:
    def test_same_scenario_same_digest(self, oracle_scenario):
        a = run_fluid(oracle_scenario)
        b = run_fluid(oracle_scenario)
        assert trace_digest(a) == trace_digest(b)

    def test_different_physics_different_digest(self, oracle_scenario):
        import dataclasses

        a = run_fluid(oracle_scenario)
        b = run_fluid(dataclasses.replace(oracle_scenario, priorities=()))
        assert trace_digest(a) != trace_digest(b)

    def test_incremental_rates_toggle_is_digest_invisible(self, oracle_scenario):
        on = run_fluid(oracle_scenario, incremental_rates=True)
        off = run_fluid(oracle_scenario, incremental_rates=False)
        assert trace_digest(on) == trace_digest(off)


class TestModelPaths:
    def test_three_paths_agree_within_declared_tolerances(self, oracle_scenario):
        tol = Tolerances()
        fluid = run_fluid(oracle_scenario)
        cycle = run_cycle(oracle_scenario, table=fast_cycle_table())
        estimate = analytic_estimate(oracle_scenario)
        ratio = fluid.total_time / cycle.total_time
        assert 1.0 / tol.model_time_ratio <= ratio <= tol.model_time_ratio
        assert (
            estimate * tol.estimate_lower
            <= fluid.total_time
            <= estimate * tol.estimate_upper
        )

    def test_check_conformance_reports_clean(self, oracle_scenario):
        result = check_conformance(oracle_scenario)
        assert result.ok, result.disagreements
        assert result.incremental_digest_equal

    def test_impossible_tolerance_is_reported_not_raised(self, oracle_scenario):
        tight = Tolerances(model_time_ratio=1.0000001)
        result = check_conformance(oracle_scenario, tolerances=tight)
        # The cycle and analytic models differ by more than 1e-7; the
        # disagreement is data, not an exception.
        assert not result.ok
        assert any("fluid/cycle" in d for d in result.disagreements)


class TestScenarioGenerator:
    def test_deterministic_per_seed(self):
        a = ScenarioGenerator(seed=5).take(6)
        b = ScenarioGenerator(seed=5).take(6)
        assert [s.fingerprint for s in a] == [s.fingerprint for s in b]

    def test_seeds_diverge(self):
        a = ScenarioGenerator(seed=5).take(6)
        b = ScenarioGenerator(seed=6).take(6)
        assert [s.fingerprint for s in a] != [s.fingerprint for s in b]

    def test_draws_are_valid_scenarios(self):
        for s in ScenarioGenerator(seed=0).take(12):
            assert s.kind in ("barrier_loop", "metbench", "btmz")
            assert s.n_ranks in (2, 4)
            assert all(w > 0 for w in s.works)
            for _, p in s.priorities:
                assert 1 <= p <= 6


class TestFuzz:
    def test_small_budget_conforms(self):
        report = fuzz(4, seed=0)
        assert report.ok, report.summary()
        assert report.checked == 4
        assert "conform" in report.summary()

    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            fuzz(0)
