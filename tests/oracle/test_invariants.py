"""The invariant registry and the laws it encodes."""

import dataclasses

import pytest

from repro.errors import InvariantViolation
from repro.oracle.invariants import (
    PAPER_TABLE_II,
    REGISTRY,
    get_invariant,
    invariant,
    invariants_for_scope,
)
from repro.smt.analytic import AnalyticThroughputModel
from repro.smt.decode import slice_length


class TestRegistry:
    def test_every_scope_is_populated(self):
        for scope in ("decode", "model", "trace", "run"):
            assert invariants_for_scope(scope), f"no {scope} invariants"

    def test_names_carry_their_scope_prefix(self):
        for name, inv in REGISTRY.items():
            assert name == inv.name
            assert name.split(".")[0] in ("decode", "model", "trace", "run")

    def test_get_unknown_raises_violation(self):
        with pytest.raises(InvariantViolation):
            get_invariant("decode.nonexistent")

    def test_duplicate_registration_rejected(self):
        existing = next(iter(REGISTRY))
        with pytest.raises(ValueError, match="duplicate"):
            invariant(existing, "decode", "dup")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            invariant("bogus.name", "cosmic", "no such scope")
        with pytest.raises(ValueError, match="scope"):
            invariants_for_scope("cosmic")


class TestDecodeInvariants:
    def test_all_decode_invariants_hold(self):
        for inv in invariants_for_scope("decode"):
            inv()  # must not raise

    def test_literal_table2_matches_the_formula(self):
        """The transcription and the arithmetic are independent statements
        of R = 2^(diff+1); they must agree on every diff."""
        for diff, (r, fav, other) in PAPER_TABLE_II.items():
            assert r == 2 ** (diff + 1)
            assert fav + other == r
            if diff <= 4:  # both priorities stay in 2..7
                assert slice_length(2 + diff, 2) == r

    def test_violation_names_the_invariant(self):
        err = InvariantViolation("decode.table2", "pair (4,6): wrong")
        assert err.invariant == "decode.table2"
        assert "decode.table2" in str(err)
        assert "pair (4,6)" in str(err)


class TestModelInvariants:
    def test_analytic_model_satisfies_all(self, analytic_model):
        for inv in invariants_for_scope("model"):
            inv(analytic_model)

    def test_cycle_table_satisfies_all(self, throughput_table):
        for inv in invariants_for_scope("model"):
            inv(throughput_table)

    def test_broken_model_is_caught(self):
        """A model whose IPC *decreases* with its own priority violates
        model.ipc_monotone — the oracle must notice."""

        class InvertedModel(AnalyticThroughputModel):
            def core_ipc(self, a, b, pa, pb):
                super().core_ipc(a, b, pa, pb)
                # Quadratic inversion: raising your own priority *halves*
                # your throughput — far beyond the measurement slack.
                return (1.0 / (1.0 + pa) ** 2, 1.0 / (1.0 + pb) ** 2)

        with pytest.raises(InvariantViolation) as exc:
            get_invariant("model.ipc_monotone")(InvertedModel())
        assert exc.value.invariant == "model.ipc_monotone"


class TestTamperDetection:
    """Flipping a Table II constant must fail the invariant checker —
    the acceptance demonstration for the oracle layer, done by patching
    the arithmetic the way an accidental edit would."""

    def test_flipped_table2_constant_fails_decode_invariant(self, monkeypatch):
        import repro.smt.decode as decode_mod

        real = decode_mod.decode_allocation

        def tampered(a, b):
            alloc = real(a, b)
            # An off-by-one in the favoured thread's slice share.
            if alloc.mode.value == "normal" and alloc.cycles_a > 1:
                return dataclasses.replace(alloc, cycles_a=alloc.cycles_a - 1)
            return alloc

        import repro.oracle.invariants as inv_mod

        monkeypatch.setattr(inv_mod, "decode_allocation", tampered)
        monkeypatch.setattr(
            inv_mod,
            "enumerate_allocations",
            lambda priorities=None: [
                ((a, b), tampered(a, b)) for a in range(8) for b in range(8)
            ],
        )
        with pytest.raises(InvariantViolation) as exc:
            get_invariant("decode.table2")()
        assert exc.value.invariant == "decode.table2"
