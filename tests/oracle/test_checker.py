"""InvariantChecker / RuntimeChecker wiring into runs."""

import dataclasses

import pytest

from repro.errors import InvariantViolation
from repro.machine.mapping import ProcessMapping
from repro.machine.system import System, SystemConfig
from repro.mpi.runtime import RuntimeConfig
from repro.oracle.checker import (
    CheckReport,
    InvariantChecker,
    verify_decode_law,
    verify_run,
    verify_trace,
)
from repro.oracle.differential import run_fluid
from repro.workloads.generators import barrier_loop_programs


class TestCheckReport:
    def test_ok_and_summary(self):
        report = CheckReport(checked=["a", "b"])
        assert report.ok
        assert "2 invariants hold" in report.summary()

    def test_merge_accumulates(self):
        left = CheckReport(checked=["a"])
        right = CheckReport(
            checked=["b"], violations=[InvariantViolation("b", "boom")]
        )
        left.merge(right)
        assert left.checked == ["a", "b"]
        assert not left.ok
        assert "1 of 2" in left.summary()


class TestPostHocSweeps:
    def test_decode_law_holds(self):
        assert verify_decode_law().ok

    def test_clean_run_passes_run_and_trace_sweeps(self, oracle_scenario):
        result = run_fluid(oracle_scenario)
        assert verify_run(result).ok
        assert verify_trace(result.trace).ok

    def test_collecting_mode_gathers_instead_of_raising(self, oracle_scenario):
        result = run_fluid(oracle_scenario)
        # Tamper post-hoc: a non-physical execution time.
        bad = dataclasses.replace(result, total_time=-1.0)
        checker = InvariantChecker(strict=False)
        report = checker.check_run(bad)
        assert not report.ok
        assert any(v.invariant == "run.accounting" for v in report.violations)

    def test_strict_mode_raises_on_first_violation(self, oracle_scenario):
        result = run_fluid(oracle_scenario)
        bad = dataclasses.replace(result, final_priorities=(9, 4, 4, 4))
        with pytest.raises(InvariantViolation) as exc:
            verify_run(bad)
        assert exc.value.invariant == "run.accounting"


class TestLiveRuntimeChecker:
    def test_checked_run_matches_unchecked_run_exactly(self, oracle_scenario):
        """The live oracle observes; it must never perturb the physics."""
        plain = run_fluid(oracle_scenario, check_invariants=False)
        checked = run_fluid(oracle_scenario, check_invariants=True)
        assert checked.total_time == plain.total_time
        assert checked.events_processed == plain.events_processed

    def test_knob_reaches_the_runtime(self):
        system = System(
            SystemConfig(runtime=RuntimeConfig(check_invariants=True))
        )
        result = system.run(
            barrier_loop_programs([1e8, 2e8], iterations=2),
            ProcessMapping.identity(2),
        )
        assert result.total_time > 0  # ran to completion under the oracle

    def test_off_by_default(self):
        assert RuntimeConfig().check_invariants is False
