"""Golden-trace record/check replay, including the repo's own goldens."""

import json
import os

import pytest

from repro.errors import GoldenMismatchError, OracleError
from repro.oracle import golden
from repro.oracle.differential import Scenario

REPO_GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "golden"
)

SMALL = Scenario(
    name="tiny-golden",
    kind="barrier_loop",
    works=(4.0e8, 9.0e8),
    iterations=2,
    priorities=((0, 4), (1, 5)),
)


class TestRecordCheck:
    def test_fresh_record_then_check_passes(self, tmp_path):
        path = str(tmp_path / "tiny.golden.json")
        doc = golden.record(SMALL, path)
        assert doc["format"] == golden.GOLDEN_FORMAT
        outcome = golden.check(path)
        assert outcome.ok and outcome.digest_equal
        assert outcome.replayed_time == outcome.recorded_time

    def test_tampered_metric_fails(self, tmp_path):
        path = str(tmp_path / "tiny.golden.json")
        golden.record(SMALL, path)
        with open(path) as fh:
            doc = json.load(fh)
        doc["total_time"] *= 1.5
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(GoldenMismatchError, match="total_time"):
            golden.check(path)

    def test_edited_scenario_detected_by_fingerprint(self, tmp_path):
        path = str(tmp_path / "tiny.golden.json")
        golden.record(SMALL, path)
        with open(path) as fh:
            doc = json.load(fh)
        doc["scenario"]["iterations"] = 5  # silent edit, stale fingerprint
        with open(path, "w") as fh:
            json.dump(doc, fh)
        outcome = golden.check(path, strict=False)
        assert any("fingerprint" in m for m in outcome.mismatches)

    def test_tolerance_forgives_digest_but_not_metric_drift(self, tmp_path):
        path = str(tmp_path / "tiny.golden.json")
        golden.record(SMALL, path)
        with open(path) as fh:
            doc = json.load(fh)
        doc["trace_digest"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(doc, fh)
        outcome = golden.check(path, tolerance=0.01, strict=False)
        assert outcome.ok and not outcome.digest_equal
        with pytest.raises(GoldenMismatchError):
            golden.check(path, tolerance=0.0)

    def test_version_gate(self, tmp_path):
        path = str(tmp_path / "tiny.golden.json")
        golden.record(SMALL, path)
        with open(path) as fh:
            doc = json.load(fh)
        doc["version"] = golden.GOLDEN_VERSION + 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(OracleError, match="re-record"):
            golden.check(path)

    def test_unreadable_and_missing_files(self, tmp_path):
        missing = str(tmp_path / "absent.golden.json")
        with pytest.raises(OracleError):
            golden.check(missing)
        bad = tmp_path / "bad.golden.json"
        bad.write_text("{not json")
        with pytest.raises(OracleError):
            golden.check(str(bad))
        with pytest.raises(OracleError):
            golden.check_all(str(tmp_path / "empty-dir"))


class TestRepoGoldens:
    """The committed goldens under tests/golden/ replay bit-exactly —
    this is the regression net every future PR runs through."""

    def test_directory_has_all_default_scenarios(self):
        names = {s.name for s in golden.default_scenarios()}
        files = {
            os.path.basename(p).replace(".golden.json", "")
            for p in golden.golden_paths(REPO_GOLDEN_DIR)
        }
        assert names <= files

    @pytest.mark.parametrize(
        "path",
        golden.golden_paths(REPO_GOLDEN_DIR),
        ids=lambda p: os.path.basename(p),
    )
    def test_replays_bit_exactly(self, path):
        outcome = golden.check(path)
        assert outcome.ok and outcome.digest_equal

    def test_batch_replay_bit_exact(self):
        """All goldens through one run_batch call: the batch-path twin of
        the scalar replay, guarding the vectorized presolve."""
        outcomes = golden.check_all_batch(REPO_GOLDEN_DIR)
        assert len(outcomes) == len(golden.golden_paths(REPO_GOLDEN_DIR))
        for outcome in outcomes:
            assert outcome.ok and outcome.digest_equal

    def test_batch_replay_empty_dir_raises(self, tmp_path):
        with pytest.raises(OracleError):
            golden.check_all_batch(str(tmp_path))


class TestJointSearchGolden:
    """The joint-search golden: the whole pruned sweep replays — winner,
    candidate count and trace digest pinned."""

    def test_fresh_record_then_check_passes(self, tmp_path):
        path = golden.record_joint_search(str(tmp_path))
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["format"] == golden.JOINT_SEARCH_FORMAT
        outcome = golden.check_joint_search(str(tmp_path))
        assert outcome.ok
        assert outcome.replayed_digest == outcome.recorded_digest

    def test_tampered_winner_fails(self, tmp_path):
        path = golden.joint_search_path(str(tmp_path))
        golden.record_joint_search(str(tmp_path))
        with open(path) as fh:
            doc = json.load(fh)
        doc["best_time"] *= 1.01
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(GoldenMismatchError, match="best time"):
            golden.check_joint_search(str(tmp_path))
        outcome = golden.check_joint_search(str(tmp_path), strict=False)
        assert not outcome.ok

    def test_tampered_mapping_fails(self, tmp_path):
        path = golden.joint_search_path(str(tmp_path))
        golden.record_joint_search(str(tmp_path))
        with open(path) as fh:
            doc = json.load(fh)
        doc["best_mapping"] = {"0": 1, "1": 0, "2": 2, "3": 3}
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(GoldenMismatchError, match="best mapping"):
            golden.check_joint_search(str(tmp_path))

    def test_version_gate(self, tmp_path):
        path = golden.joint_search_path(str(tmp_path))
        golden.record_joint_search(str(tmp_path))
        with open(path) as fh:
            doc = json.load(fh)
        doc["version"] = golden.JOINT_SEARCH_VERSION + 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(OracleError):
            golden.check_joint_search(str(tmp_path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(OracleError):
            golden.check_joint_search(str(tmp_path))

    def test_repo_joint_search_golden_replays(self):
        outcome = golden.check_joint_search(REPO_GOLDEN_DIR)
        assert outcome.ok
        assert outcome.replayed_digest == outcome.recorded_digest

    def test_joint_search_golden_is_not_a_trace_golden(self):
        # The .search.json suffix keeps it out of the single-trace
        # replay globs — check_all must not try to run it.
        assert golden.joint_search_path(REPO_GOLDEN_DIR) not in (
            golden.golden_paths(REPO_GOLDEN_DIR)
        )
