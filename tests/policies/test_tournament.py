"""The tournament runner, its leaderboard artifact and the paper's bars."""

import json

import pytest

from repro.errors import ConfigurationError, PersistenceError, ValidationError
from repro.policies import (
    ALLOCATION_POLICIES,
    DEFAULT_POLICIES,
    Leaderboard,
    PLACEMENT_POLICIES,
    TournamentConfig,
    apply_policy,
    get_policy,
    planning_works,
    run_tournament,
)
from repro.policies.tournament import CASE_D_DOCUMENTED_LOSS_PERCENT
from repro.scenarios import ScenarioSpec


def small_config(**overrides):
    defaults = dict(
        policies=("st", "paper-c", "propshare", "hysteresis"),
        corpus="mixed",
        n_scenarios=6,
        seed=11,
    )
    defaults.update(overrides)
    return TournamentConfig(**defaults)


class TestConfig:
    def test_round_trip(self):
        config = small_config()
        assert TournamentConfig.from_doc(config.to_doc()) == config
        assert TournamentConfig.from_doc(config.to_doc()).fingerprint == (
            config.fingerprint
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TournamentConfig(policies=())
        with pytest.raises(ConfigurationError):
            TournamentConfig(policies=("st", "st"))
        with pytest.raises(ConfigurationError):
            TournamentConfig(corpus="chaos")
        with pytest.raises(ConfigurationError):
            TournamentConfig(n_scenarios=0)

    def test_from_doc_strict(self):
        doc = small_config().to_doc()
        doc["budget"] = 7
        with pytest.raises(ValidationError):
            TournamentConfig.from_doc(doc)
        with pytest.raises(ValidationError):
            TournamentConfig.from_doc({"corpus": "mixed"})


class TestPlanningWorks:
    def test_plain_body(self):
        spec = ScenarioSpec(
            name="x", kind="barrier_loop", works=(1e9, 2e9), iterations=3
        )
        assert planning_works(spec) == (3e9, 6e9)

    def test_btmz_includes_balanced_init(self):
        spec = ScenarioSpec(
            name="x", kind="btmz", works=(1e9, 3e9), iterations=2
        )
        init = 4.0 * 2e9  # default init_factor x mean body work
        assert planning_works(spec) == (init + 2e9, init + 6e9)

    def test_siesta_includes_edges(self):
        spec = ScenarioSpec(
            name="x",
            kind="siesta",
            works=(1e9, 2e9),
            iterations=2,
            params={
                "init_works": (5e8, 5e8),
                "final_works": (1e8, 2e8),
            },
        )
        assert planning_works(spec) == (5e8 + 2e9 + 1e8, 5e8 + 4e9 + 2e8)


class TestApplyPolicy:
    def test_static_noop_keeps_spec_identity(self):
        spec = ScenarioSpec(
            name="flat", kind="barrier_loop", works=(2e9, 2e9, 2e9, 2e9),
            iterations=2,
        )
        planned, options = apply_policy(get_policy("propshare"), spec)
        assert planned is spec
        assert options is None

    def test_static_writes_become_spec_priorities(self):
        spec = ScenarioSpec(
            name="skew", kind="barrier_loop", works=(1e9, 8e9, 1e9, 8e9),
            iterations=2,
        )
        planned, options = apply_policy(get_policy("propshare"), spec)
        assert options is None
        assert planned.priorities != ()
        assert planned.fingerprint != spec.fingerprint

    def test_dynamic_returns_fresh_controller_factory(self):
        spec = ScenarioSpec(
            name="skew", kind="barrier_loop", works=(1e9, 8e9), iterations=2
        )
        planned, options = apply_policy(get_policy("hysteresis"), spec)
        assert planned is spec
        (controller_a,) = options["controllers"]()
        (controller_b,) = options["controllers"]()
        assert controller_a is not controller_b


class TestDeterminism:
    def test_identical_fingerprint_on_repeat(self):
        config = small_config()
        assert run_tournament(config).fingerprint == (
            run_tournament(config).fingerprint
        )

    def test_batch_equals_scalar(self):
        config = small_config()
        batched = run_tournament(config, batch=True)
        scalar = run_tournament(config, batch=False)
        assert batched.fingerprint == scalar.fingerprint
        assert batched == scalar

    def test_seed_moves_the_board(self):
        a = run_tournament(small_config(seed=1))
        b = run_tournament(small_config(seed=2))
        assert a.fingerprint != b.fingerprint


class TestScoring:
    def test_st_scores_exactly_zero(self):
        board = run_tournament(small_config())
        st = board.score_of("st")
        assert st.mean_improvement_percent == 0.0
        assert st.worst_regression_percent == 0.0
        assert st.total_times == board.baseline_total_times

    def test_ranked_best_first(self):
        board = run_tournament(small_config())
        means = [s.mean_improvement_percent for s in board.scores]
        assert means == sorted(means, reverse=True)

    def test_trap_score_present_only_with_siesta_cells(self):
        mixed = run_tournament(small_config())
        assert all(
            s.trap_score_percent is not None for s in mixed.scores
        )
        fuzz = run_tournament(
            small_config(corpus="fuzz", policies=("st", "propshare"))
        )
        # Seed 11's first three fuzz draws contain no siesta scenario,
        # so the trap column is absent.
        if "siesta" not in fuzz.scenario_kinds:
            assert all(s.trap_score_percent is None for s in fuzz.scores)

    def test_dynamic_policy_needs_controller_hook(self):
        with pytest.raises(ConfigurationError):
            run_tournament(
                small_config(policies=("st", "hysteresis"), engine="analytic")
            )


class TestPaperAcceptance:
    """ISSUE 8's bars, scaled to test-suite size (CI-fast corpora)."""

    def test_dynamic_beats_every_static_on_migrating_bottlenecks(self):
        board = run_tournament(
            TournamentConfig(corpus="siesta", n_scenarios=12, seed=0)
        )
        dynamic = board.score_of("hysteresis").mean_improvement_percent
        statics = [
            s.mean_improvement_percent
            for s in board.scores
            if s.family == "static"
        ]
        assert statics, "no static contenders on the board"
        assert dynamic > max(statics)

    def test_no_policy_regresses_past_the_documented_case_d_loss(self):
        # The paper's own worst case: D shipped 17.24% slower than the
        # balanced reference. No zoo policy may do worse *in the mean*.
        for corpus in ("mixed", "siesta"):
            board = run_tournament(
                TournamentConfig(
                    corpus=corpus, n_scenarios=12, seed=0,
                    policies=DEFAULT_POLICIES,
                )
            )
            for score in board.scores:
                assert score.mean_improvement_percent >= (
                    -CASE_D_DOCUMENTED_LOSS_PERCENT
                ), f"{score.policy} regressed {score.mean_improvement_percent}"


class TestLeaderboardArtifact:
    def test_save_load_round_trip(self, tmp_path):
        board = run_tournament(small_config())
        path = str(tmp_path / "board.json")
        board.save(path)
        loaded = Leaderboard.load(path)
        assert loaded == board
        assert loaded.fingerprint == board.fingerprint

    def test_tamper_detected(self, tmp_path):
        board = run_tournament(small_config())
        path = str(tmp_path / "board.json")
        board.save(path)
        doc = json.loads(open(path).read())
        doc["baseline_total_times"][0] += 1.0
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(PersistenceError):
            Leaderboard.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            Leaderboard.load(str(tmp_path / "absent.json"))

    def test_from_doc_rejects_unknown_fields(self):
        board = run_tournament(small_config())
        doc = board.to_doc()
        doc["wall_seconds"] = 1.0
        with pytest.raises(ValidationError):
            Leaderboard.from_doc(doc)

    def test_wall_seconds_outside_identity(self):
        board = run_tournament(small_config())
        assert "wall_seconds" not in board.to_doc()
        relabelled = Leaderboard(
            config=board.config,
            scenario_fingerprints=board.scenario_fingerprints,
            scenario_kinds=board.scenario_kinds,
            baseline_total_times=board.baseline_total_times,
            scores=board.scores,
            wall_seconds=board.wall_seconds + 5.0,
        )
        assert relabelled == board

    def test_render_mentions_every_policy(self):
        board = run_tournament(small_config())
        rendered = board.render()
        for name in small_config().policies:
            assert name in rendered


class TestAllocationFamily:
    def test_apply_policy_rewrites_the_mapping(self):
        spec = ScenarioSpec(
            name="skew", kind="barrier_loop", works=(1e9, 2e9, 8e9, 6e9),
            iterations=2,
        )
        planned, options = apply_policy(get_policy("ilp-pair"), spec)
        assert options is None
        assert planned.priorities == ()  # the family never touches these
        # Heaviest (2) absorbs the lightest (0); 1 and 3 share the other core.
        pairs = {frozenset(g) for g in planned.mapping_obj().core_pairs()}
        assert pairs == {frozenset((0, 2)), frozenset((1, 3))}
        assert planned.fingerprint != spec.fingerprint

    def test_noop_plan_keeps_spec_identity(self):
        # paired-extremes on this skew reproduces the identity layout's
        # partition, so the spec object (and the baseline-reuse fast
        # path keyed on it) must survive untouched.
        spec = ScenarioSpec(
            name="already", kind="barrier_loop",
            works=(8e8, 2.4e9, 1.2e9, 2.0e9), iterations=2,
        )
        planned, options = apply_policy(get_policy("ilp-pair"), spec)
        assert planned is spec
        assert options is None

    def test_tournament_fields_all_three_families(self):
        board = run_tournament(
            TournamentConfig(
                policies=("st", "propshare", "hysteresis") + tuple(
                    ALLOCATION_POLICIES
                ),
                corpus="metbtmz",
                n_scenarios=4,
                seed=5,
            )
        )
        families = {s.family for s in board.scores}
        assert families == {"static", "dynamic", "allocation"}
        evidence = board.differential_evidence()
        assert evidence is not None
        assert "mapping vs priority" in evidence
        assert "axis wins this corpus" in evidence
        assert evidence in board.render()

    def test_differential_evidence_needs_both_axes(self):
        board = run_tournament(small_config(n_scenarios=4))
        assert board.differential_evidence() is None
        assert "mapping vs priority" not in board.render()

    def test_placement_policy_is_a_noop_on_single_chip_specs(self):
        # No topology, nothing to place: the spec object itself must
        # survive so the baseline-reuse fast path still fires.
        spec = ScenarioSpec(
            name="flat", kind="barrier_loop",
            works=(1e9, 2e9, 1.5e9, 3e9), iterations=2,
        )
        planned, options = apply_policy(get_policy("locality-pack"), spec)
        assert planned is spec
        assert options is None

    def test_placement_policy_rewrites_the_cluster_mapping(self):
        spec = ScenarioSpec(
            name="ring", kind="distant_pairs",
            works=(1e9, 2e9, 1.5e9, 3e9, 1.2e9, 2.5e9, 1.8e9, 2.2e9),
            iterations=2, params={"exchange_bytes": 1 << 22},
            topology={"n_nodes": 2},
        )
        planned, options = apply_policy(get_policy("locality-pack"), spec)
        assert options is None
        assert planned.fingerprint != spec.fingerprint
        table = planned.mapping_obj().as_dict()
        for r in range(4):
            assert table[r] // 4 == table[r + 4] // 4

    def test_exact_mapping_noop_keeps_spec_identity(self):
        # A cluster spec already wearing the policy's target layout:
        # comparison is on exact CPUs (canonical() would repack ranks
        # across nodes), and the spec object must survive untouched.
        spec = ScenarioSpec(
            name="packed", kind="distant_pairs",
            works=(1e9, 2e9, 1.5e9, 3e9, 1.2e9, 2.5e9, 1.8e9, 2.2e9),
            iterations=2, params={"exchange_bytes": 1 << 22},
            topology={"n_nodes": 2},
            mapping={0: 0, 4: 1, 1: 2, 5: 3, 2: 4, 6: 5, 3: 6, 7: 7},
        )
        planned, options = apply_policy(get_policy("locality-pack"), spec)
        assert planned is spec
        assert options is None

    def test_tournament_scores_the_placement_family(self):
        board = run_tournament(
            TournamentConfig(
                policies=("st", "propshare", "hysteresis")
                + tuple(PLACEMENT_POLICIES),
                corpus="cluster",
                n_scenarios=4,
                seed=11,
            )
        )
        families = {s.family for s in board.scores}
        assert families == {"static", "dynamic", "placement"}
        by_name = {s.policy: s for s in board.scores}
        # Co-locating the pairs must beat both the network-maximal
        # contrast case and the blind lottery on this corpus.
        assert (
            by_name["locality-pack"].mean_improvement_percent
            > by_name["bandwidth-spread"].mean_improvement_percent
        )
        assert (
            by_name["locality-pack"].mean_improvement_percent
            > by_name["random-placement"].mean_improvement_percent
        )
        assert Leaderboard.from_doc(board.to_doc()) == board

    def test_evidence_is_not_part_of_the_canonical_doc(self):
        config = TournamentConfig(
            policies=("st", "propshare", "ilp-pair"),
            corpus="metbtmz",
            n_scenarios=4,
            seed=5,
        )
        board = run_tournament(config)
        assert board.differential_evidence() is not None
        doc = json.dumps(board.to_doc())
        assert "mapping vs priority" not in doc
        assert Leaderboard.from_doc(board.to_doc()) == board
